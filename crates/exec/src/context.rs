//! Execution context: cost clock, memory governor, span tracer, metrics.

use crate::{BoxOp, Operator};
use rqp_common::{CostClock, Row, Schema, SharedClock};
use rqp_telemetry::{MetricsRegistry, SpanHandle, Tracer};
use std::cell::Cell;
use std::rc::Rc;

/// Workspace-memory governor, in *rows* of workspace.
///
/// The seminar's resource-management session ("grow & shrink memory",
/// FMT) needs memory that can fluctuate *while queries run*: operators ask
/// for a grant each time they materialize, so a budget change between two
/// pipeline stages is observed by the later stage. Spills are charged by the
/// operators themselves via the cost clock.
///
/// The governor also keeps pure-accounting tallies (grants issued,
/// outstanding workspace, high-water mark) so run reports can show memory
/// pressure; the tallies never influence what is granted.
#[derive(Debug)]
pub struct MemoryGovernor {
    budget_rows: Cell<f64>,
    outstanding: Cell<f64>,
    peak_outstanding: Cell<f64>,
    grant_count: Cell<u64>,
    granted_total: Cell<f64>,
}

impl MemoryGovernor {
    /// A governor with the given workspace budget (rows).
    pub fn new(budget_rows: f64) -> Rc<Self> {
        Rc::new(MemoryGovernor {
            budget_rows: Cell::new(budget_rows.max(0.0)),
            outstanding: Cell::new(0.0),
            peak_outstanding: Cell::new(0.0),
            grant_count: Cell::new(0),
            granted_total: Cell::new(0.0),
        })
    }

    /// Current budget.
    pub fn budget(&self) -> f64 {
        self.budget_rows.get()
    }

    /// Change the budget (FMT schedules call this mid-workload). Outstanding
    /// grants are *not* revoked: shrinking below what is already handed out
    /// leaves the governor overcommitted until operators release.
    pub fn set_budget(&self, rows: f64) {
        self.budget_rows.set(rows.max(0.0));
    }

    /// Grant up to `want` rows of workspace; returns the granted amount
    /// (never below a one-page minimum so operators always make progress).
    pub fn grant(&self, want: f64) -> f64 {
        let granted = want.min(self.budget_rows.get()).max(100.0);
        self.outstanding.set(self.outstanding.get() + granted);
        if self.outstanding.get() > self.peak_outstanding.get() {
            self.peak_outstanding.set(self.outstanding.get());
        }
        self.grant_count.set(self.grant_count.get() + 1);
        self.granted_total.set(self.granted_total.get() + granted);
        granted
    }

    /// Return `rows` of workspace (an operator released its materialization).
    /// Clamped so sloppy callers cannot drive the tally negative.
    pub fn release(&self, rows: f64) {
        self.outstanding.set((self.outstanding.get() - rows.max(0.0)).max(0.0));
    }

    /// Workspace currently handed out and not yet released.
    pub fn outstanding(&self) -> f64 {
        self.outstanding.get()
    }

    /// High-water mark of [`outstanding`](Self::outstanding).
    pub fn peak_outstanding(&self) -> f64 {
        self.peak_outstanding.get()
    }

    /// Number of grants issued.
    pub fn grant_count(&self) -> u64 {
        self.grant_count.get()
    }

    /// Sum of all grants issued.
    pub fn granted_total(&self) -> f64 {
        self.granted_total.get()
    }

    /// True while more workspace is outstanding than the current budget —
    /// the state a mid-query budget shrink leaves behind.
    pub fn overcommitted(&self) -> bool {
        self.outstanding.get() > self.budget_rows.get()
    }
}

/// Everything an operator needs from its environment.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// The deterministic cost clock ("response time").
    pub clock: SharedClock,
    /// The workspace-memory governor.
    pub memory: Rc<MemoryGovernor>,
    /// Collects one span per operator constructed under this context.
    pub tracer: Tracer,
    /// Named counters/gauges/histograms for everything that isn't a plan node.
    pub metrics: MetricsRegistry,
}

impl ExecContext {
    /// Context with the given clock and memory budget.
    pub fn new(clock: SharedClock, memory_rows: f64) -> Self {
        ExecContext {
            clock,
            memory: MemoryGovernor::new(memory_rows),
            tracer: Tracer::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Default context: fresh clock, effectively unbounded memory.
    pub fn unbounded() -> Self {
        ExecContext::new(CostClock::default_clock(), f64::INFINITY)
    }

    /// Default context with a bounded workspace.
    pub fn with_memory(memory_rows: f64) -> Self {
        ExecContext::new(CostClock::default_clock(), memory_rows)
    }

    /// Open a span for an operator under construction, re-parenting the
    /// spans of its `inputs` beneath it — the trace tree emerges from
    /// construction order.
    pub fn op_span(&self, kind: &'static str, inputs: &[&BoxOp]) -> SpanHandle {
        let span = self.tracer.open(kind, &self.clock);
        for op in inputs {
            if let Some(s) = op.span() {
                s.set_parent(span.id());
            }
        }
        span
    }

    /// Assemble a [`RunReport`](rqp_telemetry::RunReport) from everything
    /// this context observed: the cost-clock breakdown, every span, every
    /// metric. Experiments call this once at the end of a run and
    /// [`write_to`](rqp_telemetry::RunReport::write_to) `exp_output/`.
    pub fn run_report(&self, experiment: &str) -> rqp_telemetry::RunReport {
        let mut report = rqp_telemetry::RunReport::new(experiment);
        report.cost = self.clock.breakdown();
        report.spans = self.tracer.snapshot();
        report.metrics = self.metrics.snapshot();
        report
    }
}

/// A pass-through operator that gives an un-instrumented input a span.
///
/// This absorbs the old `Meter` row counter into the span API: wrapping a
/// source in `SpanOp` counts its rows exactly as `Meter` did, but the count
/// lands in the trace next to every other operator's observations instead of
/// in a bespoke `Rc<Cell<usize>>`. Operators in this crate already carry
/// spans; `SpanOp` is for ad-hoc pipelines (tests, benches, raw sources).
pub struct SpanOp {
    inner: BoxOp,
    span: SpanHandle,
    clock: SharedClock,
}

impl SpanOp {
    /// Wrap `inner` under a fresh span of the given kind.
    pub fn new(inner: BoxOp, kind: &'static str, ctx: &ExecContext) -> Self {
        let span = ctx.op_span(kind, &[&inner]);
        SpanOp { inner, span, clock: Rc::clone(&ctx.clock) }
    }

    /// A handle to the span counting this operator's output.
    pub fn handle(&self) -> SpanHandle {
        self.span.clone()
    }
}

impl Operator for SpanOp {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self) -> Option<Row> {
        let row = self.inner.next();
        match &row {
            Some(_) => self.span.produced(&self.clock),
            None => self.span.close(&self.clock),
        }
        row
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

/// Drain an operator into a vector.
pub fn collect(op: &mut dyn Operator) -> Vec<Row> {
    let mut out = Vec::new();
    while let Some(r) = op.next() {
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::{DataType, Value};

    /// A tiny literal-rows source for tests.
    pub struct RowsOp {
        schema: Schema,
        rows: std::vec::IntoIter<Row>,
    }

    impl RowsOp {
        pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
            RowsOp { schema, rows: rows.into_iter() }
        }
    }

    impl Operator for RowsOp {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn next(&mut self) -> Option<Row> {
            self.rows.next()
        }
    }

    #[test]
    fn span_op_counts_rows() {
        let ctx = ExecContext::unbounded();
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let rows: Vec<Row> = (0..5).map(|i| vec![Value::Int(i)]).collect();
        let src = Box::new(RowsOp::new(schema, rows));
        let mut m = SpanOp::new(src, "rows", &ctx);
        let handle = m.handle();
        assert_eq!(handle.rows(), 0);
        let out = collect(&mut m);
        assert_eq!(out.len(), 5);
        assert_eq!(handle.rows(), 5);
        assert!(handle.is_closed());
        assert_eq!(ctx.tracer.len(), 1);
    }

    #[test]
    fn governor_grant_and_fluctuation() {
        let g = MemoryGovernor::new(10_000.0);
        assert_eq!(g.grant(5_000.0), 5_000.0);
        assert_eq!(g.grant(50_000.0), 10_000.0);
        g.set_budget(1_000.0);
        assert_eq!(g.grant(50_000.0), 1_000.0);
        g.set_budget(0.0);
        assert_eq!(g.grant(50_000.0), 100.0, "one-page floor");
    }

    #[test]
    fn governor_zero_budget_still_makes_progress() {
        let g = MemoryGovernor::new(0.0);
        assert_eq!(g.budget(), 0.0);
        // Every ask is floored at one page so operators never deadlock…
        assert_eq!(g.grant(1_000_000.0), 100.0);
        assert_eq!(g.grant(0.0), 100.0);
        // …and the governor knows it handed out more than it has.
        assert_eq!(g.outstanding(), 200.0);
        assert!(g.overcommitted());
        // A negative construction budget clamps to zero, same behavior.
        let g = MemoryGovernor::new(-5.0);
        assert_eq!(g.budget(), 0.0);
        assert_eq!(g.grant(500.0), 100.0);
    }

    #[test]
    fn governor_shrink_below_outstanding_grants() {
        let g = MemoryGovernor::new(10_000.0);
        let a = g.grant(8_000.0);
        assert_eq!(a, 8_000.0);
        assert!(!g.overcommitted());
        // FMT shrinks the budget mid-query, below what is already out.
        g.set_budget(1_000.0);
        assert!(g.overcommitted(), "8000 outstanding vs budget 1000");
        // New grants see the shrunken budget; old grants are not revoked.
        let b = g.grant(5_000.0);
        assert_eq!(b, 1_000.0);
        assert_eq!(g.outstanding(), 9_000.0);
        // Releasing the big materialization clears the overcommit.
        g.release(a);
        assert_eq!(g.outstanding(), 1_000.0);
        assert!(!g.overcommitted());
    }

    #[test]
    fn governor_accounting_across_concurrent_operators() {
        let g = MemoryGovernor::new(4_000.0);
        // Two operators materialize at the same time (e.g. both sides of a
        // sort-merge join): each grant is tallied, not just the last one.
        let sort_l = g.grant(3_000.0);
        let sort_r = g.grant(3_000.0);
        assert_eq!((sort_l, sort_r), (3_000.0, 3_000.0));
        assert_eq!(g.grant_count(), 2);
        assert_eq!(g.granted_total(), 6_000.0);
        assert_eq!(g.outstanding(), 6_000.0);
        assert_eq!(g.peak_outstanding(), 6_000.0);
        assert!(g.overcommitted(), "governor admits both, but visibly");
        g.release(sort_l);
        g.release(sort_r);
        assert_eq!(g.outstanding(), 0.0);
        assert_eq!(g.peak_outstanding(), 6_000.0, "peak survives release");
        // Over-release clamps instead of going negative.
        g.release(1_000.0);
        assert_eq!(g.outstanding(), 0.0);
    }

    #[test]
    fn contexts() {
        let c = ExecContext::unbounded();
        assert_eq!(c.clock.now(), 0.0);
        assert!(c.memory.budget().is_infinite());
        assert!(c.tracer.is_empty());
        assert!(c.metrics.is_empty());
        let c = ExecContext::with_memory(500.0);
        assert_eq!(c.memory.budget(), 500.0);
        // Clones share the tracer and metrics namespace.
        let c2 = c.clone();
        c2.tracer.open("probe", &c2.clock);
        assert_eq!(c.tracer.len(), 1);
    }
}
