//! Execution context: cost clock, memory governor, row metering.

use crate::{BoxOp, Operator};
use rqp_common::{CostClock, Row, Schema, SharedClock};
use std::cell::Cell;
use std::rc::Rc;

/// Workspace-memory governor, in *rows* of workspace.
///
/// The seminar's resource-management session ("grow & shrink memory",
/// FMT) needs memory that can fluctuate *while queries run*: operators ask
/// for a grant each time they materialize, so a budget change between two
/// pipeline stages is observed by the later stage. Spills are charged by the
/// operators themselves via the cost clock.
#[derive(Debug)]
pub struct MemoryGovernor {
    budget_rows: Cell<f64>,
}

impl MemoryGovernor {
    /// A governor with the given workspace budget (rows).
    pub fn new(budget_rows: f64) -> Rc<Self> {
        Rc::new(MemoryGovernor { budget_rows: Cell::new(budget_rows.max(0.0)) })
    }

    /// Current budget.
    pub fn budget(&self) -> f64 {
        self.budget_rows.get()
    }

    /// Change the budget (FMT schedules call this mid-workload).
    pub fn set_budget(&self, rows: f64) {
        self.budget_rows.set(rows.max(0.0));
    }

    /// Grant up to `want` rows of workspace; returns the granted amount
    /// (never below a one-page minimum so operators always make progress).
    pub fn grant(&self, want: f64) -> f64 {
        want.min(self.budget_rows.get()).max(100.0)
    }
}

/// Everything an operator needs from its environment.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// The deterministic cost clock ("response time").
    pub clock: SharedClock,
    /// The workspace-memory governor.
    pub memory: Rc<MemoryGovernor>,
}

impl ExecContext {
    /// Context with the given clock and memory budget.
    pub fn new(clock: SharedClock, memory_rows: f64) -> Self {
        ExecContext { clock, memory: MemoryGovernor::new(memory_rows) }
    }

    /// Default context: fresh clock, effectively unbounded memory.
    pub fn unbounded() -> Self {
        ExecContext::new(CostClock::default_clock(), f64::INFINITY)
    }

    /// Default context with a bounded workspace.
    pub fn with_memory(memory_rows: f64) -> Self {
        ExecContext::new(CostClock::default_clock(), memory_rows)
    }
}

/// A pass-through operator that counts the rows flowing through it.
///
/// The plan builder wraps each plan node in a `Meter` so post-mortem analysis
/// (LEO) and checkpoints (POP) can read actual cardinalities per node.
pub struct Meter {
    inner: BoxOp,
    counter: Rc<Cell<usize>>,
}

impl Meter {
    /// Wrap `inner`; the shared counter can be read while the plan runs.
    pub fn new(inner: BoxOp) -> (Self, Rc<Cell<usize>>) {
        let counter = Rc::new(Cell::new(0));
        (Meter { inner, counter: Rc::clone(&counter) }, counter)
    }

    /// Wrap `inner` with an existing counter.
    pub fn with_counter(inner: BoxOp, counter: Rc<Cell<usize>>) -> Self {
        Meter { inner, counter }
    }
}

impl Operator for Meter {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self) -> Option<Row> {
        let row = self.inner.next();
        if row.is_some() {
            self.counter.set(self.counter.get() + 1);
        }
        row
    }
}

/// Drain an operator into a vector.
pub fn collect(op: &mut dyn Operator) -> Vec<Row> {
    let mut out = Vec::new();
    while let Some(r) = op.next() {
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::{DataType, Value};

    /// A tiny literal-rows source for tests.
    pub struct RowsOp {
        schema: Schema,
        rows: std::vec::IntoIter<Row>,
    }

    impl RowsOp {
        pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
            RowsOp { schema, rows: rows.into_iter() }
        }
    }

    impl Operator for RowsOp {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn next(&mut self) -> Option<Row> {
            self.rows.next()
        }
    }

    #[test]
    fn meter_counts_rows() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let rows: Vec<Row> = (0..5).map(|i| vec![Value::Int(i)]).collect();
        let src = Box::new(RowsOp::new(schema, rows));
        let (mut m, counter) = Meter::new(src);
        assert_eq!(counter.get(), 0);
        let out = collect(&mut m);
        assert_eq!(out.len(), 5);
        assert_eq!(counter.get(), 5);
    }

    #[test]
    fn governor_grant_and_fluctuation() {
        let g = MemoryGovernor::new(10_000.0);
        assert_eq!(g.grant(5_000.0), 5_000.0);
        assert_eq!(g.grant(50_000.0), 10_000.0);
        g.set_budget(1_000.0);
        assert_eq!(g.grant(50_000.0), 1_000.0);
        g.set_budget(0.0);
        assert_eq!(g.grant(50_000.0), 100.0, "one-page floor");
    }

    #[test]
    fn contexts() {
        let c = ExecContext::unbounded();
        assert_eq!(c.clock.now(), 0.0);
        assert!(c.memory.budget().is_infinite());
        let c = ExecContext::with_memory(500.0);
        assert_eq!(c.memory.budget(), 500.0);
    }
}
