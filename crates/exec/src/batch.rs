//! Batch-at-a-time twins of the scalar hot-path operators.
//!
//! Each operator here consumes/produces [`ColumnBatch`]es instead of rows:
//! the scan packs a table range into typed column vectors (dictionary-encoding
//! strings), the filter clears selection bits with tight typed loops, and the
//! hash join/aggregation key on packed `(tag, u64)` codes derived from
//! [`rqp_common::KeyAtom`] instead of `Vec<Value>` keys.
//!
//! **Cost contract.** Every batch operator charges the [cost
//! clock](rqp_common::clock) the *same totals* as its scalar twin, just in
//! bulk (one `charge_cpu_tuples(n)` instead of `n` charges of `1.0`). Page
//! charges and chaos injection still happen per absolute page index, so fault
//! schedules are identical in both modes. Under dyadic cost parameters the
//! two breakdowns are bit-identical; under arbitrary parameters they agree to
//! float-summation error (the property tests in `tests/batch.rs` pin both).
//!
//! **Row contract.** A batch plan yields exactly the rows of its scalar twin,
//! in the same order — including the hash join's reversed per-probe match
//! emission and the aggregation's group-key output sort.
//!
//! Batch join/group-by keys are single-column (the common case in this
//! testbed); constructors return `Err` for multi-column keys and callers fall
//! back to the scalar operators.

use crate::context::{ExecContext, WorkspaceLease};
use crate::scan::{page_chaos, pin_page};
use crate::Operator;
use crate::agg::{AggFunc, AggSpec};
use rqp_common::{
    key_atom_f64, key_atom_i64, ColVec, ColumnBatch, DataType, Expr, KeyAtom, Result, Row,
    RqpError, Schema, SimplePred, StringDict, Value,
};
use rqp_storage::Table;
use rqp_telemetry::SpanHandle;
use std::collections::HashMap;
use std::sync::Arc;

/// A pull-based batch operator: the batch-mode analogue of [`Operator`].
pub trait BatchOperator {
    /// Output schema (one field per batch column).
    fn schema(&self) -> &Schema;

    /// The string dictionary all `Str` columns' codes point into. Operators
    /// that combine two batch streams require `Arc::ptr_eq` dictionaries.
    fn dict(&self) -> &Arc<StringDict>;

    /// Produce the next batch, or `None` when exhausted. A returned batch
    /// may have zero selected rows — consumers must keep pulling.
    fn next_batch(&mut self) -> Option<ColumnBatch>;

    /// The telemetry span counting this operator's output.
    fn span(&self) -> Option<&SpanHandle> {
        None
    }
}

/// Boxed batch operator, the unit of batch-plan composition.
pub type BoxBatchOp = Box<dyn BatchOperator>;

/// Copy row `i` of `src` onto the end of `dst` (same-typed columns).
pub(crate) fn push_from(dst: &mut ColVec, src: &ColVec, i: usize) {
    match (dst, src) {
        (ColVec::Int(d), ColVec::Int(s)) => d.push(s[i]),
        (ColVec::Float(d), ColVec::Float(s)) => d.push(s[i]),
        (ColVec::Str(d), ColVec::Str(s)) => d.push(s[i]),
        _ => unreachable!("column type drift within one batch stream"),
    }
}

/// An empty column vector of the same type as `like`.
fn empty_like(like: &ColVec) -> ColVec {
    match like {
        ColVec::Int(_) => ColVec::Int(Vec::new()),
        ColVec::Float(_) => ColVec::Float(Vec::new()),
        ColVec::Str(_) => ColVec::Str(Vec::new()),
    }
}

/// An empty column vector for a schema field type.
pub(crate) fn empty_for(dtype: DataType) -> ColVec {
    match dtype {
        DataType::Int => ColVec::Int(Vec::new()),
        DataType::Float => ColVec::Float(Vec::new()),
        DataType::Str => ColVec::Str(Vec::new()),
    }
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

/// Sequential batch scan of a table (or contiguous row range).
///
/// Page charges, cancellation checkpoints and chaos injection happen at the
/// same absolute page boundaries as [`crate::scan::TableScanOp`]; per-tuple
/// CPU is charged in bulk per batch. `Str` columns are dictionary-encoded
/// through the pipeline's shared [`StringDict`] at batch-build time.
pub struct BatchScanOp {
    table: Arc<Table>,
    schema: Schema,
    ctx: ExecContext,
    dict: Arc<StringDict>,
    /// Per `Str` column: the table's memoized local encoding plus the map
    /// from local codes to this pipeline's dictionary codes. One intern per
    /// *distinct* value at construction, pure integer gathers per batch.
    str_cols: Vec<Option<(Arc<rqp_storage::StrEncoding>, Vec<u32>)>>,
    pos: usize,
    start: usize,
    end: usize,
    rows_per_page: f64,
    batch_rows: usize,
    chaos: bool,
    /// The table's buffer pool, if attached (see [`crate::scan::pin_page`]).
    pager: Option<Arc<rqp_storage::BufferPool>>,
    /// Pins on the pages the current batch was built from, cleared (unpinned)
    /// when the next batch starts or on drain/drop.
    batch_pins: Vec<rqp_storage::PagePin>,
    span: SpanHandle,
}

impl BatchScanOp {
    /// Scan all of `table` with a fresh dictionary.
    pub fn new(table: Arc<Table>, ctx: ExecContext) -> Self {
        let end = table.nrows();
        Self::with_dict(table, 0, end, Arc::new(StringDict::new()), ctx)
    }

    /// Scan rows `[start, end)` with a fresh dictionary.
    pub fn with_range(table: Arc<Table>, start: usize, end: usize, ctx: ExecContext) -> Self {
        Self::with_dict(table, start, end, Arc::new(StringDict::new()), ctx)
    }

    /// Scan rows `[start, end)`, interning strings into `dict` (pass the
    /// same dictionary to every source feeding one batch pipeline).
    pub fn with_dict(
        table: Arc<Table>,
        start: usize,
        end: usize,
        dict: Arc<StringDict>,
        ctx: ExecContext,
    ) -> Self {
        let schema = table.qualified_schema();
        let rows_per_page = ctx.clock.params().rows_per_page;
        let end = end.min(table.nrows());
        let start = start.min(end);
        let span = ctx.tracer.open("batch_scan", &ctx.clock);
        if start == 0 && end == table.nrows() {
            span.set_detail(table.name());
        } else {
            span.set_detail(&format!("{}[{start}..{end}]", table.name()));
        }
        let chaos = ctx.chaos.is_enabled();
        if chaos {
            rqp_common::chaos::install_quiet_panic_hook();
        }
        let str_cols = (0..schema.len())
            .map(|c| {
                table.str_encoding(c).map(|enc| {
                    let xlate: Vec<u32> = enc.values.iter().map(|s| dict.intern(s)).collect();
                    (enc, xlate)
                })
            })
            .collect();
        let pager = table.pager();
        BatchScanOp {
            table,
            schema,
            ctx,
            dict,
            str_cols,
            pos: start,
            start,
            end,
            rows_per_page,
            batch_rows: rqp_common::DEFAULT_BATCH_ROWS,
            chaos,
            pager,
            batch_pins: Vec::new(),
            span,
        }
    }

    /// Override the rows-per-batch (default [`rqp_common::DEFAULT_BATCH_ROWS`]).
    pub fn batch_rows(mut self, n: usize) -> Self {
        self.batch_rows = n.max(1);
        self
    }
}

impl BatchOperator for BatchScanOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn dict(&self) -> &Arc<StringDict> {
        &self.dict
    }

    fn next_batch(&mut self) -> Option<ColumnBatch> {
        if self.pos >= self.end {
            self.batch_pins.clear();
            self.span.close(&self.ctx.clock);
            return None;
        }
        let start = self.pos;
        let end = (start + self.batch_rows).min(self.end);
        // Identical page-boundary walk to the scalar scan: one sequential
        // page (plus checkpoint and chaos keyed on the absolute page index)
        // each time the cursor crosses a boundary or enters mid-page. Pages
        // stay pinned while the batch is built from them; the previous
        // batch's pins are released first.
        self.batch_pins.clear();
        for pos in start..end {
            if pos as f64 % self.rows_per_page == 0.0 || pos == self.start {
                self.ctx.checkpoint();
                self.ctx.clock.charge_seq_pages(1.0);
                let page = (pos as f64 / self.rows_per_page) as u64;
                if self.chaos {
                    page_chaos(&self.ctx, &self.span, self.table.name(), page);
                }
                if let Some(pool) = &self.pager {
                    self.batch_pins.push(pin_page(
                        &self.ctx,
                        &self.span,
                        pool,
                        self.table.name(),
                        page,
                    ));
                }
            }
        }
        let n = end - start;
        self.ctx.clock.charge_cpu_tuples(n as f64);
        let columns: Vec<ColVec> = (0..self.schema.len())
            .map(|c| {
                let col = self.table.column(c);
                if let Some(xs) = col.as_int_slice() {
                    ColVec::Int(xs[start..end].to_vec())
                } else if let Some(xs) = col.as_float_slice() {
                    ColVec::Float(xs[start..end].to_vec())
                } else {
                    let (enc, xlate) =
                        self.str_cols[c].as_ref().expect("exhaustive column types");
                    ColVec::Str(
                        enc.codes[start..end].iter().map(|&lc| xlate[lc as usize]).collect(),
                    )
                }
            })
            .collect();
        self.pos = end;
        self.span.produced_n(&self.ctx.clock, n as u64);
        Some(ColumnBatch::new(columns, Arc::clone(&self.dict)))
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

/// Compare an `i64` cell with a literal under [`Value::total_cmp`] semantics.
#[inline]
fn cmp_int_lit(x: i64, lit: &Value) -> std::cmp::Ordering {
    match lit {
        Value::Null => std::cmp::Ordering::Greater,
        Value::Int(b) => x.cmp(b),
        Value::Float(f) => (x as f64).total_cmp(f),
        Value::Str(_) => std::cmp::Ordering::Less,
    }
}

/// Compare an `f64` cell with a literal under [`Value::total_cmp`] semantics.
#[inline]
fn cmp_float_lit(x: f64, lit: &Value) -> std::cmp::Ordering {
    match lit {
        Value::Null => std::cmp::Ordering::Greater,
        Value::Int(b) => x.total_cmp(&(*b as f64)),
        Value::Float(f) => x.total_cmp(f),
        Value::Str(_) => std::cmp::Ordering::Less,
    }
}

/// Compare a resolved string cell with a literal under
/// [`Value::total_cmp`] semantics.
#[inline]
fn cmp_str_lit(x: &str, lit: &Value) -> std::cmp::Ordering {
    match lit {
        Value::Null => std::cmp::Ordering::Greater,
        Value::Int(_) | Value::Float(_) => std::cmp::Ordering::Greater,
        Value::Str(s) => x.cmp(s.as_str()),
    }
}

/// Filters batches by a [`SimplePred`]-compilable predicate, clearing
/// selection bits in place.
///
/// Semantics are exactly those of the scalar
/// [`FilterOp`](crate::filter::FilterOp) evaluating the same expression
/// (`total_cmp` comparisons, NULL-literal comparisons are false). One
/// compare is charged per examined (currently-selected) row, mirroring the
/// scalar per-row charge in bulk. Expressions that do not reduce to a
/// single-column simple predicate are rejected at construction — callers
/// fall back to the scalar filter.
pub struct BatchFilterOp {
    inner: BoxBatchOp,
    col: usize,
    pred: SimplePred,
    schema: Schema,
    ctx: ExecContext,
    /// Rows examined (for selectivity post-mortems).
    pub examined: usize,
    /// Rows passed.
    pub passed: usize,
    /// Per-dictionary-code pass/fail cache for string columns.
    code_cache: Vec<Option<bool>>,
    span: SpanHandle,
}

impl BatchFilterOp {
    /// Filter `inner` by `pred`, which must compile to a [`SimplePred`]
    /// bound against the inner schema.
    pub fn new(inner: BoxBatchOp, pred: &Expr, ctx: ExecContext) -> Result<Self> {
        let simple = SimplePred::from_expr(pred).ok_or_else(|| {
            RqpError::Invalid(format!("predicate not batch-compilable: {pred}"))
        })?;
        let schema = inner.schema().clone();
        let col = schema.index_of(simple.column())?;
        let span = ctx.tracer.open("batch_filter", &ctx.clock);
        span.set_detail(&pred.to_string());
        if let Some(s) = inner.span() {
            s.set_parent(span.id());
        }
        Ok(BatchFilterOp {
            inner,
            col,
            pred: simple,
            schema,
            ctx,
            examined: 0,
            passed: 0,
            code_cache: Vec::new(),
            span,
        })
    }

    /// Observed pass rate so far (1.0 before any row is examined).
    pub fn pass_rate(&self) -> f64 {
        if self.examined == 0 {
            1.0
        } else {
            self.passed as f64 / self.examined as f64
        }
    }

    /// Evaluate the predicate for one scalar cell comparison result stream.
    /// `cmp` maps a row index to `Ordering` against a literal.
    fn apply_cmp(
        sel: &mut rqp_common::SelMask,
        op: rqp_common::CmpOp,
        lit: &Value,
        mut cmp: impl FnMut(usize, &Value) -> std::cmp::Ordering,
    ) {
        if lit.is_null() {
            // eval_bool: a comparison against NULL is false for every row.
            sel.retain(|_| false);
        } else {
            sel.retain(|i| op.matches(cmp(i, lit)));
        }
    }
}

impl BatchOperator for BatchFilterOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn dict(&self) -> &Arc<StringDict> {
        self.inner.dict()
    }

    fn next_batch(&mut self) -> Option<ColumnBatch> {
        let Some(mut batch) = self.inner.next_batch() else {
            self.span.close(&self.ctx.clock);
            return None;
        };
        let examined = batch.sel.count();
        self.examined += examined;
        self.ctx.clock.charge_compares(examined as f64);
        let pred = &self.pred;
        match &batch.columns[self.col] {
            ColVec::Int(xs) => match pred {
                SimplePred::Cmp { op, value, .. } => {
                    Self::apply_cmp(&mut batch.sel, *op, value, |i, v| cmp_int_lit(xs[i], v));
                }
                SimplePred::Range { lo, hi, .. } => batch.sel.retain(|i| {
                    cmp_int_lit(xs[i], lo) != std::cmp::Ordering::Less
                        && cmp_int_lit(xs[i], hi) != std::cmp::Ordering::Greater
                }),
                SimplePred::InList { values, .. } => batch.sel.retain(|i| {
                    values
                        .iter()
                        .any(|v| cmp_int_lit(xs[i], v) == std::cmp::Ordering::Equal)
                }),
            },
            ColVec::Float(xs) => match pred {
                SimplePred::Cmp { op, value, .. } => {
                    Self::apply_cmp(&mut batch.sel, *op, value, |i, v| cmp_float_lit(xs[i], v));
                }
                SimplePred::Range { lo, hi, .. } => batch.sel.retain(|i| {
                    cmp_float_lit(xs[i], lo) != std::cmp::Ordering::Less
                        && cmp_float_lit(xs[i], hi) != std::cmp::Ordering::Greater
                }),
                SimplePred::InList { values, .. } => batch.sel.retain(|i| {
                    values
                        .iter()
                        .any(|v| cmp_float_lit(xs[i], v) == std::cmp::Ordering::Equal)
                }),
            },
            ColVec::Str(codes) => {
                // Fast path: equality against a string literal is a code
                // compare — the whole point of dictionary encoding.
                if let SimplePred::Cmp {
                    op: rqp_common::CmpOp::Eq,
                    value: Value::Str(s),
                    ..
                } = pred
                {
                    match batch.dict.lookup(s) {
                        Some(code) => batch.sel.retain(|i| codes[i] == code),
                        None => batch.sel.retain(|_| false),
                    }
                } else {
                    // General path: evaluate once per distinct code, cache
                    // the verdict, test codes thereafter.
                    let dict = Arc::clone(&batch.dict);
                    self.code_cache.resize(dict.len(), None);
                    let cache = &mut self.code_cache;
                    batch.sel.retain(|i| {
                        let c = codes[i] as usize;
                        *cache[c].get_or_insert_with(|| {
                            dict.with_resolved(codes[i], |s| match pred {
                                SimplePred::Cmp { op, value, .. } => {
                                    !value.is_null() && op.matches(cmp_str_lit(s, value))
                                }
                                SimplePred::Range { lo, hi, .. } => {
                                    cmp_str_lit(s, lo) != std::cmp::Ordering::Less
                                        && cmp_str_lit(s, hi) != std::cmp::Ordering::Greater
                                }
                                SimplePred::InList { values, .. } => values.iter().any(|v| {
                                    cmp_str_lit(s, v) == std::cmp::Ordering::Equal
                                }),
                            })
                        })
                    });
                }
            }
        }
        let passed = batch.sel.count();
        self.passed += passed;
        self.span.produced_n(&self.ctx.clock, passed as u64);
        Some(batch)
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

// ---------------------------------------------------------------------------
// Project
// ---------------------------------------------------------------------------

/// Projects a batch to a subset (or reordering) of its columns by name.
///
/// The batch twin of [`ProjectOp::columns`](crate::filter::ProjectOp::columns);
/// computed expressions are not batch-compiled — plans that need them fall
/// back to the scalar projector. Charges one CPU tuple per selected row, as
/// the scalar projector does for every row flowing through it.
pub struct BatchProjectOp {
    inner: BoxBatchOp,
    cols: Vec<usize>,
    schema: Schema,
    ctx: ExecContext,
    span: SpanHandle,
}

impl BatchProjectOp {
    /// Project `inner` to the named columns, keeping the given names.
    pub fn columns(inner: BoxBatchOp, cols: &[&str], ctx: ExecContext) -> Result<Self> {
        let in_schema = inner.schema();
        let mut idx = Vec::with_capacity(cols.len());
        let mut fields = Vec::with_capacity(cols.len());
        for c in cols {
            let i = in_schema.index_of(c)?;
            idx.push(i);
            fields.push(rqp_common::Field::new(*c, in_schema.field(i).dtype));
        }
        let span = ctx.tracer.open("batch_project", &ctx.clock);
        if let Some(s) = inner.span() {
            s.set_parent(span.id());
        }
        Ok(BatchProjectOp { inner, cols: idx, schema: Schema::new(fields), ctx, span })
    }
}

impl BatchOperator for BatchProjectOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn dict(&self) -> &Arc<StringDict> {
        self.inner.dict()
    }

    fn next_batch(&mut self) -> Option<ColumnBatch> {
        let Some(batch) = self.inner.next_batch() else {
            self.span.close(&self.ctx.clock);
            return None;
        };
        let n = batch.sel.count();
        self.ctx.clock.charge_cpu_tuples(n as f64);
        let columns: Vec<ColVec> =
            self.cols.iter().map(|&i| batch.columns[i].clone()).collect();
        self.span.produced_n(&self.ctx.clock, n as u64);
        Some(ColumnBatch { columns, sel: batch.sel, dict: batch.dict })
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

// ---------------------------------------------------------------------------
// Packed keys
// ---------------------------------------------------------------------------

/// A packed single-column join/group key: a type tag plus 64 key bits.
///
/// Tags keep key spaces disjoint (a string never equals a number under
/// [`Value::total_cmp`]). Within a space the packing is exact:
///
/// * `INT` — the raw `i64` bits (integer columns joined/grouped against
///   integer columns compare exactly; no canonicalization loss);
/// * `F64` — `f64::to_bits()` of the numeric value, used for float columns
///   and for the *mixed* Int⋈Float case, where scalar equality is numeric
///   (`total_cmp` casts the int side to `f64`, and `f64` total-order
///   equality is bit equality);
/// * `STR` — the dictionary code (valid because both sides share one
///   dictionary, enforced with `Arc::ptr_eq`).
type PackedKey = (u8, u64);

const TAG_INT: u8 = 1;
const TAG_F64: u8 = 2;
const TAG_STR: u8 = 3;

/// How a key column packs into a [`PackedKey`], fixed per (column type,
/// partner column type) at operator construction.
#[derive(Clone, Copy, PartialEq, Eq)]
enum KeyPack {
    /// `i64` column, partner also `i64`: exact integer key.
    IntExact,
    /// Numeric column in a mixed or float pairing: key is `f64` bits.
    Numeric,
    /// String column: key is the dictionary code.
    Code,
}

impl KeyPack {
    /// Choose the packing for a column of `dtype` joined against `other`.
    fn for_pair(dtype: DataType, other: DataType) -> KeyPack {
        match (dtype, other) {
            (DataType::Int, DataType::Int) => KeyPack::IntExact,
            (DataType::Int, _) | (DataType::Float, _) => KeyPack::Numeric,
            (DataType::Str, _) => KeyPack::Code,
        }
    }

    /// Pack row `i` of `col`.
    #[inline]
    fn pack(self, col: &ColVec, i: usize) -> PackedKey {
        match (self, col) {
            (KeyPack::IntExact, ColVec::Int(xs)) => (TAG_INT, xs[i] as u64),
            (KeyPack::Numeric, ColVec::Int(xs)) => (TAG_F64, (xs[i] as f64).to_bits()),
            (KeyPack::Numeric, ColVec::Float(xs)) => (TAG_F64, xs[i].to_bits()),
            (KeyPack::Code, ColVec::Str(xs)) => (TAG_STR, xs[i] as u64),
            _ => unreachable!("key packing chosen from the column's own type"),
        }
    }
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

/// Columnar row store for the hash join's build side.
struct BuildStore {
    columns: Vec<ColVec>,
    rows: usize,
}

impl BuildStore {
    fn append_selected(&mut self, batch: &ColumnBatch) {
        for i in batch.sel.iter_set() {
            for (dst, src) in self.columns.iter_mut().zip(&batch.columns) {
                push_from(dst, src, i);
            }
            self.rows += 1;
        }
    }
}

/// Batch hash join on a single equality key per side: builds on the
/// **right** input, probes with the left, comparing packed keys (dictionary
/// codes for strings, exact or numeric-canonical bits for numbers).
///
/// Mirrors [`HashJoinOp`](crate::join::HashJoinOp) exactly: workspace
/// grant/spill accounting on the build side, per-probe-batch lease
/// renegotiation, reversed per-probe match emission, and the probe-side
/// spill charged once at the end.
pub struct BatchHashJoinOp {
    left: BoxBatchOp,
    right: Option<BoxBatchOp>,
    left_key: usize,
    right_key: usize,
    left_pack: KeyPack,
    right_pack: KeyPack,
    schema: Schema,
    ctx: ExecContext,
    dict: Arc<StringDict>,
    store: BuildStore,
    table: HashMap<PackedKey, Vec<u32>>,
    built: bool,
    spill_fraction: f64,
    probe_rows: f64,
    lease: WorkspaceLease,
    span: SpanHandle,
}

impl BatchHashJoinOp {
    /// Join `left` and `right` on equality of one key column per side.
    ///
    /// Both inputs must share one dictionary (`Arc::ptr_eq`); build a
    /// pipeline's sources with [`BatchScanOp::with_dict`].
    pub fn new(
        left: BoxBatchOp,
        right: BoxBatchOp,
        left_key: &str,
        right_key: &str,
        ctx: ExecContext,
    ) -> Result<Self> {
        if !Arc::ptr_eq(left.dict(), right.dict()) {
            return Err(RqpError::Invalid(
                "batch join inputs must share one string dictionary".into(),
            ));
        }
        let lk = left.schema().index_of(left_key)?;
        let rk = right.schema().index_of(right_key)?;
        let lt = left.schema().field(lk).dtype;
        let rt = right.schema().field(rk).dtype;
        let schema = left.schema().join(right.schema());
        let span = ctx.tracer.open("batch_hash_join", &ctx.clock);
        for side in [&left, &right] {
            if let Some(s) = side.span() {
                s.set_parent(span.id());
            }
        }
        let dict = Arc::clone(left.dict());
        let store = BuildStore {
            columns: right
                .schema()
                .fields()
                .iter()
                .map(|f| empty_for(f.dtype))
                .collect(),
            rows: 0,
        };
        Ok(BatchHashJoinOp {
            left,
            right: Some(right),
            left_key: lk,
            right_key: rk,
            left_pack: KeyPack::for_pair(lt, rt),
            right_pack: KeyPack::for_pair(rt, lt),
            schema,
            ctx,
            dict,
            store,
            table: HashMap::new(),
            built: false,
            spill_fraction: 0.0,
            probe_rows: 0.0,
            lease: WorkspaceLease::new(),
            span,
        })
    }

    fn build(&mut self) {
        let mut right = self.right.take().expect("build called once");
        while let Some(batch) = right.next_batch() {
            let from = self.store.rows;
            self.store.append_selected(&batch);
            // Key every appended row from the compacted store so match
            // lists hold store indices in build (input) order.
            for r in from..self.store.rows {
                let k = self
                    .right_pack
                    .pack(&self.store.columns[self.right_key], r);
                self.table.entry(k).or_default().push(r as u32);
            }
        }
        let n = self.store.rows as f64;
        let grant = self.lease.grant(&self.ctx, &self.span, n);
        if n > grant {
            self.spill_fraction = 1.0 - grant / n;
            let spilled = n * self.spill_fraction;
            self.ctx.clock.charge_spill_rows(spilled);
            self.span.record_spill(spilled);
            self.span.record_event(
                &self.ctx.clock,
                "governor.spill",
                &format!("hash build spilled {spilled:.0} of {n:.0} rows (grant {grant:.0})"),
            );
        }
        self.ctx.clock.charge_hash_build(n);
        self.built = true;
    }

    /// Release the build-side grant and close the span. Idempotent; called
    /// on drain-to-`None` *and* on `Drop`.
    fn finish(&mut self) {
        if !self.span.is_closed() {
            self.lease.release(&self.ctx);
            self.span.close(&self.ctx.clock);
        }
    }
}

impl Drop for BatchHashJoinOp {
    fn drop(&mut self) {
        self.finish();
    }
}

impl BatchOperator for BatchHashJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn dict(&self) -> &Arc<StringDict> {
        &self.dict
    }

    fn next_batch(&mut self) -> Option<ColumnBatch> {
        if !self.built {
            self.build();
        }
        // Same cadence as the scalar join's per-call prologue: cooperative
        // abort, then shed build-side workspace if the budget shrank.
        self.ctx.checkpoint();
        self.lease.renegotiate(&self.ctx, &self.span);
        let Some(batch) = self.left.next_batch() else {
            if self.spill_fraction > 0.0 && self.probe_rows > 0.0 {
                let spilled = self.probe_rows * self.spill_fraction;
                self.ctx.clock.charge_spill_rows(spilled);
                self.span.record_spill(spilled);
                self.span.record_event(
                    &self.ctx.clock,
                    "governor.spill",
                    &format!("hash probe spilled {spilled:.0} rows"),
                );
                self.probe_rows = 0.0;
            }
            self.finish();
            return None;
        };
        let probes = batch.sel.count();
        self.probe_rows += probes as f64;
        self.ctx.clock.charge_hash_probe(probes as f64);
        let left_w = batch.columns.len();
        let mut out: Vec<ColVec> = batch
            .columns
            .iter()
            .map(empty_like)
            .chain(self.store.columns.iter().map(empty_like))
            .collect();
        let mut produced = 0u64;
        let key_col = &batch.columns[self.left_key];
        for i in batch.sel.iter_set() {
            let k = self.left_pack.pack(key_col, i);
            if let Some(matches) = self.table.get(&k) {
                // Scalar twin pops a cloned match list, emitting in
                // *reverse* build order — replicate for row-identity.
                for &m in matches.iter().rev() {
                    for (c, dst) in out.iter_mut().enumerate().take(left_w) {
                        push_from(dst, &batch.columns[c], i);
                    }
                    for (c, dst) in out.iter_mut().enumerate().skip(left_w) {
                        push_from(dst, &self.store.columns[c - left_w], m as usize);
                    }
                    produced += 1;
                }
            }
        }
        self.ctx.clock.charge_cpu_tuples(produced as f64);
        self.span.produced_n(&self.ctx.clock, produced);
        Some(ColumnBatch::new(out, Arc::clone(&self.dict)))
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

// ---------------------------------------------------------------------------
// Hash aggregation
// ---------------------------------------------------------------------------

/// Typed accumulator mirroring the scalar `AggState` arithmetic exactly
/// (same `f64` summation in input-row order, same min/max comparisons).
#[derive(Clone)]
struct BatchAggState {
    count: f64,
    sum: f64,
    min_i: Option<i64>,
    max_i: Option<i64>,
    min_f: Option<f64>,
    max_f: Option<f64>,
}

impl BatchAggState {
    fn new() -> Self {
        BatchAggState { count: 0.0, sum: 0.0, min_i: None, max_i: None, min_f: None, max_f: None }
    }

    #[inline]
    fn update_int(&mut self, x: i64) {
        self.count += 1.0;
        self.sum += x as f64;
        if self.min_i.map(|m| x < m).unwrap_or(true) {
            self.min_i = Some(x);
        }
        if self.max_i.map(|m| x > m).unwrap_or(true) {
            self.max_i = Some(x);
        }
    }

    #[inline]
    fn update_float(&mut self, x: f64) {
        self.count += 1.0;
        self.sum += x;
        if self
            .min_f
            .map(|m| x.total_cmp(&m) == std::cmp::Ordering::Less)
            .unwrap_or(true)
        {
            self.min_f = Some(x);
        }
        if self
            .max_f
            .map(|m| x.total_cmp(&m) == std::cmp::Ordering::Greater)
            .unwrap_or(true)
        {
            self.max_f = Some(x);
        }
    }

    #[inline]
    fn update_count_only(&mut self) {
        self.count += 1.0;
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => Value::Float(self.sum),
            AggFunc::Min => self
                .min_i
                .map(Value::Int)
                .or(self.min_f.map(Value::Float))
                .unwrap_or(Value::Null),
            AggFunc::Max => self
                .max_i
                .map(Value::Int)
                .or(self.max_f.map(Value::Float))
                .unwrap_or(Value::Null),
            AggFunc::Avg => {
                if self.count > 0.0 {
                    Value::Float(self.sum / self.count)
                } else {
                    Value::Null
                }
            }
        }
    }
}

/// Batch hash GROUP BY aggregation over at most one group column, producing
/// scalar rows (aggregation is a pipeline breaker with tiny output, so its
/// output side stays row-oriented and it implements [`Operator`] directly).
///
/// Row- and charge-identical to [`HashAggOp`](crate::agg::HashAggOp): `f64`
/// accumulation in input-row order, one `hash_build` unit per input row
/// charged after the drain, deterministically sorted output, one global row
/// for group-less aggregation over empty input.
pub struct BatchHashAggOp {
    inner: Option<BoxBatchOp>,
    group_col: Option<usize>,
    group_pack: Option<KeyPack>,
    aggs: Vec<(AggFunc, Option<usize>)>,
    schema: Schema,
    ctx: ExecContext,
    out: Option<std::vec::IntoIter<Row>>,
    span: SpanHandle,
}

impl BatchHashAggOp {
    /// Aggregate `inner`, grouping by zero or one columns. `Min`/`Max`/`Sum`
    /// over string columns are rejected (callers fall back to the scalar
    /// aggregation, which compares `Value`s).
    pub fn new(
        inner: BoxBatchOp,
        group_by: &[&str],
        aggs: &[AggSpec],
        ctx: ExecContext,
    ) -> Result<Self> {
        if aggs.is_empty() && group_by.is_empty() {
            return Err(RqpError::Invalid("aggregation needs groups or aggregates".into()));
        }
        if group_by.len() > 1 {
            return Err(RqpError::Invalid(
                "batch aggregation supports at most one group column".into(),
            ));
        }
        let in_schema = inner.schema().clone();
        let group_col = group_by
            .first()
            .map(|c| in_schema.index_of(c))
            .transpose()?;
        let mut fields: Vec<rqp_common::Field> = group_col
            .iter()
            .map(|&i| in_schema.field(i).clone())
            .collect();
        let mut bound = Vec::with_capacity(aggs.len());
        for a in aggs {
            let col = a.col.as_deref().map(|c| in_schema.index_of(c)).transpose()?;
            let dtype = match a.func {
                AggFunc::Count => DataType::Int,
                AggFunc::Sum | AggFunc::Avg => DataType::Float,
                AggFunc::Min | AggFunc::Max => col
                    .map(|i| in_schema.field(i).dtype)
                    .unwrap_or(DataType::Float),
            };
            if let Some(i) = col {
                if in_schema.field(i).dtype == DataType::Str
                    && !matches!(a.func, AggFunc::Count)
                {
                    return Err(RqpError::Invalid(
                        "batch aggregation over string columns supports only COUNT".into(),
                    ));
                }
            }
            fields.push(rqp_common::Field::new(a.alias.clone(), dtype));
            bound.push((a.func, col));
        }
        let span = ctx.tracer.open("batch_hash_agg", &ctx.clock);
        if let Some(s) = inner.span() {
            s.set_parent(span.id());
        }
        let group_pack = group_col.map(|i| {
            let dt = in_schema.field(i).dtype;
            KeyPack::for_pair(dt, dt)
        });
        Ok(BatchHashAggOp {
            inner: Some(inner),
            group_col,
            group_pack,
            aggs: bound,
            schema: Schema::new(fields),
            ctx,
            out: None,
            span,
        })
    }

    fn run(&mut self) {
        let mut inner = self.inner.take().expect("run once");
        // Group key → (representative group Value for output, accumulators).
        let mut groups: HashMap<PackedKey, (Value, Vec<BatchAggState>)> = HashMap::new();
        let global_key: PackedKey = (0, 0);
        let mut n = 0.0;
        while let Some(batch) = inner.next_batch() {
            for i in batch.sel.iter_set() {
                n += 1.0;
                let (key, rep) = match (self.group_col, self.group_pack) {
                    (Some(c), Some(p)) => {
                        let col = &batch.columns[c];
                        (p.pack(col, i), Some(col))
                    }
                    _ => (global_key, None),
                };
                let states = groups.entry(key).or_insert_with(|| {
                    let rep_val = rep
                        .map(|col| match col {
                            ColVec::Int(xs) => Value::Int(xs[i]),
                            ColVec::Float(xs) => Value::Float(xs[i]),
                            ColVec::Str(xs) => Value::Str(batch.dict.resolve(xs[i])),
                        })
                        .unwrap_or(Value::Null);
                    (rep_val, vec![BatchAggState::new(); self.aggs.len()])
                });
                for (s, (_, col)) in states.1.iter_mut().zip(&self.aggs) {
                    match col.map(|c| &batch.columns[c]) {
                        None => s.update_count_only(),
                        Some(ColVec::Int(xs)) => s.update_int(xs[i]),
                        Some(ColVec::Float(xs)) => s.update_float(xs[i]),
                        Some(ColVec::Str(_)) => s.update_count_only(),
                    }
                }
            }
        }
        self.ctx.clock.charge_hash_build(n);
        if groups.is_empty() && self.group_col.is_none() {
            groups.insert(global_key, (Value::Null, vec![BatchAggState::new(); self.aggs.len()]));
        }
        let grouped = self.group_col.is_some();
        let mut rows: Vec<Row> = groups
            .into_values()
            .map(|(rep, states)| {
                let mut row = Vec::with_capacity(self.schema.len());
                if grouped {
                    row.push(rep);
                }
                row.extend(states.iter().zip(&self.aggs).map(|(s, (f, _))| s.finish(*f)));
                row
            })
            .collect();
        if grouped {
            rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        }
        self.ctx.clock.charge_cpu_tuples(rows.len() as f64);
        self.out = Some(rows.into_iter());
    }
}

impl Operator for BatchHashAggOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        if self.out.is_none() {
            self.run();
        }
        let row = self.out.as_mut().expect("filled").next();
        match &row {
            Some(_) => self.span.produced(&self.ctx.clock),
            None => self.span.close(&self.ctx.clock),
        }
        row
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

// ---------------------------------------------------------------------------
// Batch → row adapter and partition replay source
// ---------------------------------------------------------------------------

/// Materializes a batch stream's surviving rows as scalar [`Row`]s — the
/// boundary between a batch pipeline and its scalar consumer (exchange
/// gather, result collection, scalar operators above).
///
/// Charges nothing: every upstream batch operator already charged what its
/// scalar twin would have.
pub struct BatchRowsOp {
    inner: BoxBatchOp,
    schema: Schema,
    current: Option<(ColumnBatch, Vec<usize>, usize)>,
    /// Lock-free resolve cache: `str_cache[code]` is the dictionary string
    /// for `code`, synced from the (dense, grow-only) dictionary in chunks
    /// so materialization never takes the dictionary lock per cell.
    str_cache: Vec<String>,
    ctx: ExecContext,
    span: SpanHandle,
}

/// Materialize row `i` of `batch`, resolving dictionary codes through the
/// caller's local cache (one dictionary lock per cache refill, not per cell).
fn materialize_cached(batch: &ColumnBatch, i: usize, str_cache: &mut Vec<String>) -> Row {
    batch
        .columns
        .iter()
        .map(|c| match c {
            ColVec::Int(v) => Value::Int(v[i]),
            ColVec::Float(v) => Value::Float(v[i]),
            ColVec::Str(v) => {
                let code = v[i] as usize;
                if code >= str_cache.len() {
                    batch.dict.resolve_from(str_cache.len(), str_cache);
                }
                Value::Str(str_cache[code].clone())
            }
        })
        .collect()
}

impl BatchRowsOp {
    /// Adapt `inner` to the scalar [`Operator`] interface.
    pub fn new(inner: BoxBatchOp, ctx: ExecContext) -> Self {
        let schema = inner.schema().clone();
        let span = ctx.tracer.open("batch_rows", &ctx.clock);
        if let Some(s) = inner.span() {
            s.set_parent(span.id());
        }
        BatchRowsOp { inner, schema, current: None, str_cache: Vec::new(), ctx, span }
    }

    /// Convenience: box as a scalar operator.
    pub fn boxed(inner: BoxBatchOp, ctx: ExecContext) -> crate::BoxOp {
        Box::new(Self::new(inner, ctx))
    }
}

impl Operator for BatchRowsOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        loop {
            if let Some((batch, idxs, pos)) = &mut self.current {
                if let Some(&i) = idxs.get(*pos) {
                    *pos += 1;
                    let row = materialize_cached(batch, i, &mut self.str_cache);
                    self.span.produced(&self.ctx.clock);
                    return Some(row);
                }
                self.current = None;
            }
            match self.inner.next_batch() {
                Some(batch) => {
                    let idxs: Vec<usize> = batch.sel.iter_set().collect();
                    self.current = Some((batch, idxs, 0));
                }
                None => {
                    self.span.close(&self.ctx.clock);
                    return None;
                }
            }
        }
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

/// Replays one repartitioned columnar partition inside an exchange worker —
/// the batch twin of [`PartitionSourceOp`](crate::exchange::PartitionSourceOp),
/// charging one CPU tuple per replayed row (in bulk per batch).
pub struct BatchPartitionSourceOp {
    columns: Vec<ColVec>,
    schema: Schema,
    dict: Arc<StringDict>,
    ctx: ExecContext,
    pos: usize,
    rows: usize,
    batch_rows: usize,
    span: SpanHandle,
}

impl BatchPartitionSourceOp {
    /// Replay `columns` (one partition's compacted rows) under `schema`.
    pub fn new(
        columns: Vec<ColVec>,
        schema: Schema,
        dict: Arc<StringDict>,
        ctx: ExecContext,
    ) -> Self {
        let rows = columns.first().map_or(0, ColVec::len);
        let span = ctx.tracer.open("batch_partition_source", &ctx.clock);
        span.set_detail(&format!("{rows} rows"));
        BatchPartitionSourceOp {
            columns,
            schema,
            dict,
            ctx,
            pos: 0,
            rows,
            batch_rows: rqp_common::DEFAULT_BATCH_ROWS,
            span,
        }
    }
}

/// Slice a column vector to `[start, end)`.
fn slice_col(col: &ColVec, start: usize, end: usize) -> ColVec {
    match col {
        ColVec::Int(v) => ColVec::Int(v[start..end].to_vec()),
        ColVec::Float(v) => ColVec::Float(v[start..end].to_vec()),
        ColVec::Str(v) => ColVec::Str(v[start..end].to_vec()),
    }
}

impl BatchOperator for BatchPartitionSourceOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn dict(&self) -> &Arc<StringDict> {
        &self.dict
    }

    fn next_batch(&mut self) -> Option<ColumnBatch> {
        if self.pos >= self.rows {
            self.span.close(&self.ctx.clock);
            return None;
        }
        let start = self.pos;
        let end = (start + self.batch_rows).min(self.rows);
        let n = end - start;
        self.ctx.clock.charge_cpu_tuples(n as f64);
        let columns: Vec<ColVec> =
            self.columns.iter().map(|c| slice_col(c, start, end)).collect();
        self.pos = end;
        self.span.produced_n(&self.ctx.clock, n as u64);
        Some(ColumnBatch::new(columns, Arc::clone(&self.dict)))
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

/// Hash one selected row's key columns exactly as the scalar
/// [`hash_keys`](crate::exchange::hash_keys) does on materialized rows:
/// fold [`KeyAtom`] encodings per key column, resolving dictionary codes to
/// string bytes (codes are process-local; wire checksums and partition
/// routing must agree with the scalar path byte-for-byte).
pub(crate) fn hash_batch_row_keys(batch: &ColumnBatch, keys: &[usize], i: usize) -> u64 {
    let mut h = crate::exchange::FNV_OFFSET;
    for &k in keys {
        h = match &batch.columns[k] {
            ColVec::Int(xs) => crate::exchange::hash_atom(h, key_atom_i64(xs[i])),
            ColVec::Float(xs) => crate::exchange::hash_atom(h, key_atom_f64(xs[i])),
            ColVec::Str(xs) => batch
                .dict
                .with_resolved(xs[i], |s| crate::exchange::hash_atom(h, KeyAtom::Str(s))),
        };
    }
    h
}
