//! Sort and top-N operators with memory-bounded spill accounting.

use crate::context::{ExecContext, WorkspaceLease};
use crate::{BoxOp, Operator};
use rqp_common::{Result, Row, Schema};
use rqp_telemetry::SpanHandle;
use std::cmp::Ordering;

/// Sort direction per key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

fn cmp_rows(a: &Row, b: &Row, keys: &[(usize, SortOrder)]) -> Ordering {
    for &(i, ord) in keys {
        let o = a[i].total_cmp(&b[i]);
        if o != Ordering::Equal {
            return match ord {
                SortOrder::Asc => o,
                SortOrder::Desc => o.reverse(),
            };
        }
    }
    Ordering::Equal
}

/// Full sort: materializes the input, sorts, then streams.
///
/// If the input exceeds the memory grant, external-run generation and merge
/// are *charged* (one spill round trip of the overflow plus merge
/// comparisons) — the data itself stays in memory, only the cost model pays,
/// which is all the robustness metrics observe. The "grow & shrink memory"
/// session's point — rigid workspaces cause cliffs — reproduces as a cost
/// step at `input > grant`.
pub struct SortOp {
    inner: Option<BoxOp>,
    keys: Vec<(usize, SortOrder)>,
    schema: Schema,
    ctx: ExecContext,
    sorted: Option<std::vec::IntoIter<Row>>,
    lease: WorkspaceLease,
    span: SpanHandle,
}

impl SortOp {
    /// Sort by the named columns.
    pub fn new(inner: BoxOp, keys: &[(&str, SortOrder)], ctx: ExecContext) -> Result<Self> {
        let schema = inner.schema().clone();
        let bound: Vec<(usize, SortOrder)> = keys
            .iter()
            .map(|(k, o)| schema.index_of(k).map(|i| (i, *o)))
            .collect::<Result<_>>()?;
        let span = ctx.op_span("sort", &[&inner]);
        Ok(SortOp {
            inner: Some(inner),
            keys: bound,
            schema,
            ctx,
            sorted: None,
            lease: WorkspaceLease::new(),
            span,
        })
    }

    /// Ascending sort by the named columns.
    pub fn asc(inner: BoxOp, keys: &[&str], ctx: ExecContext) -> Result<Self> {
        let pairs: Vec<(&str, SortOrder)> =
            keys.iter().map(|k| (*k, SortOrder::Asc)).collect();
        Self::new(inner, &pairs, ctx)
    }

    fn materialize(&mut self) {
        let mut inner = self.inner.take().expect("materialize once");
        let mut rows = Vec::new();
        while let Some(r) = inner.next() {
            rows.push(r);
        }
        let n = rows.len() as f64;
        if n > 1.0 {
            let grant = self.lease.grant(&self.ctx, &self.span, n);
            // In-memory comparisons: n log2(n) within runs.
            self.ctx.clock.charge_compares(n * n.log2());
            if n > grant {
                // External sort: spill overflow once (write+read), plus a
                // merge pass of comparisons across runs.
                let overflow = n - grant;
                self.ctx.clock.charge_spill_rows(overflow);
                self.span.record_spill(overflow);
                self.span.record_event(
                    &self.ctx.clock,
                    "governor.spill",
                    &format!("sort spilled {overflow:.0} of {n:.0} rows (grant {grant:.0})"),
                );
                let runs = (n / grant).ceil().max(2.0);
                self.ctx.clock.charge_compares(n * runs.log2());
            }
        }
        rows.sort_by(|a, b| cmp_rows(a, b, &self.keys));
        self.sorted = Some(rows.into_iter());
    }

    /// Release the workspace grant and close the span. Idempotent; called on
    /// drain-to-`None` *and* on `Drop`, so a consumer that stops early (a
    /// limit, a POP re-plan abandoning the pipeline) cannot leak
    /// `outstanding` or leave an open span in the run report.
    fn finish(&mut self) {
        if !self.span.is_closed() {
            self.lease.release(&self.ctx);
            self.span.close(&self.ctx.clock);
        }
    }
}

impl Drop for SortOp {
    fn drop(&mut self) {
        self.finish();
    }
}

impl Operator for SortOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        if self.sorted.is_none() {
            self.materialize();
        }
        // Cooperative abort and budget pressure are observed at the same
        // boundary: a cancelled sort unwinds here (Drop releases the lease),
        // a budget shrink mid-drain (FMT shock) sheds workspace and charges
        // incremental spill instead of holding the grant hostage.
        self.ctx.checkpoint();
        self.lease.renegotiate(&self.ctx, &self.span);
        let row = self.sorted.as_mut().expect("materialized").next();
        match &row {
            Some(_) => {
                self.ctx.clock.charge_cpu_tuples(1.0);
                self.span.produced(&self.ctx.clock);
            }
            None => self.finish(),
        }
        row
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

/// Top-N by sort keys, using a bounded heap (never spills).
///
/// Accounting mirrors [`SortOp`]: the bounded buffer takes a governor grant
/// (for its `n`-row capacity) and each output row charges per-tuple CPU, so
/// Top-N is not invisible to the robustness metrics — it is merely cheaper
/// than a full sort, not free.
pub struct TopNOp {
    inner: Option<BoxOp>,
    keys: Vec<(usize, SortOrder)>,
    n: usize,
    schema: Schema,
    ctx: ExecContext,
    out: Option<std::vec::IntoIter<Row>>,
    lease: WorkspaceLease,
    span: SpanHandle,
}

impl TopNOp {
    /// Keep the first `n` rows in sort order.
    pub fn new(
        inner: BoxOp,
        keys: &[(&str, SortOrder)],
        n: usize,
        ctx: ExecContext,
    ) -> Result<Self> {
        let schema = inner.schema().clone();
        let bound: Vec<(usize, SortOrder)> = keys
            .iter()
            .map(|(k, o)| schema.index_of(k).map(|i| (i, *o)))
            .collect::<Result<_>>()?;
        let span = ctx.op_span("top_n", &[&inner]);
        Ok(TopNOp {
            inner: Some(inner),
            keys: bound,
            n,
            schema,
            ctx,
            out: None,
            lease: WorkspaceLease::new(),
            span,
        })
    }

    /// Release the buffer grant and close the span (idempotent; see
    /// [`SortOp::finish`]).
    fn finish(&mut self) {
        if !self.span.is_closed() {
            self.lease.release(&self.ctx);
            self.span.close(&self.ctx.clock);
        }
    }
}

impl Drop for TopNOp {
    fn drop(&mut self) {
        self.finish();
    }
}

impl Operator for TopNOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        if self.out.is_none() {
            let mut inner = self.inner.take().expect("run once");
            // Simple bounded selection: keep a sorted buffer of ≤ n rows.
            self.lease.grant(&self.ctx, &self.span, self.n as f64);
            let mut buf: Vec<Row> = Vec::with_capacity(self.n + 1);
            while let Some(r) = inner.next() {
                self.ctx
                    .clock
                    .charge_compares((buf.len().max(1) as f64).log2() + 1.0);
                let pos = buf
                    .binary_search_by(|probe| cmp_rows(probe, &r, &self.keys))
                    .unwrap_or_else(|e| e);
                if pos < self.n {
                    buf.insert(pos, r);
                    buf.truncate(self.n);
                }
            }
            self.out = Some(buf.into_iter());
        }
        let row = self.out.as_mut().expect("filled").next();
        match &row {
            Some(_) => {
                self.ctx.clock.charge_cpu_tuples(1.0);
                self.span.produced(&self.ctx.clock);
            }
            None => self.finish(),
        }
        row
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::collect;
    use crate::filter::test_support::RowsOp;
    use rqp_common::{DataType, Value};

    fn src(n: i64) -> BoxOp {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let rows: Vec<Row> = (0..n)
            .map(|i| vec![Value::Int((i * 7919) % n), Value::Int(i)])
            .collect();
        RowsOp::boxed(schema, rows)
    }

    #[test]
    fn sorts_ascending() {
        let ctx = ExecContext::unbounded();
        let mut s = SortOp::asc(src(100), &["a"], ctx).unwrap();
        let out = collect(&mut s);
        assert_eq!(out.len(), 100);
        assert!(out.windows(2).all(|w| w[0][0] <= w[1][0]));
    }

    #[test]
    fn sorts_descending_with_secondary_key() {
        let ctx = ExecContext::unbounded();
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let rows = vec![
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(2), Value::Int(0)],
        ];
        let mut s = SortOp::new(
            RowsOp::boxed(schema, rows),
            &[("a", SortOrder::Desc), ("b", SortOrder::Asc)],
            ctx,
        )
        .unwrap();
        let out = collect(&mut s);
        assert_eq!(out[0][0], Value::Int(2));
        assert_eq!(out[1], vec![Value::Int(1), Value::Int(1)]);
    }

    #[test]
    fn cancelled_sort_unwinds_and_releases_its_lease() {
        use rqp_common::RqpError;
        let ctx = ExecContext::with_memory(50_000.0);
        let mut s = SortOp::asc(src(10_000), &["a"], ctx.clone()).unwrap();
        // Partially drain, then cancel mid-stream: the next checkpoint
        // unwinds with the typed cause and Drop releases the grant.
        for _ in 0..5 {
            s.next();
        }
        assert!(ctx.memory.outstanding() > 0.0, "sort holds its grant");
        ctx.cancel.cancel();
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.next();
        }))
        .expect_err("cancelled sort must unwind");
        assert_eq!(
            *payload.downcast_ref::<RqpError>().expect("typed payload"),
            RqpError::Cancelled
        );
        drop(s);
        assert_eq!(ctx.memory.outstanding(), 0.0, "lease released on unwind");
    }

    #[test]
    fn memory_pressure_charges_spill() {
        let tight = ExecContext::with_memory(100.0);
        let mut s = SortOp::asc(src(10_000), &["a"], tight.clone()).unwrap();
        let out = collect(&mut s);
        assert_eq!(out.len(), 10_000);
        assert!(out.windows(2).all(|w| w[0][0] <= w[1][0]), "spill keeps order");
        assert!(tight.clock.breakdown().spill > 0.0);

        let ample = ExecContext::unbounded();
        let mut s = SortOp::asc(src(10_000), &["a"], ample.clone()).unwrap();
        collect(&mut s);
        assert_eq!(ample.clock.breakdown().spill, 0.0);
        assert!(ample.clock.now() < tight.clock.now());
    }

    #[test]
    fn topn_matches_sort_prefix() {
        let ctx = ExecContext::unbounded();
        let mut t = TopNOp::new(src(500), &[("a", SortOrder::Asc)], 10, ctx.clone()).unwrap();
        let top = collect(&mut t);
        assert!(ctx.clock.now() > 0.0, "top-n is not free to the cost model");
        let topn_cost = ctx.clock.now();
        let mut s = SortOp::asc(src(500), &["a"], ctx.clone()).unwrap();
        let full = collect(&mut s);
        assert_eq!(top.len(), 10);
        for (a, b) in top.iter().zip(full.iter()) {
            assert_eq!(a[0], b[0]);
        }
        assert!(
            ctx.clock.now() - topn_cost > topn_cost,
            "full sort costs more than top-n"
        );
        drop(s);
        drop(t);
        assert_eq!(ctx.memory.outstanding(), 0.0, "buffer grants released");
    }

    #[test]
    fn topn_takes_a_buffer_grant() {
        let ctx = ExecContext::with_memory(1_000.0);
        let mut t = TopNOp::new(src(500), &[("a", SortOrder::Asc)], 10, ctx.clone()).unwrap();
        assert!(t.next().is_some());
        assert_eq!(ctx.memory.outstanding(), 10.0, "n-row buffer is accounted");
        collect(&mut t);
        assert_eq!(ctx.memory.outstanding(), 0.0, "released on drain");
    }

    #[test]
    fn partial_drain_releases_grant_and_closes_span() {
        // The headline early-termination bug: a consumer that stops early
        // (limit, top-n, POP re-plan) must not leak workspace or leave open
        // spans in the run report.
        let ctx = ExecContext::with_memory(50_000.0);
        let mut s = SortOp::asc(src(10_000), &["a"], ctx.clone()).unwrap();
        for _ in 0..3 {
            s.next(); // materializes (grant 10_000), yields 3 of 10_000 rows
        }
        assert_eq!(ctx.memory.outstanding(), 10_000.0, "grant held mid-drain");
        drop(s);
        assert_eq!(ctx.memory.outstanding(), 0.0, "drop releases the grant");
        assert!(
            ctx.tracer.snapshot().iter().all(|sp| !sp.closed_at.is_nan()),
            "no open spans after drop"
        );

        // Same for a partially drained top-n.
        let ctx = ExecContext::with_memory(50_000.0);
        let mut t =
            TopNOp::new(src(1_000), &[("a", SortOrder::Asc)], 100, ctx.clone()).unwrap();
        t.next();
        assert_eq!(ctx.memory.outstanding(), 100.0);
        drop(t);
        assert_eq!(ctx.memory.outstanding(), 0.0);
        assert!(ctx.tracer.snapshot().iter().all(|sp| !sp.closed_at.is_nan()));
    }

    #[test]
    fn budget_shrink_mid_drain_sheds_and_spills_once() {
        // The chaos-governor regression test: a shrink landing while the
        // sort is draining must shed workspace, charge spill exactly once
        // per shock, and leave nothing outstanding at completion.
        let ctx = ExecContext::with_memory(50_000.0);
        let mut s = SortOp::asc(src(10_000), &["a"], ctx.clone()).unwrap();
        for _ in 0..3 {
            s.next();
        }
        assert_eq!(ctx.memory.outstanding(), 10_000.0, "grant held mid-drain");
        assert_eq!(ctx.clock.breakdown().spill, 0.0, "no pressure yet");
        // Shock 1: shrink below the holding.
        ctx.memory.set_budget(2_000.0);
        s.next();
        assert_eq!(ctx.memory.outstanding(), 2_000.0, "overflow shed");
        let spill1 = ctx.clock.breakdown().spill;
        assert!(spill1 > 0.0, "shed workspace is charged as spill");
        assert_eq!(s.span().unwrap().spill_events(), 1, "exactly one spill per shock");
        // Draining further without another shock spills nothing more.
        for _ in 0..100 {
            s.next();
        }
        assert_eq!(ctx.clock.breakdown().spill, spill1);
        // Shock 2: another shrink, exactly one more spill event.
        ctx.memory.set_budget(500.0);
        s.next();
        assert_eq!(ctx.memory.outstanding(), 500.0);
        assert!(ctx.clock.breakdown().spill > spill1);
        assert_eq!(s.span().unwrap().spill_events(), 2);
        // Full drain completes with nothing outstanding and the event trail
        // in the span.
        let rest = collect(&mut s);
        assert_eq!(rest.len(), 10_000 - 3 - 1 - 100 - 1);
        assert_eq!(ctx.memory.outstanding(), 0.0, "outstanding()==0 after completion");
        let events = s.span().unwrap().events();
        assert_eq!(
            events.iter().filter(|e| e.kind == "governor.pressure").count(),
            2,
            "one governor.pressure event per shock"
        );
    }

    #[test]
    fn topn_with_fewer_rows_than_n() {
        let ctx = ExecContext::unbounded();
        let mut t = TopNOp::new(src(3), &[("a", SortOrder::Asc)], 10, ctx).unwrap();
        assert_eq!(collect(&mut t).len(), 3);
    }

    #[test]
    fn empty_sort() {
        let ctx = ExecContext::unbounded();
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let mut s = SortOp::asc(RowsOp::boxed(schema, vec![]), &["a"], ctx.clone()).unwrap();
        assert!(s.next().is_none());
        assert_eq!(ctx.clock.now(), 0.0);
    }

    #[test]
    fn unknown_sort_key_errors() {
        let ctx = ExecContext::unbounded();
        assert!(SortOp::asc(src(5), &["zz"], ctx).is_err());
    }
}
