//! Volcano-style **exchange**: intra-query parallelism behind the
//! [`Operator`] trait.
//!
//! Graefe's exchange operator encapsulates parallelism so that every other
//! operator stays single-threaded: an [`ExchangeOp`] spawns one OS thread per
//! partition, runs an independent operator pipeline in each, and gathers the
//! results back into an ordinary pull-based stream. Three building blocks:
//!
//! * **partition** — [`ExchangeOp::parallel_scan`] splits a base table into
//!   page-aligned ranges ([`Table::page_partitions`]) and runs one range scan
//!   per worker;
//! * **repartition** — [`ExchangeOp::repartition`] drains an arbitrary input
//!   and redistributes its rows by [`Partitioning::Hash`] or
//!   [`Partitioning::Range`] before running a per-partition pipeline;
//! * **gather** — every exchange merges worker outputs *in worker-index
//!   order*, so results and costs are reproducible.
//!
//! Determinism is the design center, because the cost clock is the
//! experiments' notion of response time. Each worker runs under
//! [`ExecContext::fork_worker`]: a private shard clock and tracer, the shared
//! memory governor and metrics. The gather side then
//! [`absorb`](rqp_common::CostClock::absorb)s shard breakdowns and
//! [`adopt`](rqp_telemetry::Tracer::adopt)s worker traces in worker order —
//! floating-point accumulation order never depends on thread scheduling, so
//! a plan's cost total is a pure function of the data and the plan shape.
//!
//! Skew is **injectable**: both partitioners take a `skew` fraction in
//! `[0, 1)` that deterministically reroutes that share of rows to partition
//! 0. Experiment `a04_parallel_scaling` uses it to measure how smoothly
//! speedup degrades as partitions become unbalanced; the gather publishes
//! `exchange.critical_path`, `exchange.total_work`, `exchange.speedup` and
//! `exchange.skew` gauges for exactly that purpose.

use crate::batch::{BatchPartitionSourceOp, BatchRowsOp, BatchScanOp, BoxBatchOp};
use crate::context::ExecContext;
use crate::scan::TableScanOp;
use crate::{BoxOp, Operator};
use rqp_common::chaos::{install_quiet_panic_hook, ChaosPanic};
use rqp_common::{
    ColVec, ColumnBatch, KeyAtom, Result, Row, RqpError, Schema, SharedClock, Value, WorkerFault,
};
use rqp_storage::Table;
use rqp_telemetry::SpanHandle;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Number of exchange workers to use when the caller doesn't say: the
/// `RQP_THREADS` environment variable, else 4. The CI matrix runs the suite
/// at `RQP_THREADS=1` and `RQP_THREADS=8`; determinism means both legs must
/// produce identical results and cost totals.
pub fn default_workers() -> usize {
    std::env::var("RQP_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

/// How a repartition exchange routes rows to workers.
#[derive(Debug, Clone)]
pub enum Partitioning {
    /// Route by an FNV-1a hash of the key columns (by index). `skew` in
    /// `[0, 1)` deterministically reroutes that fraction of rows to
    /// partition 0.
    Hash {
        /// Key column indexes into the row.
        keys: Vec<usize>,
        /// Fraction of rows rerouted to partition 0.
        skew: f64,
    },
    /// Route by uniform numeric ranges over one key column (Int or Float).
    /// Partition boundaries split `[min, max]` evenly, so partition `i`
    /// holds keys below partition `i + 1`'s. `skew` works as for `Hash`.
    Range {
        /// Key column index into the row.
        key: usize,
        /// Fraction of rows rerouted to partition 0.
        skew: f64,
    },
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(h, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Fold one canonical [`KeyAtom`] into an FNV-1a stream (tag byte, then
/// payload bytes). Shared by [`hash_value`] and the batch-mode routing path,
/// which packs atoms straight from column vectors without materializing
/// `Value`s — both must produce identical streams, or batch and scalar
/// repartitions would route the same key to different workers.
pub(crate) fn hash_atom(h: u64, atom: KeyAtom<'_>) -> u64 {
    match atom {
        KeyAtom::Null => fnv1a(h, &[0]),
        KeyAtom::Int(i) => fnv1a(fnv1a(h, &[1]), &i.to_le_bytes()),
        KeyAtom::FloatBits(b) => fnv1a(fnv1a(h, &[2]), &b.to_le_bytes()),
        KeyAtom::Str(s) => fnv1a(fnv1a(h, &[3]), s.as_bytes()),
    }
}

/// Deterministic FNV-1a hash of one value (type tag + payload bytes).
/// Platform- and run-independent, unlike `std`'s `RandomState`, so hash
/// partitions are reproducible across processes and CI legs.
///
/// Hashes the value's **canonical key atom** ([`Value::key_atom`]), not its
/// variant: `Value::total_cmp` calls `Int(3)` and `Float(3.0)` equal, so
/// hashing them under different type tags (as this function once did) routed
/// numerically-equal mixed-type keys to different workers — a silent
/// wrong-answer bug for hash repartitioning. An integral float now hashes
/// byte-identically to its integer twin; `Int` keys and non-integral floats
/// keep their original encodings, so hash partitions (and `rows_checksum`
/// streams) over single-type keys are unchanged.
pub fn hash_value(h: u64, v: &Value) -> u64 {
    hash_atom(h, v.key_atom())
}

/// Hash the given key columns of a row. Errors if an index is out of bounds.
pub fn hash_keys(row: &Row, keys: &[usize]) -> Result<u64> {
    let mut h = FNV_OFFSET;
    for &k in keys {
        let v = row
            .get(k)
            .ok_or(RqpError::KeyOutOfBounds { index: k, width: row.len() })?;
        h = hash_value(h, v);
    }
    Ok(h)
}

/// Deterministic skew decision: treat the hash's top 32 bits as a uniform
/// fraction and reroute to partition 0 when it falls below `skew`.
fn skewed_to_zero(h: u64, skew: f64) -> bool {
    skew > 0.0 && ((h >> 32) as f64 / u32::MAX as f64) < skew
}

fn numeric_key(row: &Row, key: usize) -> Result<f64> {
    let v = row
        .get(key)
        .ok_or(RqpError::KeyOutOfBounds { index: key, width: row.len() })?;
    v.as_float()
        .ok_or_else(|| RqpError::NonNumericKey(format!("{v:?}")))
}

/// Split `rows` into `parts` buckets per `spec`. Pure and deterministic:
/// the same rows and spec always yield the same buckets, in input order
/// within each bucket.
pub fn partition_rows(rows: Vec<Row>, spec: &Partitioning, parts: usize) -> Result<Vec<Vec<Row>>> {
    let parts = parts.max(1);
    let mut out: Vec<Vec<Row>> = (0..parts).map(|_| Vec::new()).collect();
    match spec {
        Partitioning::Hash { keys, skew } => {
            for row in rows {
                let h = hash_keys(&row, keys)?;
                let p = if skewed_to_zero(h, *skew) { 0 } else { (h % parts as u64) as usize };
                out[p].push(row);
            }
        }
        Partitioning::Range { key, skew } => {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for row in &rows {
                let v = numeric_key(row, *key)?;
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let width = (hi - lo).max(f64::MIN_POSITIVE);
            for row in rows {
                let v = numeric_key(&row, *key)?;
                let by_range = (((v - lo) / width) * parts as f64) as usize;
                let h = hash_value(FNV_OFFSET, &row[*key]);
                let p = if skewed_to_zero(h, *skew) { 0 } else { by_range.min(parts - 1) };
                out[p].push(row);
            }
        }
    }
    Ok(out)
}

/// Builds one worker's pipeline inside that worker's thread, under the
/// worker's forked context. The returned [`BoxOp`] never crosses threads —
/// only the builder (and the rows it captures) must be `Send`. Builders are
/// `Fn`, not `FnOnce`: when a worker is lost to an injected fault, the
/// gather re-invokes the same builder under a fresh context to retry the
/// partition.
pub type WorkerBuilder = Box<dyn Fn(&ExecContext) -> BoxOp + Send + Sync>;

/// A per-partition pipeline applied on top of a partition source (or range
/// scan) inside each worker. Shared across workers, hence `Fn + Send + Sync`.
pub type PipelineBuilder = Arc<dyn Fn(BoxOp, &ExecContext) -> BoxOp + Send + Sync>;

/// Wrap a closure as a [`PipelineBuilder`].
pub fn pipeline(f: impl Fn(BoxOp, &ExecContext) -> BoxOp + Send + Sync + 'static) -> PipelineBuilder {
    Arc::new(f)
}

/// A per-partition **batch** pipeline applied on top of a batch range scan
/// (or batch partition source) inside each worker — the batch-mode analogue
/// of [`PipelineBuilder`].
pub type BatchPipelineBuilder =
    Arc<dyn Fn(BoxBatchOp, &ExecContext) -> BoxBatchOp + Send + Sync>;

/// Wrap a closure as a [`BatchPipelineBuilder`].
pub fn batch_pipeline(
    f: impl Fn(BoxBatchOp, &ExecContext) -> BoxBatchOp + Send + Sync + 'static,
) -> BatchPipelineBuilder {
    Arc::new(f)
}

/// A materialized partition, replayed as an operator inside a worker. This
/// is the "receive" half of a repartition exchange.
pub struct PartitionSourceOp {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
    span: SpanHandle,
    clock: SharedClock,
}

impl PartitionSourceOp {
    /// Source over pre-partitioned rows, traced under the worker's context.
    pub fn new(schema: Schema, rows: Vec<Row>, ctx: &ExecContext) -> Self {
        let span = ctx.tracer.open("partition_source", &ctx.clock);
        span.set_detail(&format!("rows={}", rows.len()));
        span.set_est_rows(rows.len() as f64);
        PartitionSourceOp {
            schema,
            rows: rows.into_iter(),
            span,
            clock: Arc::clone(&ctx.clock),
        }
    }
}

impl Operator for PartitionSourceOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        match self.rows.next() {
            Some(r) => {
                self.clock.charge_cpu_tuples(1.0);
                self.span.produced(&self.clock);
                Some(r)
            }
            None => {
                self.span.close(&self.clock);
                None
            }
        }
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

/// The exchange operator: runs one worker thread per builder, gathers
/// deterministically, then streams the union.
///
/// Execution is **eager**: workers run inside `new` (the exchange is a
/// pipeline breaker either way), so by the time the constructor returns the
/// coordinator clock holds the absorbed shard costs, the trace holds one
/// `exchange_worker` span per worker with the worker's operators beneath it,
/// and the imbalance gauges are published. `next()` then replays the
/// gathered rows, charging one CPU tuple each — the merge cost, identical
/// for every worker count.
pub struct ExchangeOp {
    schema: Schema,
    ctx: ExecContext,
    out: std::vec::IntoIter<Row>,
    span: SpanHandle,
}

/// Run one worker's pipeline to completion, applying any chaos fault
/// scheduled for `(worker, attempt)` first. An injected panic carries a
/// [`ChaosPanic`] payload so the gather can tell it apart from a genuine
/// bug; an injected stall charges extra sequential pages to the shard
/// clock before the pipeline runs.
fn run_worker(build: &WorkerBuilder, wctx: &ExecContext, worker: usize, attempt: u32) -> (Schema, Vec<Row>) {
    // Don't start (or retry) a worker for a query that is already cancelled;
    // the pipeline's own scan/sort/join checkpoints take over from here.
    wctx.checkpoint();
    match wctx.chaos.worker_fault(worker, attempt) {
        Some(WorkerFault::Panic) => {
            wctx.metrics.counter("chaos.worker_panics").inc();
            std::panic::panic_any(ChaosPanic { worker, attempt });
        }
        Some(WorkerFault::Stall(pages)) => {
            wctx.metrics.counter("chaos.worker_stalls").inc();
            wctx.clock.charge_seq_pages(pages);
        }
        None => {}
    }
    let mut op = build(wctx);
    let schema = op.schema().clone();
    let mut rows = Vec::new();
    while let Some(r) = op.next() {
        rows.push(r);
    }
    (schema, rows)
}

/// If the panic payload came from fault injection (a [`ChaosPanic`] marker
/// or a typed [`RqpError`], e.g. scan retries exhausted), describe it for
/// the trace; anything else is a genuine bug and must keep unwinding.
fn injected_cause(payload: &(dyn Any + Send)) -> Option<String> {
    if let Some(cp) = payload.downcast_ref::<ChaosPanic>() {
        Some(format!("injected panic (worker {}, attempt {})", cp.worker, cp.attempt))
    } else {
        payload.downcast_ref::<RqpError>().map(|e| e.to_string())
    }
}

/// If the panic payload is a typed error the gather must propagate *as is* —
/// a cooperative-cancellation trip ([`RqpError::Cancelled`] /
/// [`RqpError::DeadlineExceeded`]) or buffer-pool budget exhaustion
/// ([`RqpError::PageBudgetExhausted`]) — return it. The gather consults this
/// *before* [`injected_cause`]: retrying a cancelled worker would re-trip
/// the token immediately, and retrying an exhausted page budget would
/// exhaust it again; both would burn the retry budget and misreport the
/// abort as [`RqpError::WorkerFailed`].
fn cancellation_cause(payload: &(dyn Any + Send)) -> Option<RqpError> {
    payload
        .downcast_ref::<RqpError>()
        .filter(|e| {
            e.is_cancellation() || matches!(e, RqpError::PageBudgetExhausted { .. })
        })
        .cloned()
}

/// Absorb one worker attempt's shard clock into the coordinator, open the
/// `exchange_worker` span for it, adopt its partial trace, and record the
/// gather event. Returns the shard's total cost. The `attempt == 0`
/// success path emits byte-identical spans/events to the pre-chaos gather
/// so chaos-off traces are unchanged.
fn gather_attempt(
    ctx: &ExecContext,
    span: &SpanHandle,
    wctx: &ExecContext,
    worker: usize,
    attempt: u32,
    outcome: std::result::Result<usize, &str>,
) -> f64 {
    let shard = wctx.clock.breakdown();
    ctx.clock.absorb(&shard);
    let cost = shard.total();
    let wspan = ctx.tracer.open("exchange_worker", &ctx.clock);
    wspan.set_parent(span.id());
    match outcome {
        Ok(rows) => {
            if attempt == 0 {
                wspan.set_detail(&format!("worker={worker} cost={cost:.4}"));
            } else {
                wspan.set_detail(&format!("worker={worker} attempt={attempt} cost={cost:.4}"));
            }
            wspan.produced_n(&ctx.clock, rows as u64);
            wspan.close(&ctx.clock);
            ctx.tracer.adopt(&wctx.tracer, Some(wspan.id()));
            if attempt == 0 {
                span.record_event(
                    &ctx.clock,
                    "exchange.worker",
                    &format!("worker={worker} rows={rows} cost={cost:.4}"),
                );
            } else {
                span.record_event(
                    &ctx.clock,
                    "exchange.worker_recovered",
                    &format!("worker={worker} attempt={attempt} rows={rows} cost={cost:.4}"),
                );
            }
        }
        Err(cause) => {
            wspan.set_detail(&format!("worker={worker} attempt={attempt} failed cost={cost:.4}"));
            wspan.close(&ctx.clock);
            ctx.tracer.adopt(&wctx.tracer, Some(wspan.id()));
            span.record_event(
                &ctx.clock,
                "exchange.worker_failed",
                &format!("worker={worker} attempt={attempt} cost={cost:.4} cause={cause}"),
            );
        }
    }
    cost
}

impl ExchangeOp {
    /// Run `builders` (one worker each) and gather in worker-index order.
    ///
    /// Panics if `builders` is empty or a worker fails beyond recovery;
    /// prefer [`ExchangeOp::try_new`] where worker loss should surface as a
    /// typed error.
    pub fn new(builders: Vec<WorkerBuilder>, ctx: ExecContext) -> Self {
        Self::try_new(builders, ctx).unwrap_or_else(|e| panic!("exchange worker failed: {e}"))
    }

    /// Run `builders` and gather in worker-index order, recovering lost
    /// workers.
    ///
    /// A worker lost to an injected fault (a [`ChaosPanic`] or a typed
    /// [`RqpError`] panic payload, e.g. scan retries exhausted) is retried
    /// on the coordinator with a fresh forked context, charging one random
    /// page per attempt as backoff, up to the policy's retry bound; the
    /// lost attempt's partial cost and trace are still absorbed, so
    /// recovery is visible as extra cost rather than vanished work. Retries
    /// exhausted surfaces as [`RqpError::WorkerFailed`]. Genuine panics
    /// (any other payload) keep unwinding.
    pub fn try_new(builders: Vec<WorkerBuilder>, ctx: ExecContext) -> Result<Self> {
        assert!(!builders.is_empty(), "exchange needs at least one worker");
        let workers = builders.len();
        if ctx.chaos.is_enabled() {
            install_quiet_panic_hook();
        }
        let span = ctx.tracer.open("exchange", &ctx.clock);
        span.set_detail(&format!("workers={workers}"));

        // Fork one private context per worker, indexed by position.
        let contexts: Vec<ExecContext> = (0..workers).map(|_| ctx.fork_worker()).collect();

        // Run every pipeline to completion on its own thread. Scoped threads
        // let builders borrow the forked contexts; dropping the operator
        // before returning releases its grants and closes its spans even if
        // a pipeline stops early.
        let results: Vec<std::thread::Result<(Schema, Vec<Row>)>> = std::thread::scope(|s| {
            let handles: Vec<_> = builders
                .iter()
                .zip(&contexts)
                .enumerate()
                .map(|(i, (build, wctx))| s.spawn(move || run_worker(build, wctx, i, 0)))
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });

        // Deterministic gather: absorb shard clocks and adopt worker traces
        // strictly in worker-index order, never in completion order. Lost
        // workers are retried inline here, still in worker-index order, so
        // recovery does not perturb the gather order either.
        let mut schema: Option<Schema> = None;
        let mut out: Vec<Row> = Vec::new();
        let mut costs: Vec<f64> = Vec::with_capacity(workers);
        for (i, (result, wctx)) in results.into_iter().zip(&contexts).enumerate() {
            let mut worker_cost;
            let (wschema, rows) = match result {
                Ok((wschema, rows)) => {
                    worker_cost = gather_attempt(&ctx, &span, wctx, i, 0, Ok(rows.len()));
                    (wschema, rows)
                }
                Err(payload) => {
                    if let Some(cancel) = cancellation_cause(payload.as_ref()) {
                        ctx.metrics.counter("exchange.workers_cancelled").inc();
                        gather_attempt(&ctx, &span, wctx, i, 0, Err(&cancel.to_string()));
                        span.close(&ctx.clock);
                        return Err(cancel);
                    }
                    let Some(cause) = injected_cause(payload.as_ref()) else {
                        resume_unwind(payload);
                    };
                    ctx.metrics.counter("exchange.workers_lost").inc();
                    worker_cost = gather_attempt(&ctx, &span, wctx, i, 0, Err(&cause));
                    let max_retries = ctx.chaos.worker_max_retries();
                    let mut attempt = 1u32;
                    loop {
                        if attempt > max_retries {
                            span.close(&ctx.clock);
                            return Err(RqpError::WorkerFailed { worker: i, attempts: attempt });
                        }
                        // Backoff: the coordinator pays a growing random-I/O
                        // charge before each retry, so recovery has a
                        // deterministic, visible cost.
                        ctx.clock.charge_random_pages(f64::from(attempt));
                        ctx.metrics.counter("exchange.worker_retries").inc();
                        let rctx = ctx.fork_worker();
                        match catch_unwind(AssertUnwindSafe(|| run_worker(&builders[i], &rctx, i, attempt))) {
                            Ok((wschema, rows)) => {
                                worker_cost += gather_attempt(&ctx, &span, &rctx, i, attempt, Ok(rows.len()));
                                ctx.metrics.counter("exchange.recoveries").inc();
                                break (wschema, rows);
                            }
                            Err(p2) => {
                                if let Some(cancel) = cancellation_cause(p2.as_ref()) {
                                    ctx.metrics.counter("exchange.workers_cancelled").inc();
                                    gather_attempt(&ctx, &span, &rctx, i, attempt, Err(&cancel.to_string()));
                                    span.close(&ctx.clock);
                                    return Err(cancel);
                                }
                                let Some(cause) = injected_cause(p2.as_ref()) else {
                                    resume_unwind(p2);
                                };
                                worker_cost += gather_attempt(&ctx, &span, &rctx, i, attempt, Err(&cause));
                                attempt += 1;
                            }
                        }
                    }
                }
            };
            costs.push(worker_cost);
            out.extend(rows);
            schema.get_or_insert(wschema);
        }

        // Imbalance gauges: in a cost-clock world the slowest worker is the
        // elapsed time, so speedup = total work / critical path and skew is
        // the critical path relative to a perfectly balanced split.
        let total: f64 = costs.iter().sum();
        let critical = costs.iter().copied().fold(0.0_f64, f64::max);
        ctx.metrics.gauge("exchange.workers").set(workers as f64);
        ctx.metrics.gauge("exchange.total_work").set(total);
        ctx.metrics.gauge("exchange.critical_path").set(critical);
        ctx.metrics
            .gauge("exchange.speedup")
            .set(if critical > 0.0 { total / critical } else { 1.0 });
        ctx.metrics
            .gauge("exchange.skew")
            .set(if total > 0.0 { critical * workers as f64 / total } else { 1.0 });

        Ok(ExchangeOp {
            schema: schema.expect("at least one worker"),
            ctx,
            out: out.into_iter(),
            span,
        })
    }

    /// Parallel table scan: page-aligned range partitions, one
    /// [`TableScanOp::with_range`] per worker. Because partitions are
    /// page-aligned and gathered in worker order, the result rows *and* the
    /// cost breakdown equal the sequential scan's (plus the gather's
    /// per-tuple merge charge) for every worker count.
    pub fn parallel_scan(table: Arc<Table>, workers: usize, ctx: ExecContext) -> Self {
        Self::parallel_scan_with(table, workers, pipeline(|op, _| op), ctx)
    }

    /// Parallel scan with a per-worker pipeline on top of each range scan
    /// (e.g. a filter pushed into the workers).
    pub fn parallel_scan_with(
        table: Arc<Table>,
        workers: usize,
        build: PipelineBuilder,
        ctx: ExecContext,
    ) -> Self {
        Self::try_parallel_scan_with(table, workers, build, ctx)
            .unwrap_or_else(|e| panic!("exchange worker failed: {e}"))
    }

    /// [`ExchangeOp::parallel_scan_with`], surfacing unrecoverable worker
    /// loss as [`RqpError::WorkerFailed`] instead of panicking.
    pub fn try_parallel_scan_with(
        table: Arc<Table>,
        workers: usize,
        build: PipelineBuilder,
        ctx: ExecContext,
    ) -> Result<Self> {
        let workers = workers.max(1);
        let rpp = (ctx.clock.params().rows_per_page.max(1.0)) as usize;
        let builders: Vec<WorkerBuilder> = table
            .page_partitions(workers, rpp)
            .into_iter()
            .map(|(start, end)| {
                let table = Arc::clone(&table);
                let build = Arc::clone(&build);
                Box::new(move |wctx: &ExecContext| {
                    let scan: BoxOp =
                        Box::new(TableScanOp::with_range(Arc::clone(&table), start, end, wctx.clone()));
                    build(scan, wctx)
                }) as WorkerBuilder
            })
            .collect();
        Self::try_new(builders, ctx)
    }

    /// Repartition exchange: drain `input` on the coordinator (charging one
    /// CPU tuple per row for the routing pass), split its rows per `spec`,
    /// and run `build` over each partition's [`PartitionSourceOp`] in its
    /// own worker.
    pub fn repartition(
        mut input: BoxOp,
        spec: Partitioning,
        workers: usize,
        build: PipelineBuilder,
        ctx: ExecContext,
    ) -> Result<Self> {
        let workers = workers.max(1);
        let schema = input.schema().clone();
        let mut rows = Vec::new();
        while let Some(r) = input.next() {
            rows.push(r);
        }
        drop(input);
        ctx.clock.charge_cpu_tuples(rows.len() as f64);
        let parts = partition_rows(rows, &spec, workers)?;
        let builders: Vec<WorkerBuilder> = parts
            .into_iter()
            .map(|p| {
                let build = Arc::clone(&build);
                let schema = schema.clone();
                Box::new(move |wctx: &ExecContext| {
                    let src: BoxOp = Box::new(PartitionSourceOp::new(schema.clone(), p.clone(), wctx));
                    build(src, wctx)
                }) as WorkerBuilder
            })
            .collect();
        Self::try_new(builders, ctx)
    }

    /// Parallel **batch** table scan: page-aligned range partitions, one
    /// [`BatchScanOp`] per worker with `build` stacked on top, adapted to
    /// rows at each worker's boundary. Gather, worker recovery and charge
    /// totals are identical to [`ExchangeOp::try_parallel_scan_with`] over
    /// the equivalent scalar pipeline.
    pub fn try_parallel_batch_scan(
        table: Arc<Table>,
        workers: usize,
        build: BatchPipelineBuilder,
        ctx: ExecContext,
    ) -> Result<Self> {
        let workers = workers.max(1);
        let rpp = (ctx.clock.params().rows_per_page.max(1.0)) as usize;
        let builders: Vec<WorkerBuilder> = table
            .page_partitions(workers, rpp)
            .into_iter()
            .map(|(start, end)| {
                let table = Arc::clone(&table);
                let build = Arc::clone(&build);
                Box::new(move |wctx: &ExecContext| {
                    let scan: BoxBatchOp = Box::new(BatchScanOp::with_range(
                        Arc::clone(&table),
                        start,
                        end,
                        wctx.clone(),
                    ));
                    BatchRowsOp::boxed(build(scan, wctx), wctx.clone())
                }) as WorkerBuilder
            })
            .collect();
        Self::try_new(builders, ctx)
    }

    /// Repartition a **batch** stream: drain `input` on the coordinator,
    /// route each surviving row per `spec` into per-partition columnar
    /// buffers (never materializing `Value` rows — string keys hash through
    /// a per-code memo of their resolved bytes), and run `build` over each
    /// partition's [`BatchPartitionSourceOp`] in its own worker.
    ///
    /// Row routing, the one-CPU-tuple-per-row routing charge, and the
    /// worker/gather behavior are identical to [`ExchangeOp::repartition`]
    /// over the materialized rows: the FNV key stream hashes canonical
    /// [`KeyAtom`]s on both paths.
    pub fn repartition_batches(
        mut input: BoxBatchOp,
        spec: Partitioning,
        workers: usize,
        build: BatchPipelineBuilder,
        ctx: ExecContext,
    ) -> Result<Self> {
        let workers = workers.max(1);
        let schema = input.schema().clone();
        let dict = Arc::clone(input.dict());
        let mut batches = Vec::new();
        let mut routed = 0usize;
        while let Some(b) = input.next_batch() {
            routed += b.sel.count();
            batches.push(b);
        }
        drop(input);
        ctx.clock.charge_cpu_tuples(routed as f64);
        let parts = partition_batches(&batches, &schema, &spec, workers)?;
        let builders: Vec<WorkerBuilder> = parts
            .into_iter()
            .map(|p| {
                let build = Arc::clone(&build);
                let schema = schema.clone();
                let dict = Arc::clone(&dict);
                Box::new(move |wctx: &ExecContext| {
                    let src: BoxBatchOp = Box::new(BatchPartitionSourceOp::new(
                        p.clone(),
                        schema.clone(),
                        Arc::clone(&dict),
                        wctx.clone(),
                    ));
                    BatchRowsOp::boxed(build(src, wctx), wctx.clone())
                }) as WorkerBuilder
            })
            .collect();
        Self::try_new(builders, ctx)
    }
}

/// Split a drained batch stream into `parts` per-partition columnar buffers
/// per `spec`, preserving input order within each partition — the batch twin
/// of [`partition_rows`], routing by the same canonical key hashes.
fn partition_batches(
    batches: &[ColumnBatch],
    schema: &Schema,
    spec: &Partitioning,
    parts: usize,
) -> Result<Vec<Vec<ColVec>>> {
    let parts = parts.max(1);
    let mut out: Vec<Vec<ColVec>> = (0..parts)
        .map(|_| schema.fields().iter().map(|f| crate::batch::empty_for(f.dtype)).collect())
        .collect();
    let push_row = |out: &mut Vec<Vec<ColVec>>, batch: &ColumnBatch, p: usize, i: usize| {
        for (dst, src) in out[p].iter_mut().zip(&batch.columns) {
            crate::batch::push_from(dst, src, i);
        }
    };
    match spec {
        Partitioning::Hash { keys, skew } => {
            for &k in keys {
                if k >= schema.len() {
                    return Err(RqpError::KeyOutOfBounds { index: k, width: schema.len() });
                }
            }
            // Single string key: the whole-row hash depends only on the
            // dictionary code, so memoize it per code.
            let single_str_key = match keys.as_slice() {
                [k] if matches!(schema.field(*k).dtype, rqp_common::DataType::Str) => Some(*k),
                _ => None,
            };
            let mut code_memo: Vec<Option<u64>> = Vec::new();
            for batch in batches {
                for i in batch.sel.iter_set() {
                    let h = if let Some(k) = single_str_key {
                        let codes = batch.columns[k].as_codes().expect("typed Str column");
                        let c = codes[i] as usize;
                        if c >= code_memo.len() {
                            code_memo.resize(batch.dict.len(), None);
                        }
                        *code_memo[c].get_or_insert_with(|| {
                            batch
                                .dict
                                .with_resolved(codes[i], |s| hash_atom(FNV_OFFSET, KeyAtom::Str(s)))
                        })
                    } else {
                        crate::batch::hash_batch_row_keys(batch, keys, i)
                    };
                    let p = if skewed_to_zero(h, *skew) { 0 } else { (h % parts as u64) as usize };
                    push_row(&mut out, batch, p, i);
                }
            }
        }
        Partitioning::Range { key, skew } => {
            if *key >= schema.len() {
                return Err(RqpError::KeyOutOfBounds { index: *key, width: schema.len() });
            }
            let numeric = |batch: &ColumnBatch, i: usize| -> Result<f64> {
                match &batch.columns[*key] {
                    ColVec::Int(xs) => Ok(xs[i] as f64),
                    ColVec::Float(xs) => Ok(xs[i]),
                    ColVec::Str(xs) => Err(RqpError::NonNumericKey(format!(
                        "{:?}",
                        Value::Str(batch.dict.resolve(xs[i]))
                    ))),
                }
            };
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for batch in batches {
                for i in batch.sel.iter_set() {
                    let v = numeric(batch, i)?;
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            let width = (hi - lo).max(f64::MIN_POSITIVE);
            for batch in batches {
                for i in batch.sel.iter_set() {
                    let v = numeric(batch, i)?;
                    let by_range = (((v - lo) / width) * parts as f64) as usize;
                    let h = crate::batch::hash_batch_row_keys(batch, &[*key], i);
                    let p = if skewed_to_zero(h, *skew) { 0 } else { by_range.min(parts - 1) };
                    push_row(&mut out, batch, p, i);
                }
            }
        }
    }
    Ok(out)
}

impl Operator for ExchangeOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        match self.out.next() {
            Some(r) => {
                self.ctx.clock.charge_cpu_tuples(1.0);
                self.span.produced(&self.ctx.clock);
                Some(r)
            }
            None => {
                self.span.close(&self.ctx.clock);
                None
            }
        }
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

impl Drop for ExchangeOp {
    fn drop(&mut self) {
        if !self.span.is_closed() {
            self.span.close(&self.ctx.clock);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::collect;
    use crate::filter::test_support::RowsOp;
    use crate::FilterOp;
    use rqp_common::expr::{col, lit};
    use rqp_common::{CostClock, CostModelParams, DataType};

    fn table(n: i64) -> Arc<Table> {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("grp", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..n {
            t.append(vec![Value::Int(i), Value::Int(i % 7)]);
        }
        Arc::new(t)
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n).map(|i| vec![Value::Int(i), Value::Int(i % 7)]).collect()
    }

    fn row_schema() -> Schema {
        Schema::from_pairs(&[("id", DataType::Int), ("grp", DataType::Int)])
    }

    /// Cost params whose weights are all dyadic rationals (exact in binary
    /// floating point), so per-row charges sum associatively and cost totals
    /// are bit-identical no matter how rows are split across workers.
    fn dyadic_params() -> CostModelParams {
        CostModelParams {
            rows_per_page: 128.0,
            seq_page: 1.0,
            rand_page: 4.0,
            cpu_tuple: 1.0 / 256.0,
            cpu_compare: 1.0 / 512.0,
            hash_build: 1.0 / 64.0,
            hash_probe: 1.0 / 128.0,
            spill_page: 2.5,
        }
    }

    #[test]
    fn hash_partitions_are_deterministic_and_cover() {
        let spec = Partitioning::Hash { keys: vec![1], skew: 0.0 };
        let a = partition_rows(rows(100), &spec, 4).unwrap();
        let b = partition_rows(rows(100), &spec, 4).unwrap();
        assert_eq!(a, b, "same rows, same spec, same buckets");
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), 100);
        // Equal keys land in the same bucket (hash-join compatibility).
        for bucket in &a {
            for r in bucket {
                let p = (hash_keys(r, &[1]).unwrap() % 4) as usize;
                assert!(std::ptr::eq(&a[p], bucket) || a[p].contains(r));
            }
        }
        // Out-of-bounds key errors instead of panicking.
        assert!(partition_rows(rows(3), &Partitioning::Hash { keys: vec![9], skew: 0.0 }, 2).is_err());
    }

    #[test]
    fn hash_value_agrees_with_equality() {
        // The headline bugfix: a == b (total_cmp) ⇒ hash_value(h, a) ==
        // hash_value(h, b), for every seed. Crafted pairs first…
        let h = |v: &Value| hash_value(FNV_OFFSET, v);
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
        assert_eq!(h(&Value::Int(0)), h(&Value::Float(0.0)));
        assert_eq!(h(&Value::Int(-41)), h(&Value::Float(-41.0)));
        assert_eq!(h(&Value::Int(1 << 53)), h(&Value::Float((1u64 << 53) as f64)));
        assert_ne!(h(&Value::Int(2)), h(&Value::Float(2.5)), "unequal should (here) differ");
        // …then a seeded random sweep over seeds × mixed-type pairs.
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut equal_pairs = 0;
        for _ in 0..5_000 {
            let seed = next();
            let i = (next() as i64) % 1_000_000;
            let a = Value::Int(i);
            let b = if next() % 2 == 0 {
                Value::Float(i as f64)
            } else {
                Value::Float((next() as i64 % 1_000_000) as f64 / 8.0)
            };
            if a == b {
                equal_pairs += 1;
                assert_eq!(hash_value(seed, &a), hash_value(seed, &b), "{a:?} == {b:?}");
            }
        }
        assert!(equal_pairs > 500, "sweep must hit equal mixed pairs: {equal_pairs}");
    }

    #[test]
    fn mixed_type_keys_route_to_one_partition() {
        // Regression for the silent wrong-answer class: rows whose keys are
        // Int(k) on one side and Float(k.0) on the other must land in the
        // same hash partition, at any worker count.
        let mixed: Vec<Row> = (0..400)
            .map(|i| {
                let key = if i % 2 == 0 { Value::Int(i % 50) } else { Value::Float((i % 50) as f64) };
                vec![Value::Int(i), key]
            })
            .collect();
        for parts in [1usize, 2, 8] {
            let spec = Partitioning::Hash { keys: vec![1], skew: 0.0 };
            let buckets = partition_rows(mixed.clone(), &spec, parts).unwrap();
            for (p, bucket) in buckets.iter().enumerate() {
                for r in bucket {
                    // Every row with an equal key shares this row's bucket.
                    for (q, other) in buckets.iter().enumerate() {
                        if p == q {
                            continue;
                        }
                        assert!(
                            !other.iter().any(|o| o[1] == r[1]),
                            "key {:?} split across partitions {p} and {q} of {parts}",
                            r[1]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn int_key_hash_encoding_is_unchanged() {
        // Committed experiment artifacts depend on the routing of Int keys;
        // the canonicalization must leave tag-1 + i64-LE bytes intact for
        // every round-trip-safe integer.
        for i in [0i64, 1, -1, 42, 999_983, -2_000_000, (1 << 53) - 1] {
            let expected = fnv1a(fnv1a(FNV_OFFSET, &[1]), &i.to_le_bytes());
            assert_eq!(hash_value(FNV_OFFSET, &Value::Int(i)), expected);
        }
        // Non-integral floats keep tag 2 + bit pattern.
        let f = 2.5f64;
        let expected = fnv1a(fnv1a(FNV_OFFSET, &[2]), &f.to_bits().to_le_bytes());
        assert_eq!(hash_value(FNV_OFFSET, &Value::Float(f)), expected);
    }

    #[test]
    fn hash_skew_reroutes_to_partition_zero() {
        let spec = Partitioning::Hash { keys: vec![0], skew: 0.9 };
        let parts = partition_rows(rows(1000), &spec, 4).unwrap();
        assert!(
            parts[0].len() > 800,
            "skew=0.9 routes ~90% to partition 0, got {}",
            parts[0].len()
        );
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 1000);
        // Still deterministic under skew.
        assert_eq!(parts, partition_rows(rows(1000), &spec, 4).unwrap());
    }

    #[test]
    fn range_partitions_order_by_key() {
        let spec = Partitioning::Range { key: 0, skew: 0.0 };
        let parts = partition_rows(rows(1000), &spec, 4).unwrap();
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 1000);
        // Every key in partition i is below every key in partition i+1.
        let max_of = |p: &Vec<Row>| p.iter().map(|r| r[0].as_int().unwrap()).max();
        let min_of = |p: &Vec<Row>| p.iter().map(|r| r[0].as_int().unwrap()).min();
        for w in parts.windows(2) {
            if let (Some(hi), Some(lo)) = (max_of(&w[0]), min_of(&w[1])) {
                assert!(hi < lo, "range partitions must be ordered: {hi} !< {lo}");
            }
        }
        // Non-numeric keys are an error.
        let bad = vec![vec![Value::Str("x".into())]];
        assert!(partition_rows(bad, &Partitioning::Range { key: 0, skew: 0.0 }, 2).is_err());
    }

    #[test]
    fn parallel_scan_gathers_all_rows_in_table_order() {
        let t = table(1_050);
        let ctx = ExecContext::unbounded();
        let mut ex = ExchangeOp::parallel_scan(Arc::clone(&t), 4, ctx.clone());
        let out = collect(&mut ex);
        // Range partitions are contiguous and gathered in worker order, so
        // the parallel scan preserves table order exactly.
        let expected: Vec<Row> = t.iter_rows().collect();
        assert_eq!(out, expected);
        assert_eq!(ex.span().unwrap().rows(), 1_050);
        assert!(ex.span().unwrap().is_closed());
    }

    #[test]
    fn exchange_merges_worker_costs_traces_and_gauges() {
        let t = table(1_050);
        let ctx = ExecContext::unbounded();
        let mut ex = ExchangeOp::parallel_scan(Arc::clone(&t), 4, ctx.clone());
        collect(&mut ex);
        // Page charges equal the sequential scan's: page-aligned partitions
        // tile the 11 pages exactly.
        let bd = ctx.clock.breakdown();
        assert_eq!(bd.seq_io, 11.0 * ctx.clock.params().seq_page);
        // The trace holds the exchange span, one exchange_worker span per
        // worker (parented to it), and each worker's scan beneath its
        // exchange_worker span.
        let spans = ctx.tracer.snapshot();
        let ex_id = spans.iter().find(|s| s.kind == "exchange").unwrap().id;
        let wspans: Vec<_> = spans.iter().filter(|s| s.kind == "exchange_worker").collect();
        assert_eq!(wspans.len(), 4);
        for w in &wspans {
            assert_eq!(w.parent, Some(ex_id));
        }
        let scans: Vec<_> = spans.iter().filter(|s| s.kind == "table_scan").collect();
        assert_eq!(scans.len(), 4);
        for s in &scans {
            let parent = s.parent.expect("scan adopted under a worker span");
            assert!(wspans.iter().any(|w| w.id == parent));
        }
        // Worker spans count the rows their worker produced.
        assert_eq!(wspans.iter().map(|w| w.rows_out).sum::<u64>(), 1_050);
        // Gauges: 4 even workers → speedup near 4, skew near 1.
        assert_eq!(ctx.metrics.gauge("exchange.workers").get(), 4.0);
        let speedup = ctx.metrics.gauge("exchange.speedup").get();
        assert!(speedup > 3.0 && speedup <= 4.0, "even split speedup ~4, got {speedup}");
        let skew = ctx.metrics.gauge("exchange.skew").get();
        assert!((1.0..1.4).contains(&skew), "even split skew ~1, got {skew}");
        assert!(
            ctx.metrics.gauge("exchange.total_work").get()
                >= ctx.metrics.gauge("exchange.critical_path").get()
        );
    }

    #[test]
    fn parallel_plan_is_identical_for_1_2_and_8_workers() {
        // The satellite property test: cost is simulated, so parallelism
        // must not change *what* is charged — only how it is attributed to
        // workers. With dyadic cost weights (exact in binary fp) and
        // page-aligned partitions, rows AND cost breakdowns are
        // bit-identical across worker counts.
        let t = table(1_000);
        let run = |workers: usize| {
            let ctx = ExecContext::new(CostClock::new(dyadic_params()), f64::INFINITY);
            let build = pipeline(|op, wctx| {
                Box::new(FilterOp::new(op, &col("t.id").lt(lit(700_i64)), wctx.clone()).unwrap())
                    as BoxOp
            });
            let mut ex =
                ExchangeOp::parallel_scan_with(Arc::clone(&t), workers, build, ctx.clone());
            let rows = collect(&mut ex);
            (rows, ctx.clock.breakdown())
        };
        let (rows1, bd1) = run(1);
        for workers in [2, 8] {
            let (rows_n, bd_n) = run(workers);
            assert_eq!(rows1, rows_n, "row sets differ at {workers} workers");
            assert_eq!(bd1.seq_io.to_bits(), bd_n.seq_io.to_bits(), "{workers} workers");
            assert_eq!(bd1.rand_io.to_bits(), bd_n.rand_io.to_bits(), "{workers} workers");
            assert_eq!(bd1.cpu.to_bits(), bd_n.cpu.to_bits(), "{workers} workers");
            assert_eq!(bd1.spill.to_bits(), bd_n.spill.to_bits(), "{workers} workers");
        }
        assert_eq!(rows1.len(), 700);
    }

    #[test]
    fn repartition_runs_pipeline_per_partition_and_leaks_nothing() {
        let ctx = ExecContext::with_memory(50_000.0);
        let input = RowsOp::boxed(row_schema(), rows(500));
        let build = pipeline(|op, wctx| {
            Box::new(FilterOp::new(op, &col("id").ge(lit(100_i64)), wctx.clone()).unwrap()) as BoxOp
        });
        let spec = Partitioning::Hash { keys: vec![1], skew: 0.0 };
        let mut ex = ExchangeOp::repartition(input, spec, 4, build, ctx.clone()).unwrap();
        let mut out = collect(&mut ex);
        out.sort_by(|a, b| a[0].total_cmp(&b[0]));
        let expected: Vec<Row> = rows(500).into_iter().filter(|r| r[0].as_int().unwrap() >= 100).collect();
        assert_eq!(out, expected, "repartition preserves the filtered multiset");
        // Per-partition sources show up in the trace, adopted under workers.
        let spans = ctx.tracer.snapshot();
        assert_eq!(spans.iter().filter(|s| s.kind == "partition_source").count(), 4);
        assert_eq!(spans.iter().filter(|s| s.kind == "filter").count(), 4);
        // No workspace outstanding, every span closed.
        drop(ex);
        assert_eq!(ctx.memory.outstanding(), 0.0);
        for s in ctx.tracer.snapshot() {
            assert!(s.closed_at.is_finite(), "span {} ({}) left open", s.id, s.kind);
        }
    }

    #[test]
    fn skewed_exchange_reports_imbalance() {
        let even = {
            let ctx = ExecContext::unbounded();
            let input = RowsOp::boxed(row_schema(), rows(2_000));
            let spec = Partitioning::Hash { keys: vec![0], skew: 0.0 };
            let mut ex =
                ExchangeOp::repartition(input, spec, 4, pipeline(|op, _| op), ctx.clone()).unwrap();
            collect(&mut ex);
            ctx.metrics.gauge("exchange.speedup").get()
        };
        let skewed = {
            let ctx = ExecContext::unbounded();
            let input = RowsOp::boxed(row_schema(), rows(2_000));
            let spec = Partitioning::Hash { keys: vec![0], skew: 0.9 };
            let mut ex =
                ExchangeOp::repartition(input, spec, 4, pipeline(|op, _| op), ctx.clone()).unwrap();
            collect(&mut ex);
            ctx.metrics.gauge("exchange.speedup").get()
        };
        assert!(even > 3.0, "even hash split should scale, got {even}");
        assert!(skewed < 2.0, "90% skew should collapse speedup, got {skewed}");
    }

    #[test]
    fn default_workers_reads_env() {
        // Can't mutate the environment safely in a parallel test binary;
        // just pin the unset/garbage fallback contract.
        let n = default_workers();
        assert!(n >= 1);
    }

    #[test]
    fn env_worker_count_matches_single_worker_plan() {
        // The CI matrix runs this suite at RQP_THREADS=1 and RQP_THREADS=8:
        // whatever worker count the environment picks, the parallel plan
        // must match the single-worker run bit for bit.
        let t = table(1_000);
        let run = |workers: usize| {
            let ctx = ExecContext::new(CostClock::new(dyadic_params()), f64::INFINITY);
            let mut ex = ExchangeOp::parallel_scan(Arc::clone(&t), workers, ctx.clone());
            (collect(&mut ex), ctx.clock.breakdown())
        };
        let (rows1, bd1) = run(1);
        let (rows_env, bd_env) = run(default_workers());
        assert_eq!(rows1, rows_env);
        assert_eq!(bd1.total().to_bits(), bd_env.total().to_bits());
    }

    use rqp_common::{ChaosConfig, ChaosPolicy};

    fn chaos_ctx(cfg: ChaosConfig) -> ExecContext {
        ExecContext::new(CostClock::new(dyadic_params()), f64::INFINITY)
            .with_chaos(ChaosPolicy::new(cfg))
    }

    #[test]
    fn chaos_off_exchange_is_byte_identical_to_plain() {
        let t = table(1_050);
        let plain = ExecContext::new(CostClock::new(dyadic_params()), f64::INFINITY);
        let off = ExecContext::new(CostClock::new(dyadic_params()), f64::INFINITY)
            .with_chaos(ChaosPolicy::off());
        let mut a = ExchangeOp::parallel_scan(Arc::clone(&t), 4, plain.clone());
        let mut b = ExchangeOp::parallel_scan(Arc::clone(&t), 4, off.clone());
        assert_eq!(collect(&mut a), collect(&mut b));
        assert_eq!(plain.clock.breakdown().total().to_bits(), off.clock.breakdown().total().to_bits());
        assert_eq!(plain.tracer.snapshot().len(), off.tracer.snapshot().len());
    }

    #[test]
    fn injected_worker_panic_is_retried_and_recovers() {
        let cfg = ChaosConfig {
            worker_panic_rate: 0.5,
            worker_max_retries: 8,
            ..ChaosConfig::standard(42)
        };
        let policy = ChaosPolicy::new(cfg);
        // The seed is chosen so at least one of the four workers panics on
        // its first attempt; the policy is a pure function, so probe it.
        assert!(
            (0..4).any(|w| matches!(policy.worker_fault(w, 0), Some(WorkerFault::Panic))),
            "seed must inject at least one first-attempt panic"
        );
        let t = table(1_050);
        let ctx = chaos_ctx(ChaosConfig { scan_fault_rate: 0.0, shock_rate: 0.0, worker_stall_rate: 0.0, ..cfg });
        let mut ex = ExchangeOp::try_parallel_scan_with(Arc::clone(&t), 4, pipeline(|op, _| op), ctx.clone())
            .expect("panicked workers must recover within the retry bound");
        let out = collect(&mut ex);
        let expected: Vec<Row> = t.iter_rows().collect();
        assert_eq!(out, expected, "recovered exchange must lose no rows");
        assert!(ctx.metrics.counter("chaos.worker_panics").get() >= 1);
        assert!(ctx.metrics.counter("exchange.recoveries").get() >= 1);
        assert_eq!(
            ctx.metrics.counter("exchange.workers_lost").get(),
            ctx.metrics.counter("exchange.recoveries").get(),
            "every lost worker recovered"
        );
        // Recovery is visible as extra cost: backoff random pages on top of
        // the plain scan's charges.
        let plain = ExecContext::new(CostClock::new(dyadic_params()), f64::INFINITY);
        let mut p = ExchangeOp::parallel_scan(Arc::clone(&t), 4, plain.clone());
        collect(&mut p);
        assert!(ctx.clock.breakdown().total() > plain.clock.breakdown().total());
    }

    #[test]
    fn worker_retries_exhausted_surface_typed_error() {
        let cfg = ChaosConfig {
            worker_panic_rate: 1.0,
            worker_stall_rate: 0.0,
            scan_fault_rate: 0.0,
            shock_rate: 0.0,
            worker_max_retries: 2,
            ..ChaosConfig::standard(7)
        };
        let t = table(200);
        let ctx = chaos_ctx(cfg);
        let err = ExchangeOp::try_parallel_scan_with(Arc::clone(&t), 2, pipeline(|op, _| op), ctx)
            .map(|_| ())
            .expect_err("every attempt panics, so recovery must fail");
        assert!(matches!(err, RqpError::WorkerFailed { attempts: 3, .. }), "got {err}");
        assert!(err.is_fatal());
    }

    #[test]
    fn injected_stall_adds_exact_cost_without_failure() {
        let cfg = ChaosConfig {
            worker_panic_rate: 0.0,
            worker_stall_rate: 1.0,
            worker_stall_pages: 16.0,
            scan_fault_rate: 0.0,
            shock_rate: 0.0,
            ..ChaosConfig::standard(1)
        };
        let t = table(1_050);
        let ctx = chaos_ctx(cfg);
        let mut ex = ExchangeOp::parallel_scan(Arc::clone(&t), 4, ctx.clone());
        let out = collect(&mut ex);
        assert_eq!(out.len(), 1_050, "stalls slow workers down but lose nothing");
        let plain = ExecContext::new(CostClock::new(dyadic_params()), f64::INFINITY);
        let mut p = ExchangeOp::parallel_scan(Arc::clone(&t), 4, plain.clone());
        collect(&mut p);
        let extra = ctx.clock.breakdown().seq_io - plain.clock.breakdown().seq_io;
        let per_stall = 16.0 * ctx.clock.params().seq_page;
        assert_eq!(extra, 4.0 * per_stall, "each of 4 workers stalls exactly once");
        assert_eq!(ctx.metrics.counter("chaos.worker_stalls").get(), 4);
    }

    #[test]
    fn transient_scan_faults_inside_workers_are_retried() {
        let cfg = ChaosConfig {
            worker_panic_rate: 0.0,
            worker_stall_rate: 0.0,
            shock_rate: 0.0,
            scan_fault_rate: 0.2,
            scan_max_retries: 16,
            ..ChaosConfig::standard(99)
        };
        let t = table(2_000);
        let ctx = chaos_ctx(cfg);
        let mut ex = ExchangeOp::parallel_scan(Arc::clone(&t), 4, ctx.clone());
        let out = collect(&mut ex);
        let expected: Vec<Row> = t.iter_rows().collect();
        assert_eq!(out, expected, "retried scans must not lose or reorder rows");
        assert!(ctx.metrics.counter("chaos.scan_retries").get() >= 1);
        assert_eq!(ctx.metrics.counter("chaos.scan_fatal").get(), 0);
    }
}
