//! Filter and project operators.

use crate::context::ExecContext;
use crate::{BoxOp, Operator};
use rqp_common::expr::BoundExpr;
use rqp_common::{Expr, Result, Row, Schema};
use rqp_telemetry::SpanHandle;

/// Filters rows by a predicate.
pub struct FilterOp {
    inner: BoxOp,
    bound: BoundExpr,
    ctx: ExecContext,
    schema: Schema,
    /// Rows examined (for selectivity post-mortems).
    pub examined: usize,
    /// Rows passed.
    pub passed: usize,
    span: SpanHandle,
}

impl FilterOp {
    /// Filter `inner` by `pred` (bound against the inner schema).
    pub fn new(inner: BoxOp, pred: &Expr, ctx: ExecContext) -> Result<Self> {
        let schema = inner.schema().clone();
        let bound = pred.bind(&schema)?;
        let span = ctx.op_span("filter", &[&inner]);
        span.set_detail(&pred.to_string());
        Ok(FilterOp { inner, bound, ctx, schema, examined: 0, passed: 0, span })
    }

    /// Observed pass rate so far (1.0 before any row is examined).
    pub fn pass_rate(&self) -> f64 {
        if self.examined == 0 {
            1.0
        } else {
            self.passed as f64 / self.examined as f64
        }
    }
}

impl Operator for FilterOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        loop {
            let Some(row) = self.inner.next() else {
                self.span.close(&self.ctx.clock);
                return None;
            };
            self.examined += 1;
            self.ctx.clock.charge_compares(1.0);
            if self.bound.eval_bool(&row) {
                self.passed += 1;
                self.span.produced(&self.ctx.clock);
                return Some(row);
            }
        }
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

/// Projects (and computes) output expressions.
pub struct ProjectOp {
    inner: BoxOp,
    exprs: Vec<BoundExpr>,
    schema: Schema,
    ctx: ExecContext,
    span: SpanHandle,
}

impl ProjectOp {
    /// Project `inner` to the named expressions. `names` supplies the output
    /// field names (same length as `exprs`); output types are taken from a
    /// best-effort inference (column refs keep their type, computed
    /// expressions are typed FLOAT).
    pub fn new(
        inner: BoxOp,
        exprs: &[Expr],
        names: &[&str],
        ctx: ExecContext,
    ) -> Result<Self> {
        assert_eq!(exprs.len(), names.len(), "one name per projection");
        let in_schema = inner.schema().clone();
        let mut fields = Vec::with_capacity(exprs.len());
        let mut bound = Vec::with_capacity(exprs.len());
        for (e, name) in exprs.iter().zip(names) {
            let dtype = match e {
                Expr::Col(c) => in_schema.field(in_schema.index_of(c)?).dtype,
                Expr::Lit(v) => v.data_type().unwrap_or(rqp_common::DataType::Float),
                _ => rqp_common::DataType::Float,
            };
            fields.push(rqp_common::Field::new(*name, dtype));
            bound.push(e.bind(&in_schema)?);
        }
        let span = ctx.op_span("project", &[&inner]);
        Ok(ProjectOp { inner, exprs: bound, schema: Schema::new(fields), ctx, span })
    }

    /// Convenience: project to a subset of input columns by name, keeping the
    /// names.
    pub fn columns(inner: BoxOp, cols: &[&str], ctx: ExecContext) -> Result<Self> {
        let exprs: Vec<Expr> = cols.iter().map(|c| Expr::Col((*c).to_owned())).collect();
        Self::new(inner, &exprs, cols, ctx)
    }
}

impl Operator for ProjectOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        let Some(row) = self.inner.next() else {
            self.span.close(&self.ctx.clock);
            return None;
        };
        self.ctx.clock.charge_cpu_tuples(1.0);
        self.span.produced(&self.ctx.clock);
        Some(
            self.exprs
                .iter()
                .map(|e| e.eval(&row).unwrap_or(rqp_common::Value::Null))
                .collect(),
        )
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// Literal-rows source shared by operator tests.
    pub struct RowsOp {
        schema: Schema,
        rows: std::vec::IntoIter<Row>,
    }

    impl RowsOp {
        pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
            RowsOp { schema, rows: rows.into_iter() }
        }

        pub fn boxed(schema: Schema, rows: Vec<Row>) -> BoxOp {
            Box::new(Self::new(schema, rows))
        }
    }

    impl Operator for RowsOp {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn next(&mut self) -> Option<Row> {
            self.rows.next()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::RowsOp;
    use super::*;
    use crate::context::collect;
    use rqp_common::expr::{col, lit};
    use rqp_common::{DataType, Value};

    fn src() -> BoxOp {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Float)]);
        let rows: Vec<Row> = (0..10)
            .map(|i| vec![Value::Int(i), Value::Float(i as f64 * 2.0)])
            .collect();
        RowsOp::boxed(schema, rows)
    }

    #[test]
    fn filter_selects_and_tracks_stats() {
        let ctx = ExecContext::unbounded();
        let mut f = FilterOp::new(src(), &col("a").lt(lit(4i64)), ctx).unwrap();
        let out = collect(&mut f);
        assert_eq!(out.len(), 4);
        assert_eq!(f.examined, 10);
        assert_eq!(f.passed, 4);
        assert!((f.pass_rate() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn filter_binding_error_propagates() {
        let ctx = ExecContext::unbounded();
        assert!(FilterOp::new(src(), &col("zz").lt(lit(4i64)), ctx).is_err());
    }

    #[test]
    fn project_columns() {
        let ctx = ExecContext::unbounded();
        let mut p = ProjectOp::columns(src(), &["b"], ctx).unwrap();
        assert_eq!(p.schema().len(), 1);
        assert_eq!(p.schema().field(0).name, "b");
        let out = collect(&mut p);
        assert_eq!(out[3], vec![Value::Float(6.0)]);
    }

    #[test]
    fn project_computed_expression() {
        let ctx = ExecContext::unbounded();
        let exprs = vec![col("a").mul(lit(10i64)), col("b").add(col("b"))];
        let mut p = ProjectOp::new(src(), &exprs, &["a10", "b2"], ctx).unwrap();
        let out = collect(&mut p);
        assert_eq!(out[2][0], Value::Int(20));
        assert_eq!(out[2][1], Value::Float(8.0));
    }

    #[test]
    fn empty_input() {
        let ctx = ExecContext::unbounded();
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let mut f =
            FilterOp::new(RowsOp::boxed(schema, vec![]), &col("a").eq(lit(1i64)), ctx).unwrap();
        assert!(f.next().is_none());
        assert_eq!(f.pass_rate(), 1.0, "no evidence yet");
    }
}
