//! Scan operators: full table scan, B-tree index scan, cracker scan,
//! adaptive-merge scan.
//!
//! The cost asymmetry between these access paths — sequential pages for the
//! full scan, random pages per row for an unclustered index — is the origin
//! of the scan-vs-index *performance cliff* that the selectivity-smoothness
//! experiment (E07) measures, and that robust plan selection tries to keep
//! away from.

use crate::context::ExecContext;
use crate::Operator;
use rqp_common::{Row, RqpError, Schema, Value};
use rqp_storage::{
    AdaptiveMergeIndex, BTreeIndex, BufferPool, CrackerColumn, MultiIndex, PagePin, RowId, Table,
};
use rqp_telemetry::SpanHandle;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Sequential scan of a whole table, or of a contiguous row range (the
/// building block of parallel partitioned scans).
pub struct TableScanOp {
    table: Arc<Table>,
    schema: Schema,
    ctx: ExecContext,
    pos: usize,
    start: usize,
    end: usize,
    rows_per_page: f64,
    chaos: bool,
    /// The table's buffer pool, if one is attached; `None` keeps the legacy
    /// always-resident path (no pin accounting, no extra charges).
    pager: Option<Arc<BufferPool>>,
    /// The pin on the page the cursor is currently reading. Replaced at each
    /// page boundary; dropped on drain or operator drop, so early
    /// termination (cancel, deadline, disconnect) never leaks a pin.
    pin: Option<PagePin>,
    span: SpanHandle,
}

impl TableScanOp {
    /// Scan `table`, emitting rows with the qualified schema.
    pub fn new(table: Arc<Table>, ctx: ExecContext) -> Self {
        let end = table.nrows();
        Self::with_range(table, 0, end, ctx)
    }

    /// Scan only rows `[start, end)` of `table`.
    ///
    /// Page charges use *absolute* row positions, so a range starting on a
    /// page boundary (as [`Table::page_partitions`] guarantees) charges
    /// exactly its own pages — per-partition charges sum to the sequential
    /// scan's total for any partition count.
    pub fn with_range(table: Arc<Table>, start: usize, end: usize, ctx: ExecContext) -> Self {
        let schema = table.qualified_schema();
        let rows_per_page = ctx.clock.params().rows_per_page;
        let end = end.min(table.nrows());
        let start = start.min(end);
        let span = ctx.tracer.open("table_scan", &ctx.clock);
        if start == 0 && end == table.nrows() {
            span.set_detail(table.name());
        } else {
            span.set_detail(&format!("{}[{start}..{end}]", table.name()));
        }
        let chaos = ctx.chaos.is_enabled();
        if chaos {
            rqp_common::chaos::install_quiet_panic_hook();
        }
        let pager = table.pager();
        TableScanOp {
            table,
            schema,
            ctx,
            pos: start,
            start,
            end,
            rows_per_page,
            chaos,
            pager,
            pin: None,
            span,
        }
    }

    /// Chaos injection point, hit once per page boundary; see [`page_chaos`].
    fn page_chaos(&mut self, page: u64) {
        page_chaos(&self.ctx, &self.span, self.table.name(), page);
    }
}

/// Chaos injection point, hit once per page boundary by both the scalar
/// [`TableScanOp`] and the batch scan. Both decisions key on the **absolute
/// page index**, so the fault schedule is identical no matter how the table
/// is partitioned across exchange workers — or whether rows are pulled one
/// at a time or in batches.
///
/// Transient read faults are retried per the error taxonomy
/// ([`RqpError::is_retryable`]), each retry charging one random-page
/// re-read; exhausting the retry budget escalates to a fatal error,
/// raised as a panic that the exchange's join-handle recovery converts
/// into a lost-partition retry. Memory shocks shrink (or restore) the
/// governor budget; renegotiating operators observe the pressure epoch.
pub(crate) fn page_chaos(ctx: &ExecContext, span: &SpanHandle, table_name: &str, page: u64) {
    let policy = &ctx.chaos;
    let mut attempt = 0u32;
    while policy.scan_fault(table_name, page, attempt) {
        let err = RqpError::TransientIo {
            site: format!("{table_name}/{page}"),
            attempt,
        };
        if attempt >= policy.scan_max_retries() || !err.is_retryable() {
            let fatal = RqpError::Execution(format!("retries exhausted: {err}"));
            span.record_event(&ctx.clock, "chaos.scan_fatal", &fatal.to_string());
            ctx.metrics.counter("chaos.scan_fatal").inc();
            std::panic::panic_any(fatal);
        }
        attempt += 1;
        // The retry re-reads the page out of sequence.
        ctx.clock.charge_random_pages(1.0);
        span.record_event(
            &ctx.clock,
            "chaos.scan_retry",
            &format!("{err} (retrying)"),
        );
        ctx.metrics.counter("chaos.scan_retries").inc();
    }
    if let Some(fraction) = policy.memory_shock(table_name, page) {
        ctx.metrics.counter("chaos.memory_shocks").inc();
        if fraction >= 1.0 {
            ctx.memory.restore();
            span.record_event(
                &ctx.clock,
                "chaos.memory_restore",
                &format!("budget restored to {:.0}", ctx.memory.base_budget()),
            );
        } else {
            let target = ctx.memory.base_budget() * fraction;
            let overcommitted = ctx.memory.shock_to(target);
            span.record_event(
                &ctx.clock,
                "chaos.memory_shock",
                &format!(
                    "budget shocked to {target:.0} ({fraction}x base){}",
                    if overcommitted { ", governor overcommitted" } else { "" }
                ),
            );
        }
    }
}

/// Pin one page of `table_name` through the buffer pool, shared by the
/// scalar and batch scans. Pool hits and first-ever loads charge nothing
/// (the scan's own per-boundary sequential charge *is* that read); re-faults
/// after eviction and injected page-I/O retries each charge one random page
/// inside [`BufferPool::pin`]. Pager activity is mirrored into `pager.*`
/// metrics; retries and fatal outcomes also land in the flight recorder via
/// span events. Pool errors — typed budget exhaustion, retries exhausted —
/// are raised as panics carrying the [`RqpError`], which the exchange's
/// join-handle triage surfaces typed instead of retrying.
pub(crate) fn pin_page(
    ctx: &ExecContext,
    span: &SpanHandle,
    pool: &Arc<BufferPool>,
    table_name: &str,
    page: u64,
) -> PagePin {
    match pool.pin(table_name, page, &ctx.clock, &ctx.chaos) {
        Ok((pin, outcome)) => {
            if outcome.hit {
                ctx.metrics.counter("pager.hits").inc();
            } else {
                ctx.metrics.counter("pager.faults").inc();
                if outcome.refault {
                    ctx.metrics.counter("pager.refaults").inc();
                }
            }
            if outcome.retries > 0 {
                ctx.metrics.counter("pager.retries").add(u64::from(outcome.retries));
                span.record_event(
                    &ctx.clock,
                    "pager.page_retry",
                    &format!(
                        "{table_name}/{page}: {} transient page-I/O fault(s), re-read charged",
                        outcome.retries
                    ),
                );
            }
            pin
        }
        Err(err) => {
            ctx.metrics.counter("pager.fatal").inc();
            span.record_event(&ctx.clock, "pager.fatal", &err.to_string());
            std::panic::panic_any(err);
        }
    }
}

impl Operator for TableScanOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        if self.pos >= self.end {
            self.pin = None;
            self.span.close(&self.ctx.clock);
            return None;
        }
        // One sequential page each time the cursor crosses a page boundary
        // (or enters mid-page at the start of an unaligned range). The page
        // boundary is also the cancellation checkpoint: a cancelled or
        // past-deadline query stops within one page of work.
        if self.pos as f64 % self.rows_per_page == 0.0 || self.pos == self.start {
            self.ctx.checkpoint();
            self.ctx.clock.charge_seq_pages(1.0);
            let page = (self.pos as f64 / self.rows_per_page) as u64;
            if self.chaos {
                self.page_chaos(page);
            }
            if let Some(pool) = &self.pager {
                // Unpin the page just left *before* pinning the next one, so
                // a lone scan makes progress with a single frame of budget.
                self.pin = None;
                self.pin =
                    Some(pin_page(&self.ctx, &self.span, pool, self.table.name(), page));
            }
        }
        self.ctx.clock.charge_cpu_tuples(1.0);
        let row = self.table.row(self.pos);
        self.pos += 1;
        self.span.produced(&self.ctx.clock);
        Some(row)
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

/// B-tree index scan over an inclusive key range.
///
/// Clustered: matched rows are fetched with sequential pages. Unclustered:
/// every row costs one random page — cheap at low selectivity, disastrous at
/// high selectivity.
pub struct IndexScanOp {
    index: Arc<BTreeIndex>,
    table: Arc<Table>,
    schema: Schema,
    ctx: ExecContext,
    lo: Option<Value>,
    hi: Option<Value>,
    rowids: Option<Vec<RowId>>,
    pos: usize,
    rows_per_page: f64,
    span: SpanHandle,
}

impl IndexScanOp {
    /// Scan `index` over `[lo, hi]` (inclusive; `None` = unbounded).
    pub fn new(
        index: Arc<BTreeIndex>,
        table: Arc<Table>,
        lo: Option<Value>,
        hi: Option<Value>,
        ctx: ExecContext,
    ) -> Self {
        let schema = table.qualified_schema();
        let rows_per_page = ctx.clock.params().rows_per_page;
        let span = ctx.tracer.open("index_scan", &ctx.clock);
        span.set_detail(&format!("{}:{}", table.name(), index.name()));
        IndexScanOp {
            index,
            table,
            schema,
            ctx,
            lo,
            hi,
            rowids: None,
            pos: 0,
            rows_per_page,
            span,
        }
    }

    fn open(&mut self) {
        // B-tree descent: log2(entries) comparisons.
        let n = self.index.entries().max(2) as f64;
        self.ctx.clock.charge_compares(n.log2());
        let ids = self.index.lookup_range(self.lo.as_ref(), self.hi.as_ref());
        self.rowids = Some(ids);
    }
}

impl Operator for IndexScanOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        if self.rowids.is_none() {
            self.open();
        }
        let ids = self.rowids.as_ref().expect("opened above");
        if self.pos >= ids.len() {
            self.span.close(&self.ctx.clock);
            return None;
        }
        let rid = ids[self.pos];
        if self.index.clustered() {
            if self.pos as f64 % self.rows_per_page == 0.0 {
                self.ctx.clock.charge_seq_pages(1.0);
            }
        } else {
            self.ctx.clock.charge_random_pages(1.0);
        }
        self.ctx.clock.charge_cpu_tuples(1.0);
        self.pos += 1;
        self.span.produced(&self.ctx.clock);
        Some(self.table.row(rid))
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

/// Composite-index scan: equality prefix + optional range on the next
/// indexed column, residual predicates applied upstream. Fetches are charged
/// as random pages (composite indexes are secondary/unclustered here).
pub struct MultiIndexScanOp {
    index: Arc<MultiIndex>,
    table: Arc<Table>,
    schema: Schema,
    ctx: ExecContext,
    prefix: Vec<Value>,
    lo: Option<Value>,
    hi: Option<Value>,
    rowids: Option<Vec<RowId>>,
    pos: usize,
    span: SpanHandle,
}

impl MultiIndexScanOp {
    /// Scan rows whose leading indexed columns equal `prefix`, with the next
    /// column in `[lo, hi]`.
    pub fn new(
        index: Arc<MultiIndex>,
        table: Arc<Table>,
        prefix: Vec<Value>,
        lo: Option<Value>,
        hi: Option<Value>,
        ctx: ExecContext,
    ) -> Self {
        let schema = table.qualified_schema();
        let span = ctx.tracer.open("multi_index_scan", &ctx.clock);
        span.set_detail(&format!("{}:{}", table.name(), index.name()));
        MultiIndexScanOp {
            index,
            table,
            schema,
            ctx,
            prefix,
            lo,
            hi,
            rowids: None,
            pos: 0,
            span,
        }
    }
}

impl Operator for MultiIndexScanOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        if self.rowids.is_none() {
            let n = self.index.entries().max(2) as f64;
            self.ctx.clock.charge_compares(n.log2());
            let ids = self
                .index
                .lookup(&self.prefix, self.lo.as_ref(), self.hi.as_ref())
                .unwrap_or_default();
            self.rowids = Some(ids);
        }
        let ids = self.rowids.as_ref().expect("opened above");
        if self.pos >= ids.len() {
            self.span.close(&self.ctx.clock);
            return None;
        }
        self.ctx.clock.charge_random_pages(1.0);
        self.ctx.clock.charge_cpu_tuples(1.0);
        let row = self.table.row(ids[self.pos]);
        self.pos += 1;
        self.span.produced(&self.ctx.clock);
        Some(row)
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

/// Scan answered by a cracker column: cracking work is charged as CPU, then
/// rows are reconstructed from the base table.
pub struct CrackerScanOp {
    cracker: Rc<RefCell<CrackerColumn>>,
    table: Arc<Table>,
    schema: Schema,
    ctx: ExecContext,
    lo: i64,
    hi: i64,
    rowids: Option<Vec<RowId>>,
    pos: usize,
    span: SpanHandle,
}

impl CrackerScanOp {
    /// Scan `[lo, hi]` via the cracker column of one of `table`'s columns.
    pub fn new(
        cracker: Rc<RefCell<CrackerColumn>>,
        table: Arc<Table>,
        lo: i64,
        hi: i64,
        ctx: ExecContext,
    ) -> Self {
        let schema = table.qualified_schema();
        let span = ctx.tracer.open("cracker_scan", &ctx.clock);
        span.set_detail(table.name());
        CrackerScanOp { cracker, table, schema, ctx, lo, hi, rowids: None, pos: 0, span }
    }
}

impl Operator for CrackerScanOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        if self.rowids.is_none() {
            let (ids, stats) = self.cracker.borrow_mut().query(self.lo, self.hi);
            // Partitioning work: one compare + potential swap per touched
            // tuple; merged updates cost a tuple move each.
            self.ctx.clock.charge_compares(stats.touched as f64);
            self.ctx.clock.charge_cpu_tuples(stats.merged_updates as f64);
            self.rowids = Some(ids);
        }
        let ids = self.rowids.as_ref().expect("opened above");
        if self.pos >= ids.len() {
            self.span.close(&self.ctx.clock);
            return None;
        }
        self.ctx.clock.charge_cpu_tuples(1.0);
        let row = self.table.row(ids[self.pos]);
        self.pos += 1;
        self.span.produced(&self.ctx.clock);
        Some(row)
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

/// Scan answered by an adaptive-merge index.
pub struct AMergeScanOp {
    amerge: Rc<RefCell<AdaptiveMergeIndex>>,
    table: Arc<Table>,
    schema: Schema,
    ctx: ExecContext,
    lo: i64,
    hi: i64,
    rowids: Option<Vec<RowId>>,
    pos: usize,
    span: SpanHandle,
}

impl AMergeScanOp {
    /// Scan `[lo, hi]` via an adaptive-merge index of one of `table`'s
    /// columns.
    pub fn new(
        amerge: Rc<RefCell<AdaptiveMergeIndex>>,
        table: Arc<Table>,
        lo: i64,
        hi: i64,
        ctx: ExecContext,
    ) -> Self {
        let schema = table.qualified_schema();
        let span = ctx.tracer.open("amerge_scan", &ctx.clock);
        span.set_detail(table.name());
        AMergeScanOp { amerge, table, schema, ctx, lo, hi, rowids: None, pos: 0, span }
    }
}

impl Operator for AMergeScanOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        if self.rowids.is_none() {
            let (ids, stats) = self.amerge.borrow_mut().query(self.lo, self.hi);
            self.ctx.clock.charge_compares(stats.probes as f64);
            // Moving an entry into the merged index ≈ one B-tree insert.
            self.ctx.clock.charge_hash_build(stats.moved as f64);
            self.rowids = Some(ids);
        }
        let ids = self.rowids.as_ref().expect("opened above");
        if self.pos >= ids.len() {
            self.span.close(&self.ctx.clock);
            return None;
        }
        self.ctx.clock.charge_cpu_tuples(1.0);
        let row = self.table.row(ids[self.pos]);
        self.pos += 1;
        self.span.produced(&self.ctx.clock);
        Some(row)
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::collect;
    use rqp_common::DataType;
    use rqp_storage::Catalog;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)]);
        let mut t = Table::new("t", schema);
        for i in 0..1000i64 {
            t.append(vec![Value::Int(i), Value::Float(i as f64)]);
        }
        c.add_table(t);
        c.create_index("ix", "t", "k").unwrap();
        c.create_cracker("t", "k").unwrap();
        c.create_amerge("t", "k", 100).unwrap();
        c
    }

    #[test]
    fn table_scan_reads_all_and_charges_pages() {
        let c = catalog();
        let ctx = ExecContext::unbounded();
        let mut s = TableScanOp::new(c.table("t").unwrap(), ctx.clone());
        let rows = collect(&mut s);
        assert_eq!(rows.len(), 1000);
        let b = ctx.clock.breakdown();
        assert!((b.seq_io - 10.0).abs() < 1e-9, "10 pages, got {}", b.seq_io);
        assert!(b.rand_io == 0.0);
        assert_eq!(s.schema().field(0).name, "t.k");
    }

    #[test]
    fn range_scans_tile_the_table_and_sum_to_sequential_cost() {
        let c = catalog();
        let table = c.table("t").unwrap();
        // Sequential baseline.
        let seq = ExecContext::unbounded();
        let seq_rows = collect(&mut TableScanOp::new(table.clone(), seq.clone()));
        // Page-aligned partitions: concatenated rows identical, page charges
        // sum exactly to the sequential total.
        for k in [2, 3, 8] {
            let ctx = ExecContext::unbounded();
            let mut rows = Vec::new();
            for (s, e) in table.page_partitions(k, 100) {
                rows.extend(collect(&mut TableScanOp::with_range(
                    table.clone(),
                    s,
                    e,
                    ctx.clone(),
                )));
            }
            assert_eq!(rows, seq_rows, "k={k}");
            assert_eq!(
                ctx.clock.breakdown(),
                seq.clock.breakdown(),
                "k={k}: partitioned cost equals sequential cost"
            );
        }
        // An unaligned range still pays for the page it enters mid-way.
        let ctx = ExecContext::unbounded();
        let rows = collect(&mut TableScanOp::with_range(table, 150, 250, ctx.clone()));
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[0][0], Value::Int(150));
        assert!((ctx.clock.breakdown().seq_io - 2.0).abs() < 1e-9, "2 pages touched");
    }

    #[test]
    fn clustered_index_scan_range() {
        let c = catalog();
        let ctx = ExecContext::unbounded();
        let idx = c.index("ix").unwrap();
        assert!(idx.clustered());
        let mut s = IndexScanOp::new(
            idx,
            c.table("t").unwrap(),
            Some(Value::Int(100)),
            Some(Value::Int(199)),
            ctx.clone(),
        );
        let rows = collect(&mut s);
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[0][0], Value::Int(100));
        let b = ctx.clock.breakdown();
        assert!(b.seq_io <= 1.0 + 1e-9, "clustered: ~1 page for 100 rows");
        assert_eq!(b.rand_io, 0.0);
    }

    #[test]
    fn unclustered_index_scan_charges_random_io() {
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..1000i64 {
            t.append(vec![Value::Int((i * 7919) % 1000)]);
        }
        c.add_table(t);
        c.create_index("ix", "t", "k").unwrap();
        let idx = c.index("ix").unwrap();
        assert!(!idx.clustered());
        let ctx = ExecContext::unbounded();
        let mut s = IndexScanOp::new(
            idx,
            c.table("t").unwrap(),
            Some(Value::Int(0)),
            Some(Value::Int(99)),
            ctx.clone(),
        );
        let rows = collect(&mut s);
        assert_eq!(rows.len(), 100);
        let b = ctx.clock.breakdown();
        assert!(b.rand_io >= 100.0 * 4.0 - 1e-9, "one random page per row");
    }

    #[test]
    fn cracker_scan_matches_table_scan_results() {
        let c = catalog();
        let ctx = ExecContext::unbounded();
        let mut s = CrackerScanOp::new(
            c.cracker("t", "k").unwrap(),
            c.table("t").unwrap(),
            250,
            349,
            ctx.clone(),
        );
        let mut rows = collect(&mut s);
        rows.sort_by(|a, b| a[0].cmp(&b[0]));
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[0][0], Value::Int(250));
        assert!(ctx.clock.now() > 0.0);
        // Second identical query is much cheaper.
        let ctx2 = ExecContext::unbounded();
        let mut s2 = CrackerScanOp::new(
            c.cracker("t", "k").unwrap(),
            c.table("t").unwrap(),
            250,
            349,
            ctx2.clone(),
        );
        let rows2 = collect(&mut s2);
        assert_eq!(rows2.len(), 100);
        assert!(ctx2.clock.now() < ctx.clock.now() / 2.0);
    }

    #[test]
    fn amerge_scan_matches_and_converges() {
        let c = catalog();
        let ctx = ExecContext::unbounded();
        let mut s = AMergeScanOp::new(
            c.amerge("t", "k").unwrap(),
            c.table("t").unwrap(),
            500,
            599,
            ctx.clone(),
        );
        let rows = collect(&mut s);
        assert_eq!(rows.len(), 100);
        let first_cost = ctx.clock.now();
        let ctx2 = ExecContext::unbounded();
        let mut s2 = AMergeScanOp::new(
            c.amerge("t", "k").unwrap(),
            c.table("t").unwrap(),
            500,
            599,
            ctx2.clone(),
        );
        collect(&mut s2);
        assert!(ctx2.clock.now() < first_cost);
    }

    #[test]
    fn empty_table_scan() {
        let mut c = Catalog::new();
        c.add_table(Table::new("e", Schema::from_pairs(&[("x", DataType::Int)])));
        let ctx = ExecContext::unbounded();
        let mut s = TableScanOp::new(c.table("e").unwrap(), ctx.clone());
        assert!(s.next().is_none());
        assert_eq!(ctx.clock.now(), 0.0);
    }
}
