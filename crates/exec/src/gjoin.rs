//! The generalized join ("g-join", Graefe).
//!
//! The seminar abstract *A generalized join algorithm* proposes ending
//! mistaken join-method choices by replacing the three traditional
//! algorithms with one: like merge join it exploits sorted inputs, like
//! hybrid hash join it exploits size differences on unsorted inputs (its cost
//! function guided the design), and with a database index available it can
//! replace index-nested-loop join.
//!
//! This implementation follows that structure: inputs that arrive sorted skip
//! run generation entirely; unsorted inputs pay run-generation (and spill
//! beyond the memory grant); when an inner index exists and the outer turns
//! out small, probing replaces merging. The robustness claim E18 checks is
//! that its cost stays within a small constant of the per-regime best
//! algorithm *without the optimizer having to choose correctly*.

use crate::context::{ExecContext, WorkspaceLease};
use crate::{BoxOp, Operator};
use rqp_common::{Result, Row, RqpError, Schema, Value};
use rqp_storage::{BTreeIndex, Table};
use rqp_telemetry::SpanHandle;
use std::cmp::Ordering;
use std::sync::Arc;

/// Optional index access path for the inner (right) input.
pub struct InnerIndex {
    /// B-tree on the inner join key.
    pub index: Arc<BTreeIndex>,
    /// The inner base table.
    pub table: Arc<Table>,
}

/// The generalized join operator.
pub struct GJoinOp {
    left: Option<BoxOp>,
    right: Option<BoxOp>,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    left_sorted: bool,
    right_sorted: bool,
    inner_index: Option<InnerIndex>,
    schema: Schema,
    ctx: ExecContext,
    out: Option<std::vec::IntoIter<Row>>,
    strategy: Option<GJoinStrategy>,
    /// Workspace actually held (sum over both run-generation passes — the
    /// span's `mem_granted` is a high-water max, not the amount owed), with
    /// renegotiation under mid-query budget shrinks.
    lease: WorkspaceLease,
    span: SpanHandle,
}

/// Which internal mode the g-join chose at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GJoinStrategy {
    /// Both inputs (already or after run generation) merged.
    Merge,
    /// Outer was small and an inner index existed: probed like INL join.
    IndexProbe,
}

impl GJoinOp {
    /// Create a g-join. `left_sorted`/`right_sorted` declare whether the
    /// inputs arrive sorted on their keys (the planner knows; the operator
    /// charges run generation only for unsorted inputs). `inner_index`
    /// optionally provides an index on the right key.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        left: BoxOp,
        right: BoxOp,
        left_keys: &[&str],
        right_keys: &[&str],
        left_sorted: bool,
        right_sorted: bool,
        inner_index: Option<InnerIndex>,
        ctx: ExecContext,
    ) -> Result<Self> {
        if left_keys.len() != right_keys.len() || left_keys.is_empty() {
            return Err(RqpError::Invalid("join keys must pair up".into()));
        }
        let lk: Vec<usize> = left_keys
            .iter()
            .map(|k| left.schema().index_of(k))
            .collect::<Result<_>>()?;
        let rk: Vec<usize> = right_keys
            .iter()
            .map(|k| right.schema().index_of(k))
            .collect::<Result<_>>()?;
        let schema = match &inner_index {
            Some(ii) => left.schema().join(&ii.table.qualified_schema()),
            None => left.schema().join(right.schema()),
        };
        let span = ctx.op_span("g_join", &[&left, &right]);
        Ok(GJoinOp {
            left: Some(left),
            right: Some(right),
            left_keys: lk,
            right_keys: rk,
            left_sorted,
            right_sorted,
            inner_index,
            schema,
            ctx,
            out: None,
            strategy: None,
            lease: WorkspaceLease::new(),
            span,
        })
    }

    /// The mode the join chose (available after the first `next()`).
    pub fn strategy(&self) -> Option<GJoinStrategy> {
        self.strategy
    }

    fn drain(op: &mut BoxOp) -> Vec<Row> {
        let mut rows = Vec::new();
        while let Some(r) = op.next() {
            rows.push(r);
        }
        rows
    }

    /// Charge run generation for an unsorted input of `n` rows and sort it,
    /// taking the pass's workspace on the lease.
    fn prepare(&mut self, rows: &mut [Row], keys: &[usize], already_sorted: bool) {
        let n = rows.len() as f64;
        if n <= 1.0 {
            return;
        }
        if already_sorted {
            // Verification pass only.
            self.ctx.clock.charge_compares(n);
            return;
        }
        let grant = self.lease.grant(&self.ctx, &self.span, n);
        self.ctx.clock.charge_compares(n * n.log2().max(1.0));
        if n > grant {
            self.ctx.clock.charge_spill_rows(n - grant);
            self.span.record_spill(n - grant);
            let runs = (n / grant).ceil().max(2.0);
            self.ctx.clock.charge_compares(n * runs.log2());
        }
        rows.sort_by(|a, b| cmp_keys(a, b, keys, keys));
    }

    fn run(&mut self) {
        let mut left_rows = Self::drain(self.left.as_mut().expect("run once"));
        self.left = None;

        // Mode choice: if an inner index exists and the outer is small
        // relative to the indexed input, probe instead of merging — the
        // decision is made from *observed* sizes, not estimates.
        if let Some(ii) = &self.inner_index {
            let outer_n = left_rows.len() as f64;
            let inner_n = ii.index.entries() as f64;
            if outer_n * 10.0 < inner_n {
                self.strategy = Some(GJoinStrategy::IndexProbe);
                let mut out = Vec::new();
                let rows_per_page = self.ctx.clock.params().rows_per_page;
                for l in &left_rows {
                    self.ctx.clock.charge_compares(inner_n.max(2.0).log2());
                    let rids = ii.index.lookup_eq(&l[self.left_keys[0]]);
                    if ii.index.clustered() {
                        let pages = (rids.len() as f64 / rows_per_page).ceil();
                        self.ctx.clock.charge_random_pages(pages.min(1.0));
                    } else {
                        self.ctx.clock.charge_random_pages(rids.len() as f64);
                    }
                    for rid in rids {
                        self.ctx.clock.charge_cpu_tuples(1.0);
                        let mut row = l.clone();
                        row.extend(ii.table.row(rid));
                        out.push(row);
                    }
                }
                self.right = None;
                self.out = Some(out.into_iter());
                return;
            }
        }

        self.strategy = Some(GJoinStrategy::Merge);
        let mut right_rows = Self::drain(self.right.as_mut().expect("run once"));
        self.right = None;
        let (lk, rk) = (self.left_keys.clone(), self.right_keys.clone());
        let (ls, rs) = (self.left_sorted, self.right_sorted);
        self.prepare(&mut left_rows, &lk, ls);
        self.prepare(&mut right_rows, &rk, rs);

        // Merge with duplicate-group handling.
        let mut out = Vec::new();
        let mut i = 0usize;
        let mut j = 0usize;
        while i < left_rows.len() && j < right_rows.len() {
            self.ctx.clock.charge_compares(1.0);
            match cmp_keys(&left_rows[i], &right_rows[j], &lk, &rk) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    // Extent of the equal group on both sides.
                    let mut i_end = i + 1;
                    while i_end < left_rows.len()
                        && cmp_keys(&left_rows[i_end], &right_rows[j], &lk, &rk)
                            == Ordering::Equal
                    {
                        i_end += 1;
                    }
                    let mut j_end = j + 1;
                    while j_end < right_rows.len()
                        && cmp_keys(&left_rows[i], &right_rows[j_end], &lk, &rk)
                            == Ordering::Equal
                    {
                        j_end += 1;
                    }
                    for l in &left_rows[i..i_end] {
                        for r in &right_rows[j..j_end] {
                            self.ctx.clock.charge_cpu_tuples(1.0);
                            let mut row = l.clone();
                            row.extend(r.clone());
                            out.push(row);
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        self.out = Some(out.into_iter());
    }

    /// Release the run-generation grants and close the span. Idempotent;
    /// called on drain-to-`None` *and* on `Drop`, so early-terminating
    /// consumers cannot leak `outstanding` or leave an open span.
    fn finish(&mut self) {
        if !self.span.is_closed() {
            self.lease.release(&self.ctx);
            self.span.close(&self.ctx.clock);
        }
    }
}

impl Drop for GJoinOp {
    fn drop(&mut self) {
        self.finish();
    }
}

fn cmp_keys(l: &Row, r: &Row, lk: &[usize], rk: &[usize]) -> Ordering {
    for (&li, &ri) in lk.iter().zip(rk) {
        let o = l[li].total_cmp(&r[ri]);
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

/// Convenience for tests and benches: does a row list look sorted on keys?
pub fn is_sorted_on(rows: &[Row], keys: &[usize]) -> bool {
    rows.windows(2)
        .all(|w| cmp_keys(&w[0], &w[1], keys, keys) != Ordering::Greater)
}

/// Key-of helper shared with benches.
pub fn key_values(row: &Row, keys: &[usize]) -> Vec<Value> {
    keys.iter().map(|&i| row[i].clone()).collect()
}

impl Operator for GJoinOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Option<Row> {
        if self.out.is_none() {
            self.run();
            self.span.set_detail(match self.strategy {
                Some(GJoinStrategy::IndexProbe) => "index_probe",
                Some(GJoinStrategy::Merge) => "merge",
                None => "",
            });
        }
        // Cooperative abort, then shed run-generation workspace if the
        // budget shrank mid-drain.
        self.ctx.checkpoint();
        self.lease.renegotiate(&self.ctx, &self.span);
        let row = self.out.as_mut().expect("ran").next();
        match &row {
            Some(_) => self.span.produced(&self.ctx.clock),
            None => self.finish(),
        }
        row
    }

    fn span(&self) -> Option<&SpanHandle> {
        Some(&self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::collect;
    use crate::filter::test_support::RowsOp;
    use crate::join::HashJoinOp;
    use rqp_common::DataType;

    fn src(name: &str, n: i64, shuffle: bool) -> BoxOp {
        let schema = Schema::from_pairs(&[(
            Box::leak(format!("{name}.k").into_boxed_str()) as &str,
            DataType::Int,
        )]);
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                let k = if shuffle { (i * 7919) % n } else { i };
                vec![Value::Int(k % (n / 4).max(1))]
            })
            .collect();
        RowsOp::boxed(schema, rows)
    }

    #[test]
    fn matches_hash_join_output() {
        let ctx = ExecContext::unbounded();
        let mut g = GJoinOp::new(
            src("l", 100, true),
            src("r", 80, true),
            &["l.k"],
            &["r.k"],
            false,
            false,
            None,
            ctx.clone(),
        )
        .unwrap();
        let mut gout = collect(&mut g);
        assert_eq!(g.strategy(), Some(GJoinStrategy::Merge));
        let mut h =
            HashJoinOp::new(src("l", 100, true), src("r", 80, true), &["l.k"], &["r.k"], ctx)
                .unwrap();
        let mut hout = collect(&mut h);
        let key = |r: &Row| format!("{r:?}");
        gout.sort_by_key(key);
        hout.sort_by_key(key);
        assert_eq!(gout, hout);
    }

    #[test]
    fn sorted_inputs_skip_run_generation() {
        let unsorted_ctx = ExecContext::unbounded();
        let mut g = GJoinOp::new(
            src("l", 1000, true),
            src("r", 1000, true),
            &["l.k"],
            &["r.k"],
            false,
            false,
            None,
            unsorted_ctx.clone(),
        )
        .unwrap();
        collect(&mut g);

        let sorted_ctx = ExecContext::unbounded();
        let mut g = GJoinOp::new(
            src("l", 1000, false),
            src("r", 1000, false),
            &["l.k"],
            &["r.k"],
            true,
            true,
            None,
            sorted_ctx.clone(),
        )
        .unwrap();
        collect(&mut g);
        assert!(
            sorted_ctx.clock.now() < unsorted_ctx.clock.now(),
            "sorted {} should beat unsorted {}",
            sorted_ctx.clock.now(),
            unsorted_ctx.clock.now()
        );
    }

    #[test]
    fn small_outer_with_index_probes() {
        let mut cat = rqp_storage::Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
        let mut t = Table::new("inner", schema);
        for i in 0..10_000 {
            t.append(vec![Value::Int(i % 100), Value::Int(i)]);
        }
        cat.add_table(t);
        cat.create_index("ix", "inner", "k").unwrap();
        let ctx = ExecContext::unbounded();
        let ii = InnerIndex {
            index: cat.index("ix").unwrap(),
            table: cat.table("inner").unwrap(),
        };
        // Outer: only 3 rows.
        let outer_schema = Schema::from_pairs(&[("o.k", DataType::Int)]);
        let outer_rows = vec![
            vec![Value::Int(5)],
            vec![Value::Int(7)],
            vec![Value::Int(500)], // no match
        ];
        let dummy_right = RowsOp::boxed(Schema::from_pairs(&[("inner.k", DataType::Int)]), vec![]);
        let mut g = GJoinOp::new(
            RowsOp::boxed(outer_schema, outer_rows),
            dummy_right,
            &["o.k"],
            &["inner.k"],
            false,
            false,
            Some(ii),
            ctx,
        )
        .unwrap();
        let out = collect(&mut g);
        assert_eq!(g.strategy(), Some(GJoinStrategy::IndexProbe));
        assert_eq!(out.len(), 200, "two keys × 100 matches each");
    }

    #[test]
    fn releases_both_run_generation_grants() {
        // Merge mode grants workspace twice (left and right run generation);
        // the release must cover the *sum*, not the high-water max.
        let ctx = ExecContext::with_memory(50_000.0);
        let mut g = GJoinOp::new(
            src("l", 1000, true),
            src("r", 500, true),
            &["l.k"],
            &["r.k"],
            false,
            false,
            None,
            ctx.clone(),
        )
        .unwrap();
        assert!(g.next().is_some());
        assert_eq!(ctx.memory.outstanding(), 1_500.0, "both grants held");
        collect(&mut g);
        assert_eq!(ctx.memory.outstanding(), 0.0, "full drain releases all");

        // Early termination releases on Drop instead.
        let ctx = ExecContext::with_memory(50_000.0);
        let mut g = GJoinOp::new(
            src("l", 1000, true),
            src("r", 500, true),
            &["l.k"],
            &["r.k"],
            false,
            false,
            None,
            ctx.clone(),
        )
        .unwrap();
        assert!(g.next().is_some());
        drop(g);
        assert_eq!(ctx.memory.outstanding(), 0.0, "drop releases the grants");
        assert!(
            ctx.tracer.snapshot().iter().all(|sp| !sp.closed_at.is_nan()),
            "no open spans after drop"
        );
    }

    #[test]
    fn budget_shrink_mid_drain_sheds_and_spills_once() {
        // Chaos-governor regression: both run-generation grants are held on
        // one lease; a mid-drain shrink sheds from the *sum* (spilling
        // exactly once per shock) and completion leaves nothing outstanding.
        let ctx = ExecContext::with_memory(50_000.0);
        let mut g = GJoinOp::new(
            src("l", 1000, true),
            src("r", 500, true),
            &["l.k"],
            &["r.k"],
            false,
            false,
            None,
            ctx.clone(),
        )
        .unwrap();
        assert!(g.next().is_some());
        assert_eq!(ctx.memory.outstanding(), 1_500.0, "both grants held");
        assert_eq!(ctx.clock.breakdown().spill, 0.0);
        ctx.memory.set_budget(300.0);
        assert!(g.next().is_some());
        assert_eq!(ctx.memory.outstanding(), 300.0, "sum shed to the new budget");
        let spill1 = ctx.clock.breakdown().spill;
        assert!(spill1 > 0.0);
        assert_eq!(g.span().unwrap().spill_events(), 1, "one spill per shock");
        for _ in 0..20 {
            g.next();
        }
        assert_eq!(ctx.clock.breakdown().spill, spill1);
        collect(&mut g);
        assert_eq!(ctx.memory.outstanding(), 0.0, "outstanding()==0 after completion");
        assert!(g
            .span()
            .unwrap()
            .events()
            .iter()
            .any(|e| e.kind == "governor.pressure"));
    }

    #[test]
    fn empty_inputs() {
        let ctx = ExecContext::unbounded();
        let empty = RowsOp::boxed(Schema::from_pairs(&[("l.k", DataType::Int)]), vec![]);
        let mut g = GJoinOp::new(
            empty,
            src("r", 10, false),
            &["l.k"],
            &["r.k"],
            true,
            true,
            None,
            ctx,
        )
        .unwrap();
        assert!(collect(&mut g).is_empty());
    }

    #[test]
    fn sorted_helper() {
        let rows: Vec<Row> = vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(2)]];
        assert!(is_sorted_on(&rows, &[0]));
        let rows2: Vec<Row> = vec![vec![Value::Int(3)], vec![Value::Int(2)]];
        assert!(!is_sorted_on(&rows2, &[0]));
    }
}
