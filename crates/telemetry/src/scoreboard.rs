//! The cross-run scoreboard: one JSON document summarizing every
//! experiment's robustness numbers.
//!
//! A [`Scoreboard`] folds a directory of [`RunReport`]s into one entry per
//! experiment, computing the seminar's paper metrics (`rqp-metrics`) from
//! the raw observations the reports carry:
//!
//! * **M1** and **C(Q)** from the spans' estimated-vs-actual cardinalities;
//! * **M3** from the reserved `paper.m3.opt` / `paper.m3.best` gauges;
//! * **smoothness S(Q)** from the `paper.perf_gap.*` gauge family (one
//!   gauge per query in a parameterized sweep);
//! * **intrinsic/extrinsic variability** from the `paper.env.*.chosen` /
//!   `paper.env.*.ideal` gauge families (one pair per environment);
//! * adaptive-decision **event counts** and spill volume from the spans.
//!
//! Folding is exactly order-independent: every sample pool is sorted before
//! reduction, so any permutation of the same reports produces a
//! byte-identical scoreboard. [`Scoreboard::diff`] compares two scoreboards
//! under per-metric thresholds — the CI regression gate.

use crate::json::Json;
use crate::report::RunReport;
use rqp_metrics::{cardinality_error_geomean, metric1, metric3, smoothness, VariabilityReport};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Version stamped into `scoreboard.json`; bump on breaking changes.
/// Version 2 added the parallel-execution metrics (`parallel_speedup`,
/// `parallel_skew`). Version 3 added the chaos metrics
/// (`degradation_cliff`, `recovery_rate`). Version 4 added the concurrent-
/// service metrics (`tail_amplification`, `admission_wait`). Version 5
/// added the wire-service metrics (`wire_tail_p99`, `wire_tail_p999`,
/// `wire_churn_recovery`, `wire_backpressure_pages`). Version 6 added the
/// live-observability metrics (`observer_overhead_p99`,
/// `observer_event_loss`). Version 7 added the batch-execution metric
/// (`batch_speedup`). Version 8 added the paged-storage metrics
/// (`paged_cliff`, `paged_completion`). Version 9 added the streaming
/// metrics (`stream_delta_p99`, `stream_view_divergence`).
pub const SCOREBOARD_VERSION: u32 = 9;

/// Reserved metric names through which experiments publish the raw samples
/// behind paper metrics the scoreboard cannot derive from spans alone.
pub mod samples {
    /// Gauge: `RunTimeOpt` for Metric3.
    pub const M3_OPT: &str = "paper.m3.opt";
    /// Gauge: `RunTimeBest` for Metric3.
    pub const M3_BEST: &str = "paper.m3.best";
    /// Gauge-family prefix: per-query performance gaps `P(qᵢ)` of a sweep,
    /// e.g. `paper.perf_gap.007`. Smoothness `S(Q)` is their CV.
    pub const PERF_GAP_PREFIX: &str = "paper.perf_gap.";
    /// Gauge-family prefix for per-environment costs: `paper.env.<k>.chosen`
    /// and `paper.env.<k>.ideal` feed the variability decomposition.
    pub const ENV_PREFIX: &str = "paper.env.";
    /// Suffix of the chosen-plan cost gauge in an environment pair.
    pub const ENV_CHOSEN: &str = ".chosen";
    /// Suffix of the ideal-plan cost gauge in an environment pair.
    pub const ENV_IDEAL: &str = ".ideal";
    /// Gauge: headline parallel speedup (total work / critical path at the
    /// experiment's reference worker count, zero skew). Folded as the
    /// *minimum* across runs — the worst scaling observed.
    pub const PARALLEL_SPEEDUP: &str = "paper.parallel.speedup";
    /// Gauge: worst partition-imbalance factor (critical path relative to a
    /// perfectly balanced split). Folded as the *maximum* across runs.
    pub const PARALLEL_SKEW: &str = "paper.parallel.skew";
    /// Gauge: worst cost ratio between adjacent memory fractions of a chaos
    /// sweep — the steepest degradation "cliff". Folded as the *maximum*
    /// across runs; a robust system degrades smoothly (stays near 1).
    pub const DEGRADATION_CLIFF: &str = "paper.chaos.degradation_cliff";
    /// Gauge: fraction of chaos-injected queries that completed (after
    /// retries and renegotiation). Folded as the *minimum* across runs —
    /// the worst recovery observed.
    pub const RECOVERY_RATE: &str = "paper.chaos.recovery_rate";
    /// Gauge: worst p99-latency amplification of concurrent execution over
    /// solo execution across a service sweep (`p99 / solo p99`). Folded as
    /// the *maximum* across runs — a managed service keeps the tail bounded.
    pub const TAIL_AMPLIFICATION: &str = "paper.service.tail_amplification";
    /// Gauge: worst p99 admission-queue wait (cost units) across a service
    /// sweep. Folded as the *maximum* across runs.
    pub const ADMISSION_WAIT: &str = "paper.service.admission_wait";
    /// Gauge: worst p99 end-to-end latency amplification over solo execution
    /// across the wire-service sweep. Folded as the *maximum* across runs.
    pub const WIRE_TAIL_P99: &str = "paper.wire.tail_p99";
    /// Gauge: worst p99.9 end-to-end latency amplification over solo
    /// execution across the wire-service sweep. Folded as the *maximum*.
    pub const WIRE_TAIL_P999: &str = "paper.wire.tail_p999";
    /// Gauge: fraction of mid-query client disconnects whose queries were
    /// fully reaped (slot surrendered, grants returned). Folded as the
    /// *minimum* across runs — the worst churn recovery observed.
    pub const WIRE_CHURN_RECOVERY: &str = "paper.wire.churn_recovery";
    /// Gauge: peak encoded-but-unsent result pages held for any single query
    /// under a stalled consumer. Folded as the *maximum* across runs —
    /// credit-based paging keeps this at 1.
    pub const WIRE_BACKPRESSURE_PAGES: &str = "paper.wire.backpressure_pages";
    /// Gauge: p99 wire-tail amplification with a live observer attached,
    /// relative to the same workload unobserved (`observed p99 / bare
    /// p99`). Folded as the *maximum* across runs — introspection frames
    /// bypass admission and must not perturb the workload's tail.
    pub const OBSERVER_OVERHEAD_P99: &str = "paper.observer.overhead_p99";
    /// Gauge: flight-recorder events the observer requested but lost to
    /// ring overwrite (summed `gap`). Folded as the *maximum* across runs
    /// — a correctly provisioned recorder loses nothing.
    pub const OBSERVER_EVENT_LOSS: &str = "paper.observer.event_loss";
    /// Gauge: worst wall-clock speedup of the batch execution path over its
    /// row-at-a-time twin on the `a09` microbench sweep (batch plans are
    /// charge-identical, so only elapsed time can show the win). Folded as
    /// the *minimum* across runs — the weakest vectorization observed.
    pub const BATCH_SPEEDUP: &str = "paper.batch.speedup";
    /// Gauge: worst mean-cost ratio between adjacent page-budget fractions
    /// of the paged-degradation sweep (`a10`) — the steepest cliff the
    /// buffer pool shows when data stops fitting in memory. Folded as the
    /// *maximum* across runs; bounded refaulting keeps this small.
    pub const PAGED_CLIFF: &str = "paper.paged.degradation_cliff";
    /// Gauge: fraction of queries that completed across the paged sweep's
    /// constrained-budget × fault-rate cells (budget exhaustion and
    /// retry-exhausted page I/O both count as losses). Folded as the
    /// *minimum* across runs — graceful degradation means losing none.
    pub const PAGED_COMPLETION: &str = "paper.paged.completion_rate";
    /// Gauge: worst p99 per-delta maintenance cost (cost units charged per
    /// applied delta packet) across the continuous-query sweep (`a11`).
    /// Folded as the *maximum* across runs — incremental maintenance keeps
    /// delta latency bounded as subscriptions and churn scale.
    pub const STREAM_DELTA_P99: &str = "paper.stream.delta_p99";
    /// Gauge: maintained views that diverged from a from-scratch
    /// re-execution anywhere in the continuous-query sweep. Folded as the
    /// *maximum* across runs — the view-consistency contract allows
    /// exactly zero.
    pub const STREAM_VIEW_DIVERGENCE: &str = "paper.stream.view_divergence";
}

/// One experiment's folded robustness numbers. Metrics whose samples the
/// experiment did not publish are NaN (serialized as `null`).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreboardEntry {
    /// Number of run reports folded in.
    pub runs: u64,
    /// Nica et al. Metric1: Σ |est − act| / act over estimated spans.
    pub m1: f64,
    /// Nica et al. Metric3, from the `paper.m3.*` gauges.
    pub m3: f64,
    /// Sattler et al. smoothness S(Q), from the `paper.perf_gap.*` gauges.
    pub smoothness: f64,
    /// Intrinsic variability, from the `paper.env.*` gauge pairs.
    pub intrinsic: f64,
    /// Extrinsic variability, from the `paper.env.*` gauge pairs.
    pub extrinsic: f64,
    /// Worst per-span q-error.
    pub max_q_error: f64,
    /// Sattler et al. C(Q): geometric mean of relative cardinality errors.
    pub card_error_geomean: f64,
    /// Summed cost-clock totals across runs.
    pub total_cost: f64,
    /// Summed spilled rows across all spans.
    pub spilled_rows: f64,
    /// Worst (minimum) parallel speedup, from `paper.parallel.speedup`.
    pub parallel_speedup: f64,
    /// Worst (maximum) partition imbalance, from `paper.parallel.skew`.
    pub parallel_skew: f64,
    /// Worst (maximum) degradation cliff, from `paper.chaos.degradation_cliff`.
    pub degradation_cliff: f64,
    /// Worst (minimum) chaos recovery rate, from `paper.chaos.recovery_rate`.
    pub recovery_rate: f64,
    /// Worst (maximum) tail-latency amplification, from
    /// `paper.service.tail_amplification`.
    pub tail_amplification: f64,
    /// Worst (maximum) p99 admission wait, from `paper.service.admission_wait`.
    pub admission_wait: f64,
    /// Worst (maximum) wire p99 latency amplification, from
    /// `paper.wire.tail_p99`.
    pub wire_tail_p99: f64,
    /// Worst (maximum) wire p99.9 latency amplification, from
    /// `paper.wire.tail_p999`.
    pub wire_tail_p999: f64,
    /// Worst (minimum) churn recovery fraction, from
    /// `paper.wire.churn_recovery`.
    pub wire_churn_recovery: f64,
    /// Worst (maximum) stalled-consumer page buffering, from
    /// `paper.wire.backpressure_pages`.
    pub wire_backpressure_pages: f64,
    /// Worst (maximum) observed-over-bare wire-tail ratio, from
    /// `paper.observer.overhead_p99`.
    pub observer_overhead_p99: f64,
    /// Worst (maximum) flight-recorder event loss seen by an observer,
    /// from `paper.observer.event_loss`.
    pub observer_event_loss: f64,
    /// Worst (minimum) batch-over-scalar wall-clock speedup, from
    /// `paper.batch.speedup`.
    pub batch_speedup: f64,
    /// Worst (maximum) paged-degradation cliff, from
    /// `paper.paged.degradation_cliff`.
    pub paged_cliff: f64,
    /// Worst (minimum) paged-sweep completion rate, from
    /// `paper.paged.completion_rate`.
    pub paged_completion: f64,
    /// Worst (maximum) p99 per-delta maintenance cost, from
    /// `paper.stream.delta_p99`.
    pub stream_delta_p99: f64,
    /// Worst (maximum) count of diverged maintained views, from
    /// `paper.stream.view_divergence`.
    pub stream_view_divergence: f64,
    /// Adaptive-decision events by kind, summed across all spans.
    pub events: BTreeMap<String, u64>,
}

/// Per-experiment sample pools, accumulated before any float reduction.
#[derive(Debug, Default)]
struct SamplePool {
    runs: u64,
    est_act: Vec<(f64, f64)>,
    q_errors: Vec<f64>,
    perf_gaps: Vec<(String, f64)>,
    env_chosen: Vec<(String, f64)>,
    env_ideal: Vec<(String, f64)>,
    m3_pairs: Vec<(f64, f64)>,
    costs: Vec<f64>,
    spilled: Vec<f64>,
    speedups: Vec<f64>,
    skews: Vec<f64>,
    cliffs: Vec<f64>,
    recoveries: Vec<f64>,
    amplifications: Vec<f64>,
    admission_waits: Vec<f64>,
    wire_p99s: Vec<f64>,
    wire_p999s: Vec<f64>,
    churn_recoveries: Vec<f64>,
    backpressure_pages: Vec<f64>,
    observer_overheads: Vec<f64>,
    observer_losses: Vec<f64>,
    batch_speedups: Vec<f64>,
    paged_cliffs: Vec<f64>,
    paged_completions: Vec<f64>,
    stream_delta_p99s: Vec<f64>,
    stream_divergences: Vec<f64>,
    events: BTreeMap<String, u64>,
}

impl SamplePool {
    fn absorb(&mut self, report: &RunReport) {
        self.runs += 1;
        self.costs.push(report.cost.total());
        for s in &report.spans {
            if !s.est_rows.is_nan() {
                self.est_act.push((s.est_rows, s.rows_out as f64));
                self.q_errors.push(s.q_error());
            }
            self.spilled.push(s.spilled_rows);
            for e in &s.events {
                *self.events.entry(e.kind.clone()).or_insert(0) += 1;
            }
        }
        let mut m3 = (f64::NAN, f64::NAN);
        for (name, value) in &report.metrics {
            let crate::metrics::MetricValue::Gauge(x) = value else { continue };
            if name == samples::M3_OPT {
                m3.0 = *x;
            } else if name == samples::M3_BEST {
                m3.1 = *x;
            } else if name == samples::PARALLEL_SPEEDUP {
                self.speedups.push(*x);
            } else if name == samples::PARALLEL_SKEW {
                self.skews.push(*x);
            } else if name == samples::DEGRADATION_CLIFF {
                self.cliffs.push(*x);
            } else if name == samples::RECOVERY_RATE {
                self.recoveries.push(*x);
            } else if name == samples::TAIL_AMPLIFICATION {
                self.amplifications.push(*x);
            } else if name == samples::ADMISSION_WAIT {
                self.admission_waits.push(*x);
            } else if name == samples::WIRE_TAIL_P99 {
                self.wire_p99s.push(*x);
            } else if name == samples::WIRE_TAIL_P999 {
                self.wire_p999s.push(*x);
            } else if name == samples::WIRE_CHURN_RECOVERY {
                self.churn_recoveries.push(*x);
            } else if name == samples::WIRE_BACKPRESSURE_PAGES {
                self.backpressure_pages.push(*x);
            } else if name == samples::OBSERVER_OVERHEAD_P99 {
                self.observer_overheads.push(*x);
            } else if name == samples::OBSERVER_EVENT_LOSS {
                self.observer_losses.push(*x);
            } else if name == samples::BATCH_SPEEDUP {
                self.batch_speedups.push(*x);
            } else if name == samples::PAGED_CLIFF {
                self.paged_cliffs.push(*x);
            } else if name == samples::PAGED_COMPLETION {
                self.paged_completions.push(*x);
            } else if name == samples::STREAM_DELTA_P99 {
                self.stream_delta_p99s.push(*x);
            } else if name == samples::STREAM_VIEW_DIVERGENCE {
                self.stream_divergences.push(*x);
            } else if let Some(key) = name.strip_prefix(samples::PERF_GAP_PREFIX) {
                self.perf_gaps.push((key.to_string(), *x));
            } else if let Some(rest) = name.strip_prefix(samples::ENV_PREFIX) {
                if let Some(key) = rest.strip_suffix(samples::ENV_CHOSEN) {
                    self.env_chosen.push((key.to_string(), *x));
                } else if let Some(key) = rest.strip_suffix(samples::ENV_IDEAL) {
                    self.env_ideal.push((key.to_string(), *x));
                }
            }
        }
        if !m3.0.is_nan() && !m3.1.is_nan() {
            self.m3_pairs.push(m3);
        }
    }

    /// Reduce the pools to an entry. Every pool is sorted first, so the
    /// entry is identical for any absorption order.
    fn entry(mut self) -> ScoreboardEntry {
        let by_key =
            |a: &(String, f64), b: &(String, f64)| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1));
        self.est_act
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        self.q_errors.sort_by(f64::total_cmp);
        self.perf_gaps.sort_by(by_key);
        self.env_chosen.sort_by(by_key);
        self.env_ideal.sort_by(by_key);
        self.m3_pairs
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        self.costs.sort_by(f64::total_cmp);
        self.spilled.sort_by(f64::total_cmp);
        self.speedups.sort_by(f64::total_cmp);
        self.skews.sort_by(f64::total_cmp);
        self.cliffs.sort_by(f64::total_cmp);
        self.recoveries.sort_by(f64::total_cmp);
        self.amplifications.sort_by(f64::total_cmp);
        self.admission_waits.sort_by(f64::total_cmp);
        self.wire_p99s.sort_by(f64::total_cmp);
        self.wire_p999s.sort_by(f64::total_cmp);
        self.churn_recoveries.sort_by(f64::total_cmp);
        self.backpressure_pages.sort_by(f64::total_cmp);
        self.observer_overheads.sort_by(f64::total_cmp);
        self.observer_losses.sort_by(f64::total_cmp);
        self.batch_speedups.sort_by(f64::total_cmp);
        self.paged_cliffs.sort_by(f64::total_cmp);
        self.paged_completions.sort_by(f64::total_cmp);
        self.stream_delta_p99s.sort_by(f64::total_cmp);
        self.stream_divergences.sort_by(f64::total_cmp);

        let m1 = if self.est_act.is_empty() { f64::NAN } else { metric1(&self.est_act) };
        let card = if self.est_act.is_empty() {
            f64::NAN
        } else {
            cardinality_error_geomean(&self.est_act)
        };
        let max_q = if self.q_errors.is_empty() {
            f64::NAN
        } else {
            self.q_errors.iter().copied().fold(1.0, f64::max)
        };
        let m3 = if self.m3_pairs.is_empty() {
            f64::NAN
        } else {
            // Mean Metric3 across runs.
            self.m3_pairs.iter().map(|&(o, b)| metric3(o, b)).sum::<f64>()
                / self.m3_pairs.len() as f64
        };
        let smooth = if self.perf_gaps.is_empty() {
            f64::NAN
        } else {
            smoothness(&self.perf_gaps.iter().map(|(_, g)| *g).collect::<Vec<_>>())
        };
        // Pair up environments by key; a chosen without an ideal (or vice
        // versa) is dropped.
        let ideals: BTreeMap<&str, f64> =
            self.env_ideal.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let env_pairs: Vec<(f64, f64)> = self
            .env_chosen
            .iter()
            .filter_map(|(k, chosen)| ideals.get(k.as_str()).map(|ideal| (*chosen, *ideal)))
            .collect();
        let (intrinsic, extrinsic) = if env_pairs.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            let v = VariabilityReport::from_costs(&env_pairs);
            (v.intrinsic(), v.extrinsic())
        };
        ScoreboardEntry {
            runs: self.runs,
            m1,
            m3,
            smoothness: smooth,
            intrinsic,
            extrinsic,
            max_q_error: max_q,
            card_error_geomean: card,
            total_cost: self.costs.iter().sum(),
            spilled_rows: self.spilled.iter().sum(),
            parallel_speedup: self.speedups.first().copied().unwrap_or(f64::NAN),
            parallel_skew: self.skews.last().copied().unwrap_or(f64::NAN),
            degradation_cliff: self.cliffs.last().copied().unwrap_or(f64::NAN),
            recovery_rate: self.recoveries.first().copied().unwrap_or(f64::NAN),
            tail_amplification: self.amplifications.last().copied().unwrap_or(f64::NAN),
            admission_wait: self.admission_waits.last().copied().unwrap_or(f64::NAN),
            wire_tail_p99: self.wire_p99s.last().copied().unwrap_or(f64::NAN),
            wire_tail_p999: self.wire_p999s.last().copied().unwrap_or(f64::NAN),
            wire_churn_recovery: self.churn_recoveries.first().copied().unwrap_or(f64::NAN),
            wire_backpressure_pages: self.backpressure_pages.last().copied().unwrap_or(f64::NAN),
            observer_overhead_p99: self.observer_overheads.last().copied().unwrap_or(f64::NAN),
            observer_event_loss: self.observer_losses.last().copied().unwrap_or(f64::NAN),
            batch_speedup: self.batch_speedups.first().copied().unwrap_or(f64::NAN),
            paged_cliff: self.paged_cliffs.last().copied().unwrap_or(f64::NAN),
            paged_completion: self.paged_completions.first().copied().unwrap_or(f64::NAN),
            stream_delta_p99: self.stream_delta_p99s.last().copied().unwrap_or(f64::NAN),
            stream_view_divergence: self.stream_divergences.last().copied().unwrap_or(f64::NAN),
            events: self.events,
        }
    }
}

/// The cross-run scoreboard: one [`ScoreboardEntry`] per experiment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scoreboard {
    /// Entries keyed by experiment name.
    pub entries: BTreeMap<String, ScoreboardEntry>,
}

impl Scoreboard {
    /// Fold reports into a scoreboard. Any permutation of the same reports
    /// produces an identical scoreboard.
    pub fn fold(reports: &[RunReport]) -> Scoreboard {
        let mut pools: BTreeMap<String, SamplePool> = BTreeMap::new();
        for r in reports {
            pools.entry(r.experiment.clone()).or_default().absorb(r);
        }
        Scoreboard {
            entries: pools.into_iter().map(|(name, pool)| (name, pool.entry())).collect(),
        }
    }

    /// Fold every `*.json` run report under `dir` (skipping
    /// `scoreboard.json` itself). A report that fails to parse is an error —
    /// a gate must not silently ignore corrupt evidence.
    pub fn from_dir(dir: &Path) -> Result<Scoreboard, String> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("read {}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension().is_some_and(|ext| ext == "json")
                    && p.file_name().is_some_and(|n| n != "scoreboard.json")
            })
            .collect();
        paths.sort();
        let mut reports = Vec::with_capacity(paths.len());
        for p in paths {
            let text = std::fs::read_to_string(&p)
                .map_err(|e| format!("read {}: {e}", p.display()))?;
            reports.push(
                RunReport::from_json(&text).map_err(|e| format!("{}: {e}", p.display()))?,
            );
        }
        Ok(Scoreboard::fold(&reports))
    }

    /// Serialize to a [`Json`] document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("scoreboard_version", Json::num(SCOREBOARD_VERSION as f64)),
            (
                "entries",
                Json::Obj(
                    self.entries
                        .iter()
                        .map(|(name, e)| (name.clone(), entry_to_json(e)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a scoreboard back from JSON text.
    pub fn from_json(text: &str) -> Result<Scoreboard, String> {
        let doc = Json::parse(text)?;
        let version = doc
            .get("scoreboard_version")
            .and_then(Json::as_num)
            .ok_or("missing scoreboard_version")?;
        if version as u32 != SCOREBOARD_VERSION {
            return Err(format!(
                "scoreboard version {version} (this build reads {SCOREBOARD_VERSION})"
            ));
        }
        let entries = match doc.get("entries") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(name, v)| Ok((name.clone(), entry_from_json(v)?)))
                .collect::<Result<BTreeMap<_, _>, String>>()?,
            _ => return Err("missing entries".to_string()),
        };
        Ok(Scoreboard { entries })
    }

    /// Write to `path` as pretty JSON.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json().pretty())
    }

    /// Compare `current` against this baseline under `thresholds`. Returns
    /// every regression found; empty means the gate passes.
    pub fn diff(&self, current: &Scoreboard, thresholds: &DiffThresholds) -> Vec<Regression> {
        let mut out = Vec::new();
        for (name, base) in &self.entries {
            let Some(cur) = current.entries.get(name) else {
                out.push(Regression {
                    experiment: name.clone(),
                    metric: "missing".to_string(),
                    baseline: base.runs as f64,
                    current: 0.0,
                    limit: base.runs as f64,
                });
                continue;
            };
            let mut check = |metric: &str, baseline: f64, current_v: f64, limit: f64| {
                if baseline.is_nan() {
                    return;
                }
                // A metric that vanished is an observability regression.
                if current_v.is_nan() || current_v > limit {
                    out.push(Regression {
                        experiment: name.clone(),
                        metric: metric.to_string(),
                        baseline,
                        current: current_v,
                        limit,
                    });
                }
            };
            check("total_cost", base.total_cost, cur.total_cost, base.total_cost * thresholds.cost_ratio);
            check("m1", base.m1, cur.m1, base.m1 * thresholds.m1_ratio + thresholds.m1_slack);
            check(
                "max_q_error",
                base.max_q_error,
                cur.max_q_error,
                base.max_q_error * thresholds.q_error_ratio,
            );
            check("smoothness", base.smoothness, cur.smoothness, base.smoothness + thresholds.smoothness_slack);
            check("extrinsic", base.extrinsic, cur.extrinsic, base.extrinsic + thresholds.extrinsic_slack);
            check("m3", base.m3, cur.m3, base.m3 + thresholds.m3_slack);
            check(
                "parallel_skew",
                base.parallel_skew,
                cur.parallel_skew,
                base.parallel_skew + thresholds.parallel_skew_slack,
            );
            check(
                "degradation_cliff",
                base.degradation_cliff,
                cur.degradation_cliff,
                base.degradation_cliff + thresholds.degradation_cliff_slack,
            );
            check(
                "tail_amplification",
                base.tail_amplification,
                cur.tail_amplification,
                base.tail_amplification + thresholds.tail_amplification_slack,
            );
            check(
                "admission_wait",
                base.admission_wait,
                cur.admission_wait,
                base.admission_wait * thresholds.admission_wait_ratio
                    + thresholds.admission_wait_slack,
            );
            check(
                "wire_tail_p99",
                base.wire_tail_p99,
                cur.wire_tail_p99,
                base.wire_tail_p99 * thresholds.wire_tail_ratio + thresholds.wire_tail_slack,
            );
            check(
                "wire_tail_p999",
                base.wire_tail_p999,
                cur.wire_tail_p999,
                base.wire_tail_p999 * thresholds.wire_tail_ratio + thresholds.wire_tail_slack,
            );
            check(
                "wire_backpressure_pages",
                base.wire_backpressure_pages,
                cur.wire_backpressure_pages,
                base.wire_backpressure_pages + thresholds.wire_backpressure_slack,
            );
            check(
                "observer_overhead_p99",
                base.observer_overhead_p99,
                cur.observer_overhead_p99,
                base.observer_overhead_p99 * thresholds.observer_overhead_ratio
                    + thresholds.observer_overhead_slack,
            );
            check(
                "observer_event_loss",
                base.observer_event_loss,
                cur.observer_event_loss,
                base.observer_event_loss + thresholds.observer_event_loss_slack,
            );
            check(
                "paged_cliff",
                base.paged_cliff,
                cur.paged_cliff,
                base.paged_cliff + thresholds.paged_cliff_slack,
            );
            check(
                "stream_delta_p99",
                base.stream_delta_p99,
                cur.stream_delta_p99,
                base.stream_delta_p99 * thresholds.stream_delta_ratio
                    + thresholds.stream_delta_slack,
            );
            // View consistency is a contract, not a budget: the divergence
            // slack is exactly zero, so ANY diverged view is a regression.
            check(
                "stream_view_divergence",
                base.stream_view_divergence,
                cur.stream_view_divergence,
                base.stream_view_divergence + thresholds.stream_divergence_slack,
            );
            // Floor metrics regress *downward*: flag a drop below the floor,
            // and (like the ceiling checks) a metric that vanished entirely.
            let mut check_floor = |metric: &str, baseline: f64, current_v: f64, floor: f64| {
                if baseline.is_nan() {
                    return;
                }
                if current_v.is_nan() || current_v < floor {
                    out.push(Regression {
                        experiment: name.clone(),
                        metric: metric.to_string(),
                        baseline,
                        current: current_v,
                        limit: floor,
                    });
                }
            };
            check_floor(
                "parallel_speedup",
                base.parallel_speedup,
                cur.parallel_speedup,
                base.parallel_speedup - thresholds.speedup_slack,
            );
            check_floor(
                "recovery_rate",
                base.recovery_rate,
                cur.recovery_rate,
                base.recovery_rate - thresholds.recovery_rate_slack,
            );
            check_floor(
                "wire_churn_recovery",
                base.wire_churn_recovery,
                cur.wire_churn_recovery,
                base.wire_churn_recovery - thresholds.wire_churn_recovery_slack,
            );
            check_floor(
                "batch_speedup",
                base.batch_speedup,
                cur.batch_speedup,
                base.batch_speedup - thresholds.batch_speedup_slack,
            );
            check_floor(
                "paged_completion",
                base.paged_completion,
                cur.paged_completion,
                base.paged_completion - thresholds.paged_completion_slack,
            );
        }
        out
    }
}

/// Per-metric regression thresholds for [`Scoreboard::diff`].
///
/// Ratio thresholds bound multiplicative growth; slack thresholds bound
/// absolute growth (for metrics whose baseline is legitimately near zero).
#[derive(Debug, Clone)]
pub struct DiffThresholds {
    /// `total_cost` may grow by this factor.
    pub cost_ratio: f64,
    /// `m1` may grow by this factor…
    pub m1_ratio: f64,
    /// …plus this absolute slack.
    pub m1_slack: f64,
    /// `max_q_error` may grow by this factor.
    pub q_error_ratio: f64,
    /// `smoothness` may grow by this absolute amount.
    pub smoothness_slack: f64,
    /// `extrinsic` may grow by this absolute amount.
    pub extrinsic_slack: f64,
    /// `m3` may grow by this absolute amount.
    pub m3_slack: f64,
    /// `parallel_speedup` may *shrink* by this absolute amount.
    pub speedup_slack: f64,
    /// `parallel_skew` may grow by this absolute amount.
    pub parallel_skew_slack: f64,
    /// `degradation_cliff` may grow by this absolute amount.
    pub degradation_cliff_slack: f64,
    /// `recovery_rate` may *shrink* by this absolute amount.
    pub recovery_rate_slack: f64,
    /// `tail_amplification` may grow by this absolute amount.
    pub tail_amplification_slack: f64,
    /// `admission_wait` may grow by this factor…
    pub admission_wait_ratio: f64,
    /// …plus this absolute slack (baselines can legitimately be near zero).
    pub admission_wait_slack: f64,
    /// `wire_tail_p99` / `wire_tail_p999` may grow by this factor…
    pub wire_tail_ratio: f64,
    /// …plus this absolute slack.
    pub wire_tail_slack: f64,
    /// `wire_churn_recovery` may *shrink* by this absolute amount.
    pub wire_churn_recovery_slack: f64,
    /// `wire_backpressure_pages` may grow by this absolute amount.
    pub wire_backpressure_slack: f64,
    /// `observer_overhead_p99` may grow by this factor…
    pub observer_overhead_ratio: f64,
    /// …plus this absolute slack.
    pub observer_overhead_slack: f64,
    /// `observer_event_loss` may grow by this absolute amount.
    pub observer_event_loss_slack: f64,
    /// `batch_speedup` may *shrink* by this absolute amount (wall-clock
    /// measurements jitter more than charged costs).
    pub batch_speedup_slack: f64,
    /// `paged_cliff` may grow by this absolute amount.
    pub paged_cliff_slack: f64,
    /// `paged_completion` may *shrink* by this absolute amount.
    pub paged_completion_slack: f64,
    /// `stream_delta_p99` may grow by this factor…
    pub stream_delta_ratio: f64,
    /// …plus this absolute slack.
    pub stream_delta_slack: f64,
    /// `stream_view_divergence` may grow by this absolute amount. Zero by
    /// default: a single diverged maintained view is a correctness bug.
    pub stream_divergence_slack: f64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds {
            cost_ratio: 1.10,
            m1_ratio: 1.25,
            m1_slack: 0.5,
            q_error_ratio: 1.50,
            smoothness_slack: 0.25,
            extrinsic_slack: 0.25,
            m3_slack: 0.25,
            speedup_slack: 0.25,
            parallel_skew_slack: 0.5,
            degradation_cliff_slack: 0.25,
            recovery_rate_slack: 0.02,
            tail_amplification_slack: 0.5,
            admission_wait_ratio: 1.5,
            admission_wait_slack: 1.0,
            wire_tail_ratio: 1.25,
            wire_tail_slack: 0.5,
            wire_churn_recovery_slack: 0.02,
            wire_backpressure_slack: 0.5,
            observer_overhead_ratio: 1.25,
            observer_overhead_slack: 0.5,
            observer_event_loss_slack: 0.5,
            batch_speedup_slack: 0.5,
            paged_cliff_slack: 0.25,
            paged_completion_slack: 0.02,
            stream_delta_ratio: 1.25,
            stream_delta_slack: 1.0,
            stream_divergence_slack: 0.0,
        }
    }
}

/// One metric of one experiment exceeding its threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Experiment the regression is in.
    pub experiment: String,
    /// Metric that regressed (`"total_cost"`, `"m1"`, … or `"missing"`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// The limit the current value exceeded.
    pub limit: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} {:.4} -> {:.4} (limit {:.4})",
            self.experiment, self.metric, self.baseline, self.current, self.limit
        )
    }
}

fn entry_to_json(e: &ScoreboardEntry) -> Json {
    Json::obj(vec![
        ("runs", Json::num(e.runs as f64)),
        ("m1", Json::num(e.m1)),
        ("m3", Json::num(e.m3)),
        ("smoothness", Json::num(e.smoothness)),
        ("intrinsic", Json::num(e.intrinsic)),
        ("extrinsic", Json::num(e.extrinsic)),
        ("max_q_error", Json::num(e.max_q_error)),
        ("card_error_geomean", Json::num(e.card_error_geomean)),
        ("total_cost", Json::num(e.total_cost)),
        ("spilled_rows", Json::num(e.spilled_rows)),
        ("parallel_speedup", Json::num(e.parallel_speedup)),
        ("parallel_skew", Json::num(e.parallel_skew)),
        ("degradation_cliff", Json::num(e.degradation_cliff)),
        ("recovery_rate", Json::num(e.recovery_rate)),
        ("tail_amplification", Json::num(e.tail_amplification)),
        ("admission_wait", Json::num(e.admission_wait)),
        ("wire_tail_p99", Json::num(e.wire_tail_p99)),
        ("wire_tail_p999", Json::num(e.wire_tail_p999)),
        ("wire_churn_recovery", Json::num(e.wire_churn_recovery)),
        ("wire_backpressure_pages", Json::num(e.wire_backpressure_pages)),
        ("observer_overhead_p99", Json::num(e.observer_overhead_p99)),
        ("observer_event_loss", Json::num(e.observer_event_loss)),
        ("batch_speedup", Json::num(e.batch_speedup)),
        ("paged_cliff", Json::num(e.paged_cliff)),
        ("paged_completion", Json::num(e.paged_completion)),
        ("stream_delta_p99", Json::num(e.stream_delta_p99)),
        ("stream_view_divergence", Json::num(e.stream_view_divergence)),
        (
            "events",
            Json::Obj(
                e.events
                    .iter()
                    .map(|(kind, n)| (kind.clone(), Json::num(*n as f64)))
                    .collect(),
            ),
        ),
    ])
}

fn entry_from_json(doc: &Json) -> Result<ScoreboardEntry, String> {
    let num = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Json::as_num)
            .ok_or(format!("entry missing {key}"))
    };
    let events = match doc.get("events") {
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .map(|(kind, v)| {
                Ok((
                    kind.clone(),
                    v.as_num().ok_or("non-numeric event count")? as u64,
                ))
            })
            .collect::<Result<BTreeMap<_, _>, String>>()?,
        _ => return Err("entry missing events".to_string()),
    };
    Ok(ScoreboardEntry {
        runs: num("runs")? as u64,
        m1: num("m1")?,
        m3: num("m3")?,
        smoothness: num("smoothness")?,
        intrinsic: num("intrinsic")?,
        extrinsic: num("extrinsic")?,
        max_q_error: num("max_q_error")?,
        card_error_geomean: num("card_error_geomean")?,
        total_cost: num("total_cost")?,
        spilled_rows: num("spilled_rows")?,
        parallel_speedup: num("parallel_speedup")?,
        parallel_skew: num("parallel_skew")?,
        degradation_cliff: num("degradation_cliff")?,
        recovery_rate: num("recovery_rate")?,
        tail_amplification: num("tail_amplification")?,
        admission_wait: num("admission_wait")?,
        wire_tail_p99: num("wire_tail_p99")?,
        wire_tail_p999: num("wire_tail_p999")?,
        wire_churn_recovery: num("wire_churn_recovery")?,
        wire_backpressure_pages: num("wire_backpressure_pages")?,
        observer_overhead_p99: num("observer_overhead_p99")?,
        observer_event_loss: num("observer_event_loss")?,
        batch_speedup: num("batch_speedup")?,
        paged_cliff: num("paged_cliff")?,
        paged_completion: num("paged_completion")?,
        stream_delta_p99: num("stream_delta_p99")?,
        stream_view_divergence: num("stream_view_divergence")?,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::span::Tracer;
    use rqp_common::CostClock;

    fn report(experiment: &str, est: f64, act: u64, cost_rows: f64) -> RunReport {
        let clock = CostClock::default_clock();
        let tracer = Tracer::new();
        let reg = MetricsRegistry::new();
        let s = tracer.open("scan", &clock);
        s.set_est_rows(est);
        clock.charge_seq_rows(cost_rows);
        for _ in 0..act {
            s.produced(&clock);
        }
        s.record_event(&clock, "pop.violation", "test");
        s.close(&clock);
        reg.gauge(samples::M3_OPT).set(100.0);
        reg.gauge(samples::M3_BEST).set(80.0);
        for (i, gap) in [5.0, 6.0, 50.0].iter().enumerate() {
            reg.gauge(&format!("{}{i:03}", samples::PERF_GAP_PREFIX)).set(*gap);
        }
        reg.gauge("paper.env.000.chosen").set(30.0);
        reg.gauge("paper.env.000.ideal").set(10.0);
        reg.gauge("paper.env.001.chosen").set(20.0);
        reg.gauge("paper.env.001.ideal").set(20.0);
        reg.gauge(samples::PARALLEL_SPEEDUP).set(3.5);
        reg.gauge(samples::PARALLEL_SKEW).set(1.2);
        reg.gauge(samples::DEGRADATION_CLIFF).set(1.4);
        reg.gauge(samples::RECOVERY_RATE).set(1.0);
        reg.gauge(samples::TAIL_AMPLIFICATION).set(2.0);
        reg.gauge(samples::ADMISSION_WAIT).set(40.0);
        reg.gauge(samples::WIRE_TAIL_P99).set(3.0);
        reg.gauge(samples::WIRE_TAIL_P999).set(4.0);
        reg.gauge(samples::WIRE_CHURN_RECOVERY).set(1.0);
        reg.gauge(samples::WIRE_BACKPRESSURE_PAGES).set(1.0);
        reg.gauge(samples::OBSERVER_OVERHEAD_P99).set(1.0);
        reg.gauge(samples::OBSERVER_EVENT_LOSS).set(0.0);
        reg.gauge(samples::BATCH_SPEEDUP).set(2.5);
        reg.gauge(samples::PAGED_CLIFF).set(1.3);
        reg.gauge(samples::PAGED_COMPLETION).set(1.0);
        reg.gauge(samples::STREAM_DELTA_P99).set(4.0);
        reg.gauge(samples::STREAM_VIEW_DIVERGENCE).set(0.0);
        let mut r = RunReport::new(experiment).with_seed("workload", 7);
        r.cost = clock.breakdown();
        r.spans = tracer.snapshot();
        r.metrics = reg.snapshot();
        r
    }

    #[test]
    fn fold_computes_paper_metrics() {
        let board = Scoreboard::fold(&[report("e01", 50.0, 100, 1000.0)]);
        let e = &board.entries["e01"];
        assert_eq!(e.runs, 1);
        assert!((e.m1 - 0.5).abs() < 1e-9, "|50-100|/100");
        assert!((e.m3 - 0.25).abs() < 1e-9, "|100-80|/80");
        assert!(e.smoothness > 0.5, "gap cliff at 50");
        assert!(e.intrinsic > 0.0);
        assert!(e.extrinsic > 0.0, "env 000 diverges 3x");
        assert_eq!(e.max_q_error, 2.0);
        assert_eq!(e.events["pop.violation"], 1);
        assert!(e.total_cost > 0.0);
        assert_eq!(e.parallel_speedup, 3.5);
        assert_eq!(e.parallel_skew, 1.2);
        assert_eq!(e.degradation_cliff, 1.4);
        assert_eq!(e.recovery_rate, 1.0);
        assert_eq!(e.tail_amplification, 2.0);
        assert_eq!(e.admission_wait, 40.0);
        assert_eq!(e.wire_tail_p99, 3.0);
        assert_eq!(e.wire_tail_p999, 4.0);
        assert_eq!(e.wire_churn_recovery, 1.0);
        assert_eq!(e.wire_backpressure_pages, 1.0);
        assert_eq!(e.observer_overhead_p99, 1.0);
        assert_eq!(e.observer_event_loss, 0.0);
        assert_eq!(e.batch_speedup, 2.5);
        assert_eq!(e.paged_cliff, 1.3);
        assert_eq!(e.paged_completion, 1.0);
        assert_eq!(e.stream_delta_p99, 4.0);
        assert_eq!(e.stream_view_divergence, 0.0);
    }

    #[test]
    fn diff_trips_on_stream_delta_growth_and_any_view_divergence() {
        let baseline = Scoreboard::fold(&[report("a11", 50.0, 100, 1000.0)]);
        // Delta latency stretching past ratio + slack trips the ceiling
        // check (baseline 4.0 * 1.25 + 1.0 = 6.0)…
        let mut slow = baseline.clone();
        slow.entries.get_mut("a11").unwrap().stream_delta_p99 = 6.5;
        let regs = baseline.diff(&slow, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "stream_delta_p99"), "{regs:?}");
        // …and view consistency is a contract with zero slack: a single
        // diverged view is a regression.
        let mut diverged = baseline.clone();
        diverged.entries.get_mut("a11").unwrap().stream_view_divergence = 1.0;
        let regs = baseline.diff(&diverged, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "stream_view_divergence"), "{regs:?}");
        // Either gauge vanishing is an observability regression.
        let mut gone = baseline.clone();
        gone.entries.get_mut("a11").unwrap().stream_delta_p99 = f64::NAN;
        let regs = baseline.diff(&gone, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "stream_delta_p99"), "{regs:?}");
        // Faster deltas with the view still consistent are an improvement.
        let mut better = baseline.clone();
        better.entries.get_mut("a11").unwrap().stream_delta_p99 = 2.0;
        assert!(baseline.diff(&better, &DiffThresholds::default()).is_empty());
    }

    #[test]
    fn diff_trips_on_paged_cliff_and_completion_collapse() {
        let baseline = Scoreboard::fold(&[report("a10", 50.0, 100, 1000.0)]);
        // A paging cliff appearing between adjacent page-budget fractions
        // trips the ceiling check (baseline 1.3 + slack 0.25 = 1.55)…
        let mut cliffy = baseline.clone();
        cliffy.entries.get_mut("a10").unwrap().paged_cliff = 1.6;
        let regs = baseline.diff(&cliffy, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "paged_cliff"), "{regs:?}");
        // …queries dying when the budget is constrained trips the
        // completion floor (baseline 1.0 - slack 0.02)…
        let mut dying = baseline.clone();
        dying.entries.get_mut("a10").unwrap().paged_completion = 0.9;
        let regs = baseline.diff(&dying, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "paged_completion"), "{regs:?}");
        // …and either gauge vanishing is an observability regression.
        let mut gone = baseline.clone();
        gone.entries.get_mut("a10").unwrap().paged_completion = f64::NAN;
        let regs = baseline.diff(&gone, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "paged_completion"), "{regs:?}");
        // A flatter degradation curve is an improvement, not a regression.
        let mut better = baseline.clone();
        better.entries.get_mut("a10").unwrap().paged_cliff = 1.0;
        assert!(baseline.diff(&better, &DiffThresholds::default()).is_empty());
    }

    #[test]
    fn diff_trips_on_observer_overhead_and_event_loss() {
        let baseline = Scoreboard::fold(&[report("a08", 50.0, 100, 1000.0)]);
        // An observer that perturbs the workload's tail trips the overhead
        // ceiling (baseline 1.0 * ratio 1.25 + slack 0.5 = 1.75)…
        let mut heavy = baseline.clone();
        heavy.entries.get_mut("a08").unwrap().observer_overhead_p99 = 2.0;
        let regs = baseline.diff(&heavy, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "observer_overhead_p99"), "{regs:?}");
        // …a recorder overwriting events before the observer drains them
        // trips the loss ceiling (baseline 0 + slack 0.5)…
        let mut lossy = baseline.clone();
        lossy.entries.get_mut("a08").unwrap().observer_event_loss = 1.0;
        let regs = baseline.diff(&lossy, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "observer_event_loss"), "{regs:?}");
        // …and an observer gauge vanishing entirely trips as well.
        let mut gone = baseline.clone();
        gone.entries.get_mut("a08").unwrap().observer_overhead_p99 = f64::NAN;
        let regs = baseline.diff(&gone, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "observer_overhead_p99"), "{regs:?}");
        // A cheaper observer is an improvement, not a regression.
        let mut better = baseline.clone();
        better.entries.get_mut("a08").unwrap().observer_overhead_p99 = 0.9;
        assert!(baseline.diff(&better, &DiffThresholds::default()).is_empty());
    }

    #[test]
    fn diff_trips_on_wire_tail_growth_churn_collapse_and_page_buildup() {
        let baseline = Scoreboard::fold(&[report("a07", 50.0, 100, 1000.0)]);
        // Either tail percentile stretching past ratio + slack trips its
        // ceiling check…
        let mut stretched = baseline.clone();
        stretched.entries.get_mut("a07").unwrap().wire_tail_p99 = 4.5;
        let regs = baseline.diff(&stretched, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "wire_tail_p99"), "{regs:?}");
        let mut stretched = baseline.clone();
        stretched.entries.get_mut("a07").unwrap().wire_tail_p999 = 6.0;
        let regs = baseline.diff(&stretched, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "wire_tail_p999"), "{regs:?}");
        // …disconnected queries going unreaped trips the recovery floor…
        let mut leaky = baseline.clone();
        leaky.entries.get_mut("a07").unwrap().wire_churn_recovery = 0.9;
        let regs = baseline.diff(&leaky, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "wire_churn_recovery"), "{regs:?}");
        // …and a stalled consumer accumulating encoded pages trips the
        // backpressure ceiling, as does any wire gauge vanishing.
        let mut hoarding = baseline.clone();
        hoarding.entries.get_mut("a07").unwrap().wire_backpressure_pages = 8.0;
        let regs = baseline.diff(&hoarding, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "wire_backpressure_pages"), "{regs:?}");
        let mut gone = baseline.clone();
        gone.entries.get_mut("a07").unwrap().wire_churn_recovery = f64::NAN;
        let regs = baseline.diff(&gone, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "wire_churn_recovery"), "{regs:?}");
        // A tighter tail with full recovery is an improvement.
        let mut better = baseline.clone();
        better.entries.get_mut("a07").unwrap().wire_tail_p99 = 1.0;
        better.entries.get_mut("a07").unwrap().wire_tail_p999 = 1.0;
        assert!(baseline.diff(&better, &DiffThresholds::default()).is_empty());
    }

    #[test]
    fn diff_trips_on_batch_speedup_collapse() {
        let baseline = Scoreboard::fold(&[report("a09", 50.0, 100, 1000.0)]);
        // Vectorization eroding past the floor (baseline 2.5 - slack 0.5 = 2.0)
        // trips the check…
        let mut eroded = baseline.clone();
        eroded.entries.get_mut("a09").unwrap().batch_speedup = 1.4;
        let regs = baseline.diff(&eroded, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "batch_speedup"), "{regs:?}");
        // …as does the gauge vanishing entirely.
        let mut gone = baseline.clone();
        gone.entries.get_mut("a09").unwrap().batch_speedup = f64::NAN;
        let regs = baseline.diff(&gone, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "batch_speedup"), "{regs:?}");
        // A faster batch path is an improvement, not a regression.
        let mut better = baseline.clone();
        better.entries.get_mut("a09").unwrap().batch_speedup = 4.0;
        assert!(baseline.diff(&better, &DiffThresholds::default()).is_empty());
    }

    #[test]
    fn diff_trips_on_tail_amplification_and_admission_wait_growth() {
        let baseline = Scoreboard::fold(&[report("a06", 50.0, 100, 1000.0)]);
        // The tail stretching past its slack trips the ceiling check…
        let mut stretched = baseline.clone();
        stretched.entries.get_mut("a06").unwrap().tail_amplification = 2.6;
        let regs = baseline.diff(&stretched, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "tail_amplification"), "{regs:?}");
        // …as does the admission queue backing up past ratio + slack.
        let mut queued = baseline.clone();
        queued.entries.get_mut("a06").unwrap().admission_wait = 62.0;
        let regs = baseline.diff(&queued, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "admission_wait"), "{regs:?}");
        // Either gauge vanishing is an observability regression.
        let mut gone = baseline.clone();
        gone.entries.get_mut("a06").unwrap().tail_amplification = f64::NAN;
        let regs = baseline.diff(&gone, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "tail_amplification"), "{regs:?}");
        // A tighter tail and shorter queue are improvements.
        let mut better = baseline.clone();
        better.entries.get_mut("a06").unwrap().tail_amplification = 1.0;
        better.entries.get_mut("a06").unwrap().admission_wait = 0.0;
        assert!(baseline.diff(&better, &DiffThresholds::default()).is_empty());
    }

    #[test]
    fn diff_trips_on_degradation_cliff_and_recovery_collapse() {
        let baseline = Scoreboard::fold(&[report("a05", 50.0, 100, 1000.0)]);
        // A cost cliff appearing between adjacent memory fractions trips
        // the ceiling check…
        let mut cliffy = baseline.clone();
        cliffy.entries.get_mut("a05").unwrap().degradation_cliff = 2.5;
        let regs = baseline.diff(&cliffy, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "degradation_cliff"), "{regs:?}");
        // …and queries starting to die under injected faults trips the
        // recovery floor, as does the gauge vanishing entirely.
        let mut dying = baseline.clone();
        dying.entries.get_mut("a05").unwrap().recovery_rate = 0.8;
        let regs = baseline.diff(&dying, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "recovery_rate"), "{regs:?}");
        let mut gone = baseline.clone();
        gone.entries.get_mut("a05").unwrap().recovery_rate = f64::NAN;
        let regs = baseline.diff(&gone, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "recovery_rate"), "{regs:?}");
        // Smoother degradation and full recovery are improvements.
        let mut better = baseline.clone();
        better.entries.get_mut("a05").unwrap().degradation_cliff = 1.0;
        assert!(baseline.diff(&better, &DiffThresholds::default()).is_empty());
    }

    #[test]
    fn diff_trips_on_speedup_collapse_and_skew_growth() {
        let baseline = Scoreboard::fold(&[report("a04", 50.0, 100, 1000.0)]);
        // A collapse to near-serial scaling must trip the floor check…
        let mut collapsed = baseline.clone();
        collapsed.entries.get_mut("a04").unwrap().parallel_speedup = 1.1;
        let regs = baseline.diff(&collapsed, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "parallel_speedup"), "{regs:?}");
        // …as must the metric vanishing entirely.
        let mut gone = baseline.clone();
        gone.entries.get_mut("a04").unwrap().parallel_speedup = f64::NAN;
        let regs = baseline.diff(&gone, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "parallel_speedup"), "{regs:?}");
        // Skew growing past its slack trips the ceiling check.
        let mut skewed = baseline.clone();
        skewed.entries.get_mut("a04").unwrap().parallel_skew = 2.5;
        let regs = baseline.diff(&skewed, &DiffThresholds::default());
        assert!(regs.iter().any(|r| r.metric == "parallel_skew"), "{regs:?}");
        // A faster, better-balanced board is an improvement, not a regression.
        let mut better = baseline.clone();
        better.entries.get_mut("a04").unwrap().parallel_speedup = 7.9;
        better.entries.get_mut("a04").unwrap().parallel_skew = 1.0;
        assert!(baseline.diff(&better, &DiffThresholds::default()).is_empty());
    }

    #[test]
    fn fold_is_order_independent() {
        let reports = vec![
            report("e01", 50.0, 100, 1000.0),
            report("e01", 10.0, 90, 500.0),
            report("e02", 700.0, 7, 2000.0),
            report("e01", 33.0, 33, 250.0),
        ];
        let a = Scoreboard::fold(&reports);
        let mut rev = reports.clone();
        rev.reverse();
        let b = Scoreboard::fold(&rev);
        let mut rotated = reports;
        rotated.rotate_left(2);
        let c = Scoreboard::fold(&rotated);
        assert_eq!(a.to_json().pretty(), b.to_json().pretty());
        assert_eq!(a.to_json().pretty(), c.to_json().pretty());
        assert_eq!(a.entries["e01"].runs, 3);
    }

    #[test]
    fn json_round_trip() {
        let board = Scoreboard::fold(&[report("e01", 50.0, 100, 1000.0)]);
        let text = board.to_json().pretty();
        let back = Scoreboard::from_json(&text).expect("parse");
        assert_eq!(back.to_json().pretty(), text);
        // NaN-bearing entries survive too (a report with no paper gauges).
        let mut bare = RunReport::new("e09");
        bare.spans = Vec::new();
        let board = Scoreboard::fold(&[bare]);
        assert!(board.entries["e09"].m1.is_nan());
        let text = board.to_json().pretty();
        let back = Scoreboard::from_json(&text).expect("parse");
        assert!(back.entries["e09"].m1.is_nan());
        assert_eq!(back.to_json().pretty(), text);
    }

    #[test]
    fn diff_passes_on_identical_boards() {
        let board = Scoreboard::fold(&[report("e01", 50.0, 100, 1000.0)]);
        assert!(board.diff(&board, &DiffThresholds::default()).is_empty());
    }

    #[test]
    fn diff_trips_on_inflated_actuals() {
        let baseline = Scoreboard::fold(&[report("e01", 50.0, 100, 1000.0)]);
        // The regression fixture: same experiment, but the span's actual
        // cardinality came out 50x higher — the estimate is now badly wrong.
        let bad = Scoreboard::fold(&[report("e01", 50.0, 5000, 1000.0)]);
        let regressions = baseline.diff(&bad, &DiffThresholds::default());
        assert!(
            regressions.iter().any(|r| r.metric == "max_q_error"),
            "q-error blow-up must trip: {regressions:?}"
        );
        // And the reverse direction is fine (improvement, not regression).
        assert!(bad.diff(&baseline, &DiffThresholds::default()).is_empty());
    }

    #[test]
    fn diff_trips_on_missing_experiment_and_cost_growth() {
        let baseline = Scoreboard::fold(&[
            report("e01", 50.0, 100, 1000.0),
            report("e02", 50.0, 100, 1000.0),
        ]);
        let current = Scoreboard::fold(&[report("e01", 50.0, 100, 2000.0)]);
        let regressions = baseline.diff(&current, &DiffThresholds::default());
        assert!(regressions.iter().any(|r| r.experiment == "e02" && r.metric == "missing"));
        assert!(regressions.iter().any(|r| r.experiment == "e01" && r.metric == "total_cost"));
    }

    #[test]
    fn from_dir_folds_and_skips_the_scoreboard_itself() {
        let dir = std::env::temp_dir().join("rqp_scoreboard_from_dir_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        report("e01", 50.0, 100, 1000.0).write_to(&dir).unwrap();
        report("e02", 10.0, 90, 500.0).write_to(&dir).unwrap();
        let board = Scoreboard::fold(&[
            report("e01", 50.0, 100, 1000.0),
            report("e02", 10.0, 90, 500.0),
        ]);
        board.write_to(&dir.join("scoreboard.json")).unwrap();
        let folded = Scoreboard::from_dir(&dir).expect("fold dir");
        assert_eq!(folded, board);
        // A corrupt report is an error, not a silent skip.
        std::fs::write(dir.join("e03.json"), "{broken").unwrap();
        assert!(Scoreboard::from_dir(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
