//! The flight recorder: a bounded ring of sequenced service events.
//!
//! Post-hoc run reports answer "what happened?"; a long-running service
//! needs "what is happening *now*?" — Graefe/Kuno/Wiener's visualization
//! paper argues robustness work starts from exactly that visibility. The
//! [`FlightRecorder`] is the live half: every interesting service event
//! (admission enqueue/admit/cancel, broker grant/shrink/epoch, pager
//! page/stall, query lifecycle, chaos injections) is published as a
//! [`RecordedEvent`] carrying a **monotonically increasing sequence
//! number**, into a fixed-capacity ring buffer.
//!
//! Two properties make it safe to leave on in production:
//!
//! * **Bounded memory, never blocking the publisher on a reader.** When the
//!   ring is full the oldest event is overwritten and a `dropped` counter is
//!   bumped — publishers pay one short mutex critical section (push + maybe
//!   pop), never an allocation proportional to reader lag.
//! * **Gap-accounted tailing.** Readers poll with [`FlightRecorder::tail`]
//!   from a cursor (a sequence number). If the cursor has been overwritten,
//!   the reply reports exactly how many events the reader missed — loss is
//!   *visible*, never silent. Sequence numbers are allocated under the same
//!   lock as the push, so the tail of the ring is always seq-contiguous and
//!   a reader that keeps up sees every event exactly once.

use crate::json::Json;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One structured event in the flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedEvent {
    /// Monotonically increasing sequence number (dense: no gaps are ever
    /// *allocated*; gaps a reader observes are overwritten events).
    pub seq: u64,
    /// Cost-clock position (or wall-clock proxy) when published.
    pub at: f64,
    /// The query the event concerns, or 0 for service-wide events.
    pub query: u64,
    /// Dotted event kind, e.g. `admission.admit` or `broker.shrink`.
    pub kind: String,
    /// Free-form detail, small — the ring multiplies it by capacity.
    pub detail: String,
}

/// A [`FlightRecorder::tail`] reply: the events, where to resume, and how
/// many events between the cursor and the first returned one were lost.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventTail {
    /// Events with `seq >= cursor` still in the ring, oldest first.
    pub events: Vec<RecordedEvent>,
    /// Pass this as the next `cursor` to continue the tail.
    pub next_cursor: u64,
    /// Events the reader asked for that were already overwritten.
    pub gap: u64,
}

impl EventTail {
    /// Serialize as an events-dump document (`rqp-top --events-dump`
    /// writes these; `rqp-report show` renders them like run-report span
    /// events). The `kind` marker lets readers tell a dump from a
    /// [`RunReport`](crate::report::RunReport).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str("rqp-events-dump")),
            ("next_cursor", Json::num(self.next_cursor as f64)),
            ("gap", Json::num(self.gap as f64)),
            (
                "events",
                Json::Arr(
                    self.events
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("seq", Json::num(e.seq as f64)),
                                ("at", Json::num(e.at)),
                                ("query", Json::num(e.query as f64)),
                                ("kind", Json::str(&e.kind)),
                                ("detail", Json::str(&e.detail)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse an events-dump document produced by [`to_json`](Self::to_json).
    pub fn from_json(doc: &Json) -> Result<EventTail, String> {
        if doc.get("kind").and_then(Json::as_str) != Some("rqp-events-dump") {
            return Err("not an rqp-events-dump document".into());
        }
        let num = |j: &Json, key: &str| {
            j.get(key).and_then(Json::as_num).ok_or_else(|| format!("dump missing {key}"))
        };
        let events = doc
            .get("events")
            .and_then(Json::as_arr)
            .ok_or("dump missing events")?
            .iter()
            .map(|e| {
                Ok(RecordedEvent {
                    seq: num(e, "seq")? as u64,
                    at: num(e, "at")?,
                    query: num(e, "query")? as u64,
                    kind: e
                        .get("kind")
                        .and_then(Json::as_str)
                        .ok_or("event missing kind")?
                        .to_string(),
                    detail: e
                        .get("detail")
                        .and_then(Json::as_str)
                        .ok_or("event missing detail")?
                        .to_string(),
                })
            })
            .collect::<Result<Vec<RecordedEvent>, String>>()?;
        Ok(EventTail {
            events,
            next_cursor: num(doc, "next_cursor")? as u64,
            gap: num(doc, "gap")? as u64,
        })
    }
}

#[derive(Debug)]
struct RecorderState {
    ring: VecDeque<RecordedEvent>,
    next_seq: u64,
    dropped: u64,
}

/// Fixed-capacity ring buffer of [`RecordedEvent`]s. Cloning shares the
/// ring (`Arc`), so every subsystem holds its own handle.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    state: Arc<Mutex<RecorderState>>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            state: Arc::new(Mutex::new(RecorderState {
                ring: VecDeque::with_capacity(capacity),
                next_seq: 0,
                dropped: 0,
            })),
            capacity,
        }
    }

    fn inner(&self) -> std::sync::MutexGuard<'_, RecorderState> {
        self.state.lock().expect("flight recorder lock")
    }

    /// Publish one event, returning its sequence number. O(1); overwrites
    /// the oldest event (bumping the drop count) when the ring is full.
    pub fn publish(&self, at: f64, query: u64, kind: &str, detail: &str) -> u64 {
        let mut st = self.inner();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.ring.push_back(RecordedEvent {
            seq,
            at,
            query,
            kind: kind.to_string(),
            detail: detail.to_string(),
        });
        if st.ring.len() > self.capacity {
            st.ring.pop_front();
            st.dropped += 1;
        }
        seq
    }

    /// Events with `seq >= cursor`, at most `max` of them, plus the cursor
    /// to resume from and the count of requested-but-overwritten events.
    ///
    /// A `cursor` of 0 tails from the oldest retained event. A cursor past
    /// the end (`> next_seq`) is answered as if it were `next_seq`: no
    /// events, no gap. When more than `max` events are available the reply
    /// is truncated — `next_cursor` points at the first unreturned event,
    /// so the reader just polls again (truncation is *not* loss and adds
    /// nothing to `gap`).
    pub fn tail(&self, cursor: u64, max: usize) -> EventTail {
        let st = self.inner();
        let oldest = st.next_seq - st.ring.len() as u64;
        let cursor = cursor.min(st.next_seq);
        let gap = oldest.saturating_sub(cursor);
        let start = cursor.max(oldest);
        let events: Vec<RecordedEvent> = st
            .ring
            .iter()
            .skip((start - oldest) as usize)
            .take(max)
            .cloned()
            .collect();
        let next_cursor = events.last().map_or(st.next_seq, |e| e.seq + 1);
        EventTail { events, next_cursor, gap }
    }

    /// Sequence number the *next* published event will get — also the total
    /// number of events ever published.
    pub fn head(&self) -> u64 {
        self.inner().next_seq
    }

    /// Total events overwritten before any reader saw them leave the ring.
    pub fn dropped(&self) -> u64 {
        self.inner().dropped
    }

    /// The fixed ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.inner().ring.len()
    }

    /// True when nothing has been published (or everything aged out — the
    /// ring only shrinks by overwrite, so in practice: nothing published).
    pub fn is_empty(&self) -> bool {
        self.inner().ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn publish_and_tail_round_trip() {
        let rec = FlightRecorder::new(16);
        for i in 0..5 {
            let seq = rec.publish(i as f64, 42, "query.start", &format!("n{i}"));
            assert_eq!(seq, i);
        }
        let tail = rec.tail(0, 100);
        assert_eq!(tail.events.len(), 5);
        assert_eq!(tail.gap, 0);
        assert_eq!(tail.next_cursor, 5);
        assert_eq!(tail.events[3].seq, 3);
        assert_eq!(tail.events[3].detail, "n3");
        assert_eq!(tail.events[3].query, 42);
        // Resuming from the returned cursor sees nothing new.
        let again = rec.tail(tail.next_cursor, 100);
        assert!(again.events.is_empty());
        assert_eq!(again.gap, 0);
        assert_eq!(again.next_cursor, 5);
    }

    #[test]
    fn overwrite_accounts_every_dropped_event() {
        let rec = FlightRecorder::new(4);
        for i in 0..10 {
            rec.publish(0.0, 0, "e", &i.to_string());
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 6);
        assert_eq!(rec.head(), 10);
        // A fresh reader starting at 0 is told exactly what it missed.
        let tail = rec.tail(0, 100);
        assert_eq!(tail.gap, 6);
        let seqs: Vec<u64> = tail.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn cursor_tail_across_wraparound() {
        let rec = FlightRecorder::new(8);
        let mut cursor = 0u64;
        let mut seen: Vec<u64> = Vec::new();
        let mut gaps = 0u64;
        // Publish in bursts smaller than capacity while tailing: the reader
        // keeps up, so it must see every sequence number exactly once even
        // though the ring wraps many times.
        for burst in 0..20 {
            for i in 0..5 {
                rec.publish(burst as f64, 0, "e", &i.to_string());
            }
            let tail = rec.tail(cursor, 100);
            gaps += tail.gap;
            seen.extend(tail.events.iter().map(|e| e.seq));
            cursor = tail.next_cursor;
        }
        assert_eq!(gaps, 0, "reader kept up; no loss");
        assert_eq!(seen, (0..100).collect::<Vec<u64>>());

        // Now fall behind on purpose: publish 3x capacity, then tail.
        for i in 0..24 {
            rec.publish(0.0, 0, "e", &i.to_string());
        }
        let tail = rec.tail(cursor, 100);
        assert_eq!(tail.gap, 16, "24 published, 8 retained");
        assert_eq!(tail.events.len(), 8);
        assert_eq!(tail.events[0].seq, 116);
        assert_eq!(tail.next_cursor, 124);
    }

    #[test]
    fn truncated_tail_is_not_loss() {
        let rec = FlightRecorder::new(16);
        for _ in 0..10 {
            rec.publish(0.0, 0, "e", "");
        }
        let first = rec.tail(0, 4);
        assert_eq!(first.events.len(), 4);
        assert_eq!(first.gap, 0);
        assert_eq!(first.next_cursor, 4);
        let rest = rec.tail(first.next_cursor, 100);
        assert_eq!(rest.events.len(), 6);
        assert_eq!(rest.gap, 0);
    }

    #[test]
    fn bogus_future_cursor_is_clamped() {
        let rec = FlightRecorder::new(4);
        rec.publish(0.0, 0, "e", "");
        let tail = rec.tail(1_000_000, 10);
        assert!(tail.events.is_empty());
        assert_eq!(tail.gap, 0);
        assert_eq!(tail.next_cursor, 1);
    }

    #[test]
    fn events_dump_round_trips_through_json() {
        let rec = FlightRecorder::new(8);
        rec.publish(0.5, 3, "admission.admit", "running 1 of mpl 4");
        rec.publish(1.25, 3, "broker.grant", "0 -> 5000");
        for i in 0..10 {
            rec.publish(2.0, 0, "e", &i.to_string());
        }
        let tail = rec.tail(0, 100);
        assert!(tail.gap > 0, "ring wrapped");
        let text = tail.to_json().pretty();
        let back = EventTail::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, tail);
        // A run report (or any other object) is rejected by the marker.
        let not_a_dump = Json::obj(vec![("experiment", Json::str("a01"))]);
        assert!(EventTail::from_json(&not_a_dump).is_err());
    }

    #[test]
    fn concurrent_writers_never_lose_a_sequence_number() {
        // Property: with W writers publishing N events each into a ring big
        // enough to hold them all, every sequence number 0..W*N appears
        // exactly once and dropped == 0. With a *small* ring, the retained
        // seqs plus the drop count still account for every allocation.
        const W: usize = 8;
        const N: usize = 500;
        for capacity in [W * N, 64] {
            let rec = FlightRecorder::new(capacity);
            let handles: Vec<_> = (0..W)
                .map(|w| {
                    let rec = rec.clone();
                    std::thread::spawn(move || {
                        for i in 0..N {
                            rec.publish(i as f64, w as u64, "stress", "");
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(rec.head(), (W * N) as u64);
            let tail = rec.tail(0, W * N);
            let seqs: HashSet<u64> = tail.events.iter().map(|e| e.seq).collect();
            assert_eq!(seqs.len(), tail.events.len(), "no duplicate seqs");
            assert_eq!(
                tail.events.len() as u64 + rec.dropped(),
                (W * N) as u64,
                "retained + dropped accounts for every allocated seq (cap {capacity})"
            );
            // The retained tail is seq-contiguous and ends at head-1.
            let mut sorted: Vec<u64> = seqs.into_iter().collect();
            sorted.sort_unstable();
            for pair in sorted.windows(2) {
                assert_eq!(pair[1], pair[0] + 1, "tail is contiguous");
            }
            assert_eq!(sorted.last().copied(), Some((W * N - 1) as u64));
        }
    }
}
