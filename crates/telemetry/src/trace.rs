//! Assembling spans into a query trace tree and rendering it.
//!
//! Spans record only their parent id; this module recovers the tree shape
//! and renders it in the `EXPLAIN ANALYZE` style every engine operator
//! display descends from: one line per operator showing estimated vs actual
//! rows, q-error, cost-clock timings, grants and spills. Spans with no
//! parent are roots (a trace may have several — POP rounds, rejected eddy
//! probes), rendered in open order.

use crate::span::SpanSnapshot;
use std::fmt::Write as _;

/// A trace tree node: one span plus its children.
#[derive(Debug, Clone)]
pub struct TraceNode {
    /// The span at this node.
    pub span: SpanSnapshot,
    /// Child operators, in span-open order.
    pub children: Vec<TraceNode>,
}

/// The assembled trace of one query execution.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// Root operators, in span-open order.
    pub roots: Vec<TraceNode>,
}

impl TraceTree {
    /// Build the tree from a span list (as produced by
    /// [`Tracer::snapshot`](crate::span::Tracer::snapshot)). Spans whose
    /// parent id is missing from the list are treated as roots.
    pub fn assemble(spans: &[SpanSnapshot]) -> TraceTree {
        // children[i] = indices of spans whose parent is spans[i].
        let index_of = |id: usize| spans.iter().position(|s| s.id == id);
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match s.parent.and_then(index_of) {
                Some(p) if p != i => children[p].push(i),
                _ => roots.push(i),
            }
        }
        fn build(i: usize, spans: &[SpanSnapshot], children: &[Vec<usize>]) -> TraceNode {
            TraceNode {
                span: spans[i].clone(),
                children: children[i].iter().map(|&c| build(c, spans, children)).collect(),
            }
        }
        TraceTree { roots: roots.into_iter().map(|r| build(r, spans, &children)).collect() }
    }

    /// Total number of spans in the tree.
    pub fn len(&self) -> usize {
        fn count(n: &TraceNode) -> usize {
            1 + n.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Largest q-error across all spans with an estimate (NaN when none).
    pub fn max_q_error(&self) -> f64 {
        fn walk(n: &TraceNode, best: &mut f64) {
            let q = n.span.q_error();
            if !q.is_nan() && (best.is_nan() || q > *best) {
                *best = q;
            }
            n.children.iter().for_each(|c| walk(c, best));
        }
        let mut best = f64::NAN;
        self.roots.iter().for_each(|r| walk(r, &mut best));
        best
    }

    /// Render the tree `EXPLAIN ANALYZE`-style: one line per operator with
    /// box-drawing indentation, estimated vs actual rows, q-error, the
    /// self-time window on the cost clock, grants and spills.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let multi_root = self.roots.len() > 1;
        for root in &self.roots {
            render_node(root, if multi_root { "* " } else { "" }, true, true, &mut out);
        }
        out
    }
}

fn render_node(node: &TraceNode, prefix: &str, last: bool, is_root: bool, out: &mut String) {
    let s = &node.span;
    let connector = if is_root {
        prefix.to_string()
    } else if last {
        format!("{prefix}└─ ")
    } else {
        format!("{prefix}├─ ")
    };
    let mut line = format!("{connector}{}", s.kind);
    if !s.detail.is_empty() {
        let _ = write!(line, " [{}]", s.detail);
    }
    if s.est_rows.is_nan() {
        let _ = write!(line, "  rows={}", s.rows_out);
    } else {
        let _ = write!(
            line,
            "  rows={} (est={:.0}, q={:.2})",
            s.rows_out,
            s.est_rows,
            s.q_error()
        );
    }
    let _ = write!(line, "  open@{:.2}", s.opened_at);
    if !s.closed_at.is_nan() {
        let _ = write!(line, " close@{:.2}", s.closed_at);
    }
    if s.mem_granted > 0.0 {
        let _ = write!(line, "  grant={:.0}", s.mem_granted);
    }
    if s.spill_events > 0 {
        let _ = write!(line, "  spilled={:.0} rows/{} ev", s.spilled_rows, s.spill_events);
    }
    out.push_str(&line);
    out.push('\n');
    let child_prefix = if is_root {
        " ".repeat(prefix.chars().count())
    } else if last {
        format!("{prefix}   ")
    } else {
        format!("{prefix}│  ")
    };
    let n = node.children.len();
    for (i, child) in node.children.iter().enumerate() {
        render_node(child, &child_prefix, i + 1 == n, false, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;
    use rqp_common::CostClock;

    fn sample_spans() -> Vec<SpanSnapshot> {
        let clock = CostClock::default_clock();
        let tracer = Tracer::new();
        let join = tracer.open("hash_join", &clock);
        join.set_est_rows(500.0);
        let scan_l = tracer.open("table_scan", &clock);
        scan_l.set_detail("lineitem");
        scan_l.set_parent(join.id());
        scan_l.set_est_rows(1000.0);
        let scan_r = tracer.open("table_scan", &clock);
        scan_r.set_detail("orders");
        scan_r.set_parent(join.id());
        for _ in 0..100 {
            scan_l.produced(&clock);
        }
        for _ in 0..40 {
            scan_r.produced(&clock);
            join.produced(&clock);
        }
        clock.charge_seq_pages(7.0);
        scan_l.close(&clock);
        scan_r.close(&clock);
        join.close(&clock);
        tracer.snapshot()
    }

    #[test]
    fn assembles_parent_links_into_a_tree() {
        let tree = TraceTree::assemble(&sample_spans());
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.len(), 3);
        let root = &tree.roots[0];
        assert_eq!(root.span.kind, "hash_join");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].span.detail, "lineitem");
        assert_eq!(root.children[1].span.detail, "orders");
        // est 500 vs actual 40 on the join dominates (q = 12.5 > 10).
        assert!((tree.max_q_error() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn renders_explain_analyze_style() {
        let tree = TraceTree::assemble(&sample_spans());
        let text = tree.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("hash_join"), "{text}");
        assert!(lines[0].contains("rows=40 (est=500, q=12.50)"), "{text}");
        assert!(lines[1].contains("├─ table_scan [lineitem]"), "{text}");
        assert!(lines[2].contains("└─ table_scan [orders]"), "{text}");
        assert!(lines[2].contains("rows=40"), "{text}");
    }

    #[test]
    fn orphans_and_multiple_roots_render() {
        let clock = CostClock::default_clock();
        let tracer = Tracer::new();
        let a = tracer.open("round_0", &clock);
        let b = tracer.open("round_1", &clock);
        b.set_parent(9999); // Parent never collected: treated as a root.
        let c = tracer.open("scan", &clock);
        c.set_parent(a.id());
        let tree = TraceTree::assemble(&tracer.snapshot());
        assert_eq!(tree.roots.len(), 2);
        assert_eq!(tree.len(), 3);
        let text = tree.render();
        assert!(text.contains("* round_0"), "{text}");
        assert!(text.contains("* round_1"), "{text}");
    }

    #[test]
    fn self_parent_does_not_loop() {
        let clock = CostClock::default_clock();
        let tracer = Tracer::new();
        let a = tracer.open("weird", &clock);
        a.set_parent(a.id());
        let tree = TraceTree::assemble(&tracer.snapshot());
        assert_eq!(tree.len(), 1);
    }
}
