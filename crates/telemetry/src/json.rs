//! A dependency-free JSON value, writer and parser.
//!
//! The tier-1 gate builds with no network access, so serde is off the table;
//! run reports instead round-trip through this small [`Json`] enum. The
//! writer emits deterministic output (object keys keep insertion order), and
//! the parser is a plain recursive-descent implementation sufficient for
//! reading back what the writer produced — plus ordinary hand-written JSON.
//!
//! Numbers are `f64`. Non-finite values (NaN, ±inf) have no JSON encoding,
//! so the writer emits them as `null` and readers treat `null`-valued
//! numeric fields as NaN; this matches how spans use NaN for "never
//! happened" timestamps.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Wrap a string slice.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Wrap a number, mapping non-finite values to `null`.
    pub fn num(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(x)
        } else {
            Json::Null
        }
    }

    /// Look up a key in an object. `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, treating `null` as NaN (the writer's encoding of
    /// non-finite numbers). `None` for strings, bools, arrays, objects.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The bool value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns a description of the first error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Collect an object's pairs into a map (for order-insensitive checks).
    pub fn to_map(&self) -> Option<BTreeMap<&str, &Json>> {
        match self {
            Json::Obj(pairs) => Some(pairs.iter().map(|(k, v)| (k.as_str(), v)).collect()),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, 0);
        f.write_str(&out)
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        out.push_str(&format!("{}", x as i64));
    } else {
        // {:?} is Rust's shortest round-trippable float formatting.
        out.push_str(&format!("{x:?}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\r' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // char boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let doc = Json::obj(vec![
            ("name", Json::str("e01")),
            ("count", Json::num(42.0)),
            ("ratio", Json::num(0.125)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::num(1.0), Json::str("two"), Json::Bool(false)]),
            ),
            ("nested", Json::obj(vec![("empty_arr", Json::Arr(vec![]))])),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let doc = Json::obj(vec![("t", Json::num(f64::NAN)), ("u", Json::num(f64::INFINITY))]);
        let text = doc.to_string();
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        let back = Json::parse(&text).expect("parse");
        assert!(back.get("t").unwrap().as_num().unwrap().is_nan());
        assert!(back.get("u").unwrap().as_num().unwrap().is_nan());
    }

    #[test]
    fn escapes_round_trip() {
        let doc = Json::Str("a\"b\\c\nd\te — π".to_string());
        let back = Json::parse(&doc.to_string()).expect("parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_hand_written_json() {
        let back = Json::parse(
            r#" { "a" : [ 1 , -2.5e3 , true , null ] , "b" : { } , "c" : "xAy" } "#,
        )
        .expect("parse");
        let a = back.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[1].as_num(), Some(-2500.0));
        assert_eq!(a[2].as_bool(), Some(true));
        assert_eq!(a[3], Json::Null);
        assert_eq!(back.get("c").unwrap().as_str(), Some("xAy"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::num(42.0).to_string(), "42");
        assert_eq!(Json::num(0.5).to_string(), "0.5");
        assert_eq!(Json::num(-3.0).to_string(), "-3");
    }
}
