//! Operator spans: the per-operator unit of observation.
//!
//! A span is opened when an operator is constructed, bumped once per row the
//! operator produces, and closed when the operator exhausts. All positions
//! are **cost-clock readings** (the engine's deterministic notion of
//! response time), so span timings are exactly reproducible across runs.
//!
//! Handles are designed for inner loops: a [`SpanHandle`] is an `Arc` around
//! atomic fields, so [`SpanHandle::produced`] is a branch and two relaxed
//! stores — no allocation, no locking, no formatting. The expensive parts
//! (labels, tree assembly, rendering) happen once, at construction or
//! post-mortem. Since the exchange operators arrived, spans are `Send +
//! Sync`: worker pipelines trace into private [`Tracer`]s that the gather
//! side [`adopt`](Tracer::adopt)s into the query's main trace in worker
//! order, keeping trace contents deterministic under parallelism.

use rqp_common::sync::AtomicF64;
use rqp_common::CostClock;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A timestamped adaptive decision recorded on a span: a POP validity-range
/// violation, a LEO correction, an eddy routing shift, a governor-forced
/// spill. Events are the *why* behind the span's numbers — the moments the
/// engine changed its mind.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Cost-clock position when the decision fired.
    pub at: f64,
    /// Decision kind, e.g. `"pop.violation"` or `"eddy.reroute"`.
    pub kind: String,
    /// Free-form payload (old/new routing order, violated range, …).
    pub detail: String,
}

/// The observation record behind a [`SpanHandle`].
#[derive(Debug)]
pub struct SpanData {
    id: AtomicUsize,
    kind: &'static str,
    detail: Mutex<String>,
    /// Parent span id, or -1 for "no parent" (ids are tracer indices, so
    /// they always fit in an i64).
    parent: AtomicI64,
    est_rows: AtomicF64,
    rows_out: AtomicU64,
    opened_at: AtomicF64,
    first_row_at: AtomicF64,
    closed_at: AtomicF64,
    mem_granted: AtomicF64,
    spilled_rows: AtomicF64,
    spill_events: AtomicU64,
    events: Mutex<Vec<SpanEvent>>,
}

/// Cheap (`Arc`) handle to one operator's span.
#[derive(Debug, Clone)]
pub struct SpanHandle(Arc<SpanData>);

impl SpanHandle {
    /// Span id, unique within its [`Tracer`].
    pub fn id(&self) -> usize {
        self.0.id.load(Ordering::Relaxed)
    }

    /// Operator kind, e.g. `"hash_join"`.
    pub fn kind(&self) -> &'static str {
        self.0.kind
    }

    /// Free-form annotation (plan fingerprints, key columns, …).
    pub fn detail(&self) -> String {
        self.0.detail.lock().expect("span detail lock").clone()
    }

    /// Replace the annotation.
    pub fn set_detail(&self, detail: &str) {
        *self.0.detail.lock().expect("span detail lock") = detail.to_string();
    }

    /// Parent span id, if this operator feeds another instrumented operator.
    pub fn parent(&self) -> Option<usize> {
        match self.0.parent.load(Ordering::Relaxed) {
            p if p < 0 => None,
            p => Some(p as usize),
        }
    }

    /// Link this span under `parent_id`. Called by consuming operators on
    /// their inputs' spans — the plan tree emerges from construction order.
    pub fn set_parent(&self, parent_id: usize) {
        self.0.parent.store(parent_id as i64, Ordering::Relaxed);
    }

    /// The optimizer's row estimate for this operator (NaN = never set).
    pub fn est_rows(&self) -> f64 {
        self.0.est_rows.get()
    }

    /// Attach the optimizer's row estimate.
    pub fn set_est_rows(&self, est: f64) {
        self.0.est_rows.set(est);
    }

    /// Rows produced so far.
    pub fn rows(&self) -> u64 {
        self.0.rows_out.load(Ordering::Relaxed)
    }

    /// Record one produced row — the inner-loop hot path. The first row also
    /// stamps the clock position, so time-to-first-row is observable.
    #[inline]
    pub fn produced(&self, clock: &CostClock) {
        if self.0.rows_out.fetch_add(1, Ordering::Relaxed) == 0 {
            self.0.first_row_at.set_if_nan(clock.now());
        }
    }

    /// Record `n` produced rows at once (bulk transfers like an exchange
    /// gather); stamps time-to-first-row exactly like [`produced`](Self::produced).
    pub fn produced_n(&self, clock: &CostClock, n: u64) {
        if n == 0 {
            return;
        }
        if self.0.rows_out.fetch_add(n, Ordering::Relaxed) == 0 {
            self.0.first_row_at.set_if_nan(clock.now());
        }
    }

    /// Cost-clock position when the operator was constructed.
    pub fn opened_at(&self) -> f64 {
        self.0.opened_at.get()
    }

    /// Cost-clock position at the first produced row (NaN = no rows yet).
    pub fn first_row_at(&self) -> f64 {
        self.0.first_row_at.get()
    }

    /// Cost-clock position when the operator exhausted (NaN = still open).
    pub fn closed_at(&self) -> f64 {
        self.0.closed_at.get()
    }

    /// Mark the span closed at the clock's current position. Idempotent:
    /// only the first close is recorded (operators may see `next() == None`
    /// repeatedly).
    pub fn close(&self, clock: &CostClock) {
        self.0.closed_at.set_if_nan(clock.now());
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        !self.0.closed_at.get().is_nan()
    }

    /// Record a workspace-memory grant (rows). The span keeps the maximum
    /// grant observed — the operator's high-water memory footprint.
    pub fn record_grant(&self, rows: f64) {
        self.0.mem_granted.fetch_max(rows);
    }

    /// Largest memory grant observed (rows of workspace).
    pub fn mem_granted(&self) -> f64 {
        self.0.mem_granted.get()
    }

    /// Record a spill of `rows` rows to temp storage.
    pub fn record_spill(&self, rows: f64) {
        self.0.spilled_rows.add(rows);
        self.0.spill_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Total rows spilled.
    pub fn spilled_rows(&self) -> f64 {
        self.0.spilled_rows.get()
    }

    /// Number of spill events.
    pub fn spill_events(&self) -> u64 {
        self.0.spill_events.load(Ordering::Relaxed)
    }

    /// Record an adaptive decision at the clock's current position.
    pub fn record_event(&self, clock: &CostClock, kind: &str, detail: &str) {
        self.0.events.lock().expect("span events lock").push(SpanEvent {
            at: clock.now(),
            kind: kind.to_string(),
            detail: detail.to_string(),
        });
    }

    /// Adaptive decisions recorded so far, in firing order.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.0.events.lock().expect("span events lock").clone()
    }

    /// q-error of the estimate vs the observed actual: `max(est/act,
    /// act/est)` with both floored at one row. NaN when no estimate was set.
    pub fn q_error(&self) -> f64 {
        let est = self.0.est_rows.get();
        if est.is_nan() {
            return f64::NAN;
        }
        let est = est.max(1.0);
        let act = (self.rows() as f64).max(1.0);
        (est / act).max(act / est)
    }

    /// An owned, plain-data copy of the span's current state.
    pub fn snapshot(&self) -> SpanSnapshot {
        SpanSnapshot {
            id: self.id(),
            parent: self.parent(),
            kind: self.0.kind.to_string(),
            detail: self.detail(),
            est_rows: self.0.est_rows.get(),
            rows_out: self.rows(),
            opened_at: self.0.opened_at.get(),
            first_row_at: self.0.first_row_at.get(),
            closed_at: self.0.closed_at.get(),
            mem_granted: self.0.mem_granted.get(),
            spilled_rows: self.0.spilled_rows.get(),
            spill_events: self.spill_events(),
            events: self.events(),
        }
    }

    /// Rewrite the span id (tracer adoption only — ids must stay unique
    /// within the owning tracer).
    fn set_id(&self, id: usize) {
        self.0.id.store(id, Ordering::Relaxed);
    }

    /// Drop the parent link (tracer adoption of roots without a new parent).
    fn clear_parent(&self) {
        self.0.parent.store(-1, Ordering::Relaxed);
    }
}

/// An owned, immutable copy of a span — the run-report / rendering unit.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Span id (unique within the trace).
    pub id: usize,
    /// Parent span id.
    pub parent: Option<usize>,
    /// Operator kind.
    pub kind: String,
    /// Free-form annotation.
    pub detail: String,
    /// Optimizer estimate (NaN = none).
    pub est_rows: f64,
    /// Actual rows produced.
    pub rows_out: u64,
    /// Clock position at construction.
    pub opened_at: f64,
    /// Clock position at first row (NaN = none).
    pub first_row_at: f64,
    /// Clock position at exhaustion (NaN = never closed).
    pub closed_at: f64,
    /// High-water memory grant (rows).
    pub mem_granted: f64,
    /// Total spilled rows.
    pub spilled_rows: f64,
    /// Spill event count.
    pub spill_events: u64,
    /// Adaptive decisions, in firing order.
    pub events: Vec<SpanEvent>,
}

impl SpanSnapshot {
    /// q-error of the estimate (see [`SpanHandle::q_error`]).
    pub fn q_error(&self) -> f64 {
        if self.est_rows.is_nan() {
            return f64::NAN;
        }
        let est = self.est_rows.max(1.0);
        let act = (self.rows_out as f64).max(1.0);
        (est / act).max(act / est)
    }
}

#[derive(Debug, Default)]
struct TracerInner {
    spans: Mutex<Vec<SpanHandle>>,
}

/// Collects every span opened under one execution context.
///
/// Cloning shares the underlying collection (`Arc`), so the context, the
/// plan builder and the post-mortem consumers all see the same trace.
#[derive(Debug, Clone, Default)]
pub struct Tracer(Arc<TracerInner>);

impl Tracer {
    /// Fresh, empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Open a span of the given operator kind, stamped with the clock's
    /// current position.
    pub fn open(&self, kind: &'static str, clock: &CostClock) -> SpanHandle {
        let mut spans = self.0.spans.lock().expect("tracer lock");
        let handle = SpanHandle(Arc::new(SpanData {
            id: AtomicUsize::new(spans.len()),
            kind,
            detail: Mutex::new(String::new()),
            parent: AtomicI64::new(-1),
            est_rows: AtomicF64::new(f64::NAN),
            rows_out: AtomicU64::new(0),
            opened_at: AtomicF64::new(clock.now()),
            first_row_at: AtomicF64::new(f64::NAN),
            closed_at: AtomicF64::new(f64::NAN),
            mem_granted: AtomicF64::new(0.0),
            spilled_rows: AtomicF64::new(0.0),
            spill_events: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }));
        spans.push(handle.clone());
        handle
    }

    /// Number of spans opened so far.
    pub fn len(&self) -> usize {
        self.0.spans.lock().expect("tracer lock").len()
    }

    /// True when no spans have been opened.
    pub fn is_empty(&self) -> bool {
        self.0.spans.lock().expect("tracer lock").is_empty()
    }

    /// Snapshot every span (in open order).
    pub fn snapshot(&self) -> Vec<SpanSnapshot> {
        self.0
            .spans
            .lock()
            .expect("tracer lock")
            .iter()
            .map(|s| s.snapshot())
            .collect()
    }

    /// Live handles to every span (in open order).
    pub fn spans(&self) -> Vec<SpanHandle> {
        self.0.spans.lock().expect("tracer lock").clone()
    }

    /// Drop all spans collected so far (e.g. between POP rounds when only
    /// the final round should be reported).
    pub fn clear(&self) {
        self.0.spans.lock().expect("tracer lock").clear();
    }

    /// Move every span of `worker` into this tracer, re-identifying them
    /// past this tracer's current spans and re-parenting the worker trace's
    /// roots under `parent` (typically the exchange operator's span).
    ///
    /// This is the gather side of a parallel exchange: each worker traced
    /// into a private tracer, and the workers are adopted **in worker-index
    /// order**, so the merged trace is identical run-to-run regardless of
    /// thread scheduling. The worker tracer is drained.
    ///
    /// Worker span ids must be the contiguous `0..len` a fresh tracer
    /// assigns (guaranteed unless the worker tracer was `clear`ed
    /// mid-trace).
    pub fn adopt(&self, worker: &Tracer, parent: Option<usize>) {
        let moved: Vec<SpanHandle> =
            std::mem::take(&mut *worker.0.spans.lock().expect("tracer lock"));
        let mut spans = self.0.spans.lock().expect("tracer lock");
        let base = spans.len();
        // Re-parent before re-identifying: parent links hold *old* local ids.
        for s in &moved {
            match s.parent() {
                Some(p) => s.set_parent(base + p),
                None => match parent {
                    Some(pid) => s.set_parent(pid),
                    None => s.clear_parent(),
                },
            }
        }
        for (i, s) in moved.iter().enumerate() {
            s.set_id(base + i);
        }
        spans.extend(moved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_lifecycle() {
        let clock = CostClock::default_clock();
        let tracer = Tracer::new();
        clock.charge_seq_pages(2.0);
        let s = tracer.open("table_scan", &clock);
        assert_eq!(s.opened_at(), 2.0);
        assert!(s.first_row_at().is_nan());
        assert!(!s.is_closed());
        clock.charge_seq_pages(1.0);
        s.produced(&clock);
        s.produced(&clock);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.first_row_at(), 3.0);
        clock.charge_seq_pages(1.0);
        s.close(&clock);
        assert_eq!(s.closed_at(), 4.0);
        // Idempotent close.
        clock.charge_seq_pages(10.0);
        s.close(&clock);
        assert_eq!(s.closed_at(), 4.0);
    }

    #[test]
    fn parents_and_snapshots() {
        let clock = CostClock::default_clock();
        let tracer = Tracer::new();
        let parent = tracer.open("hash_join", &clock);
        let child = tracer.open("table_scan", &clock);
        child.set_parent(parent.id());
        child.set_detail("scan(t)");
        child.set_est_rows(100.0);
        for _ in 0..150 {
            child.produced(&clock);
        }
        let snaps = tracer.snapshot();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[1].parent, Some(parent.id()));
        assert_eq!(snaps[1].detail, "scan(t)");
        assert_eq!(snaps[1].rows_out, 150);
        assert!((snaps[1].q_error() - 1.5).abs() < 1e-12);
        assert!(snaps[0].q_error().is_nan(), "no estimate set");
    }

    #[test]
    fn grants_and_spills() {
        let clock = CostClock::default_clock();
        let tracer = Tracer::new();
        let s = tracer.open("sort", &clock);
        s.record_grant(500.0);
        s.record_grant(200.0);
        assert_eq!(s.mem_granted(), 500.0, "high-water grant");
        s.record_spill(1000.0);
        s.record_spill(250.0);
        assert_eq!(s.spilled_rows(), 1250.0);
        assert_eq!(s.spill_events(), 2);
    }

    #[test]
    fn events_are_timestamped_and_snapshotted() {
        let clock = CostClock::default_clock();
        let tracer = Tracer::new();
        let s = tracer.open("check", &clock);
        clock.charge_seq_pages(3.0);
        s.record_event(&clock, "pop.violation", "cp0 actual=500 range=[10,100]");
        clock.charge_seq_pages(2.0);
        s.record_event(&clock, "pop.violation", "cp1 actual=7 range=[10,100]");
        let events = s.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, 3.0);
        assert_eq!(events[0].kind, "pop.violation");
        assert_eq!(events[1].at, 5.0);
        let snap = s.snapshot();
        assert_eq!(snap.events, events, "snapshot carries the events");
    }

    #[test]
    fn q_error_floors_at_one_row() {
        let clock = CostClock::default_clock();
        let tracer = Tracer::new();
        let s = tracer.open("filter", &clock);
        s.set_est_rows(0.001);
        // Zero actual rows, near-zero estimate: q-error is 1, not inf.
        assert_eq!(s.q_error(), 1.0);
    }

    #[test]
    fn tracer_clear() {
        let clock = CostClock::default_clock();
        let tracer = Tracer::new();
        tracer.open("a", &clock);
        tracer.open("b", &clock);
        assert_eq!(tracer.len(), 2);
        tracer.clear();
        assert!(tracer.is_empty());
        // Ids restart from zero after a clear.
        assert_eq!(tracer.open("c", &clock).id(), 0);
    }

    #[test]
    fn produced_n_bulk_counts_and_stamps_first_row() {
        let clock = CostClock::default_clock();
        let tracer = Tracer::new();
        let s = tracer.open("gather", &clock);
        clock.charge_seq_pages(1.0);
        s.produced_n(&clock, 0);
        assert!(s.first_row_at().is_nan(), "zero rows is not a first row");
        s.produced_n(&clock, 40);
        assert_eq!(s.rows(), 40);
        assert_eq!(s.first_row_at(), 1.0);
        clock.charge_seq_pages(1.0);
        s.produced_n(&clock, 2);
        assert_eq!(s.rows(), 42);
        assert_eq!(s.first_row_at(), 1.0, "first-row mark is sticky");
    }

    #[test]
    fn adopt_reids_and_reparents_worker_spans() {
        let clock = CostClock::default_clock();
        let main = Tracer::new();
        let exchange = main.open("exchange", &clock);
        let extra = main.open("other_root", &clock);
        let worker = Tracer::new();
        let w_root = worker.open("sort", &clock);
        let w_child = worker.open("table_scan", &clock);
        w_child.set_parent(w_root.id());
        main.adopt(&worker, Some(exchange.id()));
        assert!(worker.is_empty(), "worker tracer drained");
        assert_eq!(main.len(), 4);
        let snaps = main.snapshot();
        assert_eq!(snaps[2].kind, "sort");
        assert_eq!(snaps[2].id, 2);
        assert_eq!(snaps[2].parent, Some(exchange.id()), "root under exchange");
        assert_eq!(snaps[3].kind, "table_scan");
        assert_eq!(snaps[3].parent, Some(2), "child link remapped");
        assert_eq!(extra.id(), 1, "existing spans untouched");
        // Adoption without a parent leaves roots as roots.
        let worker2 = Tracer::new();
        worker2.open("scan", &clock);
        main.adopt(&worker2, None);
        assert_eq!(main.snapshot()[4].parent, None);
    }

    #[test]
    fn spans_cross_threads() {
        let clock = CostClock::default_clock();
        let tracer = Tracer::new();
        let s = tracer.open("parallel_filter", &clock);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                let clock = std::sync::Arc::clone(&clock);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        s.produced(&clock);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.rows(), 2000, "no lost updates");
    }
}
