//! # rqp-telemetry
//!
//! The runtime observability substrate. Every robustness mechanism in the
//! seminar is a feedback loop over *observed* execution behavior — POP
//! compares actual cardinalities against validity ranges, LEO learns from
//! per-node actuals, Rio's validity boxes need live counters — and
//! "Visualizing the robustness of query execution" (Graefe/Kuno/Wiener)
//! argues robustness work starts from making that behavior visible. This
//! crate is the one place it all flows through:
//!
//! * [`span`] — **operator spans**: lightweight per-operator records
//!   (estimated vs actual rows, open/first-row/close positions on the cost
//!   clock, memory grants, spill volume) collected by a [`Tracer`]. Handles
//!   are `Rc`-backed with `Cell` fields, so bumping a span in an operator's
//!   inner loop is a single unsynchronized store — no allocation, no
//!   locking;
//! * [`metrics`] — a **metrics registry** of named counters, gauges and
//!   log-scale histograms, with the same cheap-handle discipline;
//! * [`recorder`] — the **flight recorder**: a fixed-capacity ring of
//!   sequenced service events (admission, broker, pager, lifecycle) with
//!   overwrite-with-gap-counting semantics, tailable live by a cursor;
//! * [`trace`] — assembles spans into a **query trace tree** and renders it
//!   `EXPLAIN ANALYZE`-style;
//! * [`report`] — **structured run reports**: a JSON document per
//!   experiment run (cost breakdown, trace, metrics, RNG seeds,
//!   adaptive-decision events) that the bench harness writes to
//!   `exp_output/`, diffable across commits;
//! * [`scoreboard`] — folds a directory of run reports into one
//!   cross-run **scoreboard** of the paper metrics (M1/M3, smoothness,
//!   intrinsic/extrinsic variability), with a thresholded diff — the CI
//!   regression gate behind `rqp-report diff`;
//! * [`json`] — the dependency-free JSON value type, writer and parser the
//!   reports round-trip through.

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod scoreboard;
pub mod span;
pub mod trace;

pub use json::Json;
pub use metrics::{
    bucket_quantile, Counter, Gauge, Histogram, MetricValue, MetricsRegistry, MetricsSnapshot,
};
pub use recorder::{EventTail, FlightRecorder, RecordedEvent};
pub use report::RunReport;
pub use scoreboard::{DiffThresholds, Regression, Scoreboard, ScoreboardEntry};
pub use span::{SpanEvent, SpanHandle, SpanSnapshot, Tracer};
pub use trace::{TraceNode, TraceTree};
