//! Structured run reports.
//!
//! A [`RunReport`] is the JSON document an experiment run leaves behind in
//! `exp_output/`: which experiment, which configuration, the cost-clock
//! breakdown, the full span list (from which the trace tree is
//! reconstructible), and every metric. Reports are deterministic — same
//! seed, same report — so they diff cleanly across commits, which is the
//! regression-detection story for the robustness experiments.

use crate::json::Json;
use crate::metrics::{bucket_quantile, MetricValue, MetricsSnapshot};
use crate::span::{SpanEvent, SpanSnapshot};
use crate::trace::TraceTree;
use rqp_common::CostBreakdown;
use std::io;
use std::path::{Path, PathBuf};

/// Schema version stamped into every report; bump on breaking changes.
///
/// * v1 — config, cost breakdown, spans, metrics.
/// * v2 — adds `rng` seed streams, per-span `events`, and histogram
///   p50/p95/p99 quantile bounds.
pub const SCHEMA_VERSION: u32 = 2;

/// Everything one experiment run leaves behind.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Experiment name, e.g. `"e01_pop_aggregate"`.
    pub experiment: String,
    /// Configuration labels, e.g. `[("mode", "fast"), ("seed", "42")]`.
    pub config: Vec<(String, String)>,
    /// Every named RNG stream the run drew from, as `(stream, seed)` — the
    /// report alone is enough to reproduce the run.
    pub rng: Vec<(String, u64)>,
    /// Final cost-clock breakdown.
    pub cost: CostBreakdown,
    /// Every span collected during the run, in open order.
    pub spans: Vec<SpanSnapshot>,
    /// Every metric, in registration order.
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// A report with the given name and no observations yet.
    pub fn new(experiment: &str) -> RunReport {
        RunReport {
            experiment: experiment.to_string(),
            config: Vec::new(),
            rng: Vec::new(),
            cost: CostBreakdown::default(),
            spans: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Add a configuration label.
    pub fn with_config(mut self, key: &str, value: &str) -> RunReport {
        self.config.push((key.to_string(), value.to_string()));
        self
    }

    /// Record a named RNG stream's seed.
    pub fn with_seed(mut self, stream: &str, seed: u64) -> RunReport {
        self.rng.push((stream.to_string(), seed));
        self
    }

    /// Every adaptive-decision event across all spans, as
    /// `(span_id, event)`, ordered by firing position on the cost clock.
    pub fn events(&self) -> Vec<(usize, SpanEvent)> {
        let mut all: Vec<(usize, SpanEvent)> = self
            .spans
            .iter()
            .flat_map(|s| s.events.iter().map(move |e| (s.id, e.clone())))
            .collect();
        all.sort_by(|a, b| a.1.at.total_cmp(&b.1.at).then(a.0.cmp(&b.0)));
        all
    }

    /// The trace tree assembled from the report's spans.
    pub fn trace(&self) -> TraceTree {
        TraceTree::assemble(&self.spans)
    }

    /// Serialize to a [`Json`] document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::num(SCHEMA_VERSION as f64)),
            ("experiment", Json::str(&self.experiment)),
            (
                "config",
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::str(v)))
                        .collect(),
                ),
            ),
            (
                "rng",
                Json::Obj(
                    self.rng
                        .iter()
                        // Seeds are serialized as strings: u64 values (e.g.
                        // from child_seed) exceed f64's integer range, and a
                        // recorded seed that lost its low bits could not
                        // reproduce the run.
                        .map(|(stream, seed)| (stream.clone(), Json::str(&seed.to_string())))
                        .collect(),
                ),
            ),
            (
                "cost",
                Json::obj(vec![
                    ("seq_io", Json::num(self.cost.seq_io)),
                    ("rand_io", Json::num(self.cost.rand_io)),
                    ("cpu", Json::num(self.cost.cpu)),
                    ("spill", Json::num(self.cost.spill)),
                    ("total", Json::num(self.cost.total())),
                ]),
            ),
            (
                "spans",
                Json::Arr(self.spans.iter().map(span_to_json).collect()),
            ),
            (
                "metrics",
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(name, v)| (name.clone(), metric_to_json(v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a report back from JSON text. Reports errors for malformed
    /// documents, wrong schema versions and missing fields.
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let doc = Json::parse(text)?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_num)
            .ok_or("missing schema_version")?;
        if version as u32 != SCHEMA_VERSION {
            return Err(format!(
                "schema version {version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let experiment = doc
            .get("experiment")
            .and_then(Json::as_str)
            .ok_or("missing experiment")?
            .to_string();
        let config = match doc.get("config") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    Ok((
                        k.clone(),
                        v.as_str().ok_or("non-string config value")?.to_string(),
                    ))
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("missing config".to_string()),
        };
        let rng = match doc.get("rng") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(stream, v)| {
                    let seed = v
                        .as_str()
                        .ok_or("non-string rng seed")?
                        .parse::<u64>()
                        .map_err(|e| format!("bad rng seed for {stream}: {e}"))?;
                    Ok((stream.clone(), seed))
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("missing rng".to_string()),
        };
        let cost_doc = doc.get("cost").ok_or("missing cost")?;
        let cost_field = |key: &str| -> Result<f64, String> {
            cost_doc
                .get(key)
                .and_then(Json::as_num)
                .ok_or(format!("missing cost.{key}"))
        };
        let cost = CostBreakdown {
            seq_io: cost_field("seq_io")?,
            rand_io: cost_field("rand_io")?,
            cpu: cost_field("cpu")?,
            spill: cost_field("spill")?,
        };
        let spans = doc
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or("missing spans")?
            .iter()
            .map(span_from_json)
            .collect::<Result<Vec<_>, String>>()?;
        let metrics = match doc.get("metrics") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(name, v)| Ok((name.clone(), metric_from_json(v)?)))
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("missing metrics".to_string()),
        };
        Ok(RunReport { experiment, config, rng, cost, spans, metrics })
    }

    /// Write the report to `<dir>/<experiment>.json`, creating the
    /// directory if needed. Returns the path written.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.experiment));
        std::fs::write(&path, self.to_json().pretty())?;
        Ok(path)
    }
}

fn span_to_json(s: &SpanSnapshot) -> Json {
    Json::obj(vec![
        ("id", Json::num(s.id as f64)),
        (
            "parent",
            s.parent.map_or(Json::Null, |p| Json::num(p as f64)),
        ),
        ("kind", Json::str(&s.kind)),
        ("detail", Json::str(&s.detail)),
        ("est_rows", Json::num(s.est_rows)),
        ("rows_out", Json::num(s.rows_out as f64)),
        ("opened_at", Json::num(s.opened_at)),
        ("first_row_at", Json::num(s.first_row_at)),
        ("closed_at", Json::num(s.closed_at)),
        ("mem_granted", Json::num(s.mem_granted)),
        ("spilled_rows", Json::num(s.spilled_rows)),
        ("spill_events", Json::num(s.spill_events as f64)),
        (
            "events",
            Json::Arr(
                s.events
                    .iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("at", Json::num(e.at)),
                            ("kind", Json::str(&e.kind)),
                            ("detail", Json::str(&e.detail)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn span_from_json(doc: &Json) -> Result<SpanSnapshot, String> {
    let num = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Json::as_num)
            .ok_or(format!("span missing {key}"))
    };
    let text = |key: &str| -> Result<String, String> {
        doc.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or(format!("span missing {key}"))
    };
    let events = doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("span missing events")?
        .iter()
        .map(|e| {
            Ok(SpanEvent {
                at: e.get("at").and_then(Json::as_num).ok_or("event missing at")?,
                kind: e
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("event missing kind")?
                    .to_string(),
                detail: e
                    .get("detail")
                    .and_then(Json::as_str)
                    .ok_or("event missing detail")?
                    .to_string(),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    // `parent: null` decodes through as_num as NaN; map it back to None.
    let parent = num("parent")?;
    Ok(SpanSnapshot {
        id: num("id")? as usize,
        parent: if parent.is_nan() { None } else { Some(parent as usize) },
        kind: text("kind")?,
        detail: text("detail")?,
        est_rows: num("est_rows")?,
        rows_out: num("rows_out")? as u64,
        opened_at: num("opened_at")?,
        first_row_at: num("first_row_at")?,
        closed_at: num("closed_at")?,
        mem_granted: num("mem_granted")?,
        spilled_rows: num("spilled_rows")?,
        spill_events: num("spill_events")? as u64,
        events,
    })
}

fn metric_to_json(v: &MetricValue) -> Json {
    match v {
        MetricValue::Counter(n) => Json::obj(vec![
            ("type", Json::str("counter")),
            ("value", Json::num(*n as f64)),
        ]),
        MetricValue::Gauge(x) => Json::obj(vec![
            ("type", Json::str("gauge")),
            ("value", Json::num(*x)),
        ]),
        MetricValue::Histogram { count, sum, max, buckets } => Json::obj(vec![
            ("type", Json::str("histogram")),
            ("count", Json::num(*count as f64)),
            ("sum", Json::num(*sum)),
            ("max", Json::num(*max)),
            // Quantile bounds are derived from the buckets at serialization
            // time (never parsed back), so round-trips stay byte-stable.
            ("p50", Json::num(bucket_quantile(buckets, 0.50))),
            ("p95", Json::num(bucket_quantile(buckets, 0.95))),
            ("p99", Json::num(bucket_quantile(buckets, 0.99))),
            (
                "buckets",
                Json::Arr(
                    buckets
                        .iter()
                        .map(|&(le, c)| {
                            Json::obj(vec![
                                ("le", Json::num(le)),
                                ("count", Json::num(c as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

fn metric_from_json(doc: &Json) -> Result<MetricValue, String> {
    let kind = doc
        .get("type")
        .and_then(Json::as_str)
        .ok_or("metric missing type")?;
    let num = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Json::as_num)
            .ok_or(format!("metric missing {key}"))
    };
    match kind {
        "counter" => Ok(MetricValue::Counter(num("value")? as u64)),
        "gauge" => Ok(MetricValue::Gauge(num("value")?)),
        "histogram" => {
            let buckets = doc
                .get("buckets")
                .and_then(Json::as_arr)
                .ok_or("histogram missing buckets")?
                .iter()
                .map(|b| {
                    let le = b.get("le").and_then(Json::as_num).ok_or("bucket missing le")?;
                    let c = b
                        .get("count")
                        .and_then(Json::as_num)
                        .ok_or("bucket missing count")?;
                    Ok((le, c as u64))
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(MetricValue::Histogram {
                count: num("count")? as u64,
                sum: num("sum")?,
                max: num("max")?,
                buckets,
            })
        }
        other => Err(format!("unknown metric type {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::span::Tracer;
    use rqp_common::CostClock;

    fn sample_report() -> RunReport {
        let clock = CostClock::default_clock();
        let tracer = Tracer::new();
        let reg = MetricsRegistry::new();
        let join = tracer.open("hash_join", &clock);
        join.set_est_rows(500.0);
        let scan = tracer.open("table_scan", &clock);
        scan.set_parent(join.id());
        scan.set_detail("lineitem");
        clock.charge_seq_rows(1000.0);
        for _ in 0..1000 {
            scan.produced(&clock);
        }
        for _ in 0..420 {
            join.produced(&clock);
        }
        join.record_grant(256.0);
        join.record_spill(128.0);
        join.record_event(&clock, "pop.violation", "cp0 actual=420 range=[450,550]");
        scan.close(&clock);
        join.close(&clock);
        reg.counter("pop.replans").add(2);
        reg.gauge("governor.outstanding").set(64.0);
        reg.histogram("leo.q_error").observe(3.5);
        let mut report = RunReport::new("e99_round_trip")
            .with_config("mode", "fast")
            .with_config("seed", "42")
            .with_seed("workload", 42)
            .with_seed("noise", 1234);
        report.cost = clock.breakdown();
        report.spans = tracer.snapshot();
        report.metrics = reg.snapshot();
        report
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let report = sample_report();
        let text = report.to_json().pretty();
        let back = RunReport::from_json(&text).expect("parse");
        // NaN fields (first_row_at on spans that produced no rows, etc.)
        // break PartialEq; compare a NaN-free projection plus re-serialized
        // text, which must be identical byte-for-byte.
        assert_eq!(back.experiment, report.experiment);
        assert_eq!(back.config, report.config);
        assert_eq!(back.rng, report.rng);
        assert_eq!(back.cost, report.cost);
        assert_eq!(back.metrics, report.metrics);
        assert_eq!(back.spans.len(), report.spans.len());
        assert_eq!(back.spans[0].events, report.spans[0].events);
        assert_eq!(back.to_json().pretty(), text);
    }

    #[test]
    fn events_listing_is_clock_ordered() {
        let report = sample_report();
        let events = report.events();
        assert_eq!(events.len(), 1);
        let (span_id, ev) = &events[0];
        assert_eq!(*span_id, 0, "event fired on the join span");
        assert_eq!(ev.kind, "pop.violation");
    }

    #[test]
    fn histogram_json_carries_quantile_bounds() {
        let report = sample_report();
        let doc = report.to_json();
        let hist = doc.get("metrics").and_then(|m| m.get("leo.q_error")).expect("histogram");
        assert_eq!(hist.get("p50").and_then(Json::as_num), Some(4.0));
        assert_eq!(hist.get("p99").and_then(Json::as_num), Some(4.0));
    }

    #[test]
    fn report_exposes_trace_tree() {
        let report = sample_report();
        let tree = report.trace();
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].span.kind, "hash_join");
        assert_eq!(tree.roots[0].children[0].span.detail, "lineitem");
        assert!(tree.render().contains("grant=256"));
    }

    #[test]
    fn schema_version_is_checked() {
        let report = sample_report();
        let text = report
            .to_json()
            .pretty()
            .replace("\"schema_version\": 2", "\"schema_version\": 999");
        let err = RunReport::from_json(&text).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn writes_file_named_after_experiment() {
        let dir = std::env::temp_dir().join("rqp_telemetry_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let report = sample_report();
        let path = report.write_to(&dir).expect("write");
        assert!(path.ends_with("e99_round_trip.json"));
        let text = std::fs::read_to_string(&path).expect("read");
        let back = RunReport::from_json(&text).expect("parse");
        assert_eq!(back.experiment, "e99_round_trip");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_fields_are_reported() {
        assert!(RunReport::from_json("{}").unwrap_err().contains("schema_version"));
        let no_spans = r#"{"schema_version":2,"experiment":"x","config":{},"rng":{},
            "cost":{"seq_io":0,"rand_io":0,"cpu":0,"spill":0,"total":0},"metrics":{}}"#;
        assert!(RunReport::from_json(no_spans).unwrap_err().contains("spans"));
        let no_rng = r#"{"schema_version":2,"experiment":"x","config":{},
            "cost":{"seq_io":0,"rand_io":0,"cpu":0,"spill":0,"total":0},
            "spans":[],"metrics":{}}"#;
        assert!(RunReport::from_json(no_rng).unwrap_err().contains("rng"));
    }
}
