//! Named counters, gauges and log-scale histograms.
//!
//! Where spans describe the *plan tree*, metrics describe everything else:
//! POP re-plan counts, LEO adjustment magnitudes, governor grant traffic,
//! eddy routing decisions. A [`MetricsRegistry`] hands out `Arc`-backed
//! handles ([`Counter`], [`Gauge`], [`Histogram`]) that are cheap enough to
//! bump per tuple — counters and gauges are single atomics, so exchange
//! workers on other threads share them freely; registering the same name
//! twice returns a handle to the same underlying instrument, so call sites
//! don't need to coordinate.

use rqp_common::sync::AtomicF64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing count.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (e.g. outstanding memory grants).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicF64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, x: f64) {
        self.0.set(x);
    }

    /// Add `dx` (may be negative).
    #[inline]
    pub fn add(&self, dx: f64) {
        self.0.add(dx);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// Number of power-of-two buckets a [`Histogram`] keeps (values up to 2^63).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log2-bucketed histogram of non-negative values.
///
/// Bucket `i` counts observations `v` with `floor(log2(max(v,1))) == i`
/// (bucket 0 holds 0 and 1). Log-scale buckets match how cardinality and
/// q-error facts are analyzed in the robustness literature: what matters is
/// the order of magnitude, and the full range fits in 64 fixed slots with no
/// allocation per observation.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<Mutex<HistogramData>>);

#[derive(Debug)]
struct HistogramData {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(Mutex::new(HistogramData {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            max: 0.0,
        })))
    }
}

impl Histogram {
    fn inner(&self) -> std::sync::MutexGuard<'_, HistogramData> {
        self.0.lock().expect("histogram lock")
    }

    /// Record one observation. Negative and NaN values clamp to zero.
    pub fn observe(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        let idx = (v.max(1.0).log2().floor() as usize).min(HISTOGRAM_BUCKETS - 1);
        let mut h = self.inner();
        h.buckets[idx] += 1;
        h.count += 1;
        h.sum += v;
        if v > h.max {
            h.max = v;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner().count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.inner().sum
    }

    /// Mean of observations (NaN when empty).
    pub fn mean(&self) -> f64 {
        let h = self.inner();
        if h.count == 0 {
            f64::NAN
        } else {
            h.sum / h.count as f64
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        self.inner().max
    }

    /// Upper bound of the bucket containing the q-quantile (by bucket
    /// counts). An order-of-magnitude answer, which is what log buckets can
    /// give; NaN when empty.
    pub fn quantile_bound(&self, q: f64) -> f64 {
        let h = self.inner();
        if h.count == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 1.0) * h.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (1u64 << (i + 1).min(63)) as f64;
            }
        }
        f64::NAN
    }

    /// Median bound: upper bound of the bucket holding the 50th percentile.
    pub fn p50(&self) -> f64 {
        self.quantile_bound(0.50)
    }

    /// Upper bound of the bucket holding the 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile_bound(0.95)
    }

    /// Upper bound of the bucket holding the 99th percentile — the
    /// robustness literature's tail of interest.
    pub fn p99(&self) -> f64 {
        self.quantile_bound(0.99)
    }

    /// Upper bound of the bucket holding the 99.9th percentile — the live
    /// dashboard's extreme tail.
    pub fn p999(&self) -> f64 {
        self.quantile_bound(0.999)
    }

    /// The non-empty buckets as `(bucket_upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.inner()
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| ((1u64 << (i + 1).min(63)) as f64, c))
            .collect()
    }
}

/// Quantile bound computed from snapshotted `(bucket_upper_bound, count)`
/// pairs — the same answer [`Histogram::quantile_bound`] gives on the live
/// instrument, available after the instrument is gone (report JSON,
/// scoreboards). NaN when empty.
pub fn bucket_quantile(buckets: &[(f64, u64)], q: f64) -> f64 {
    let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return f64::NAN;
    }
    let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for &(le, c) in buckets {
        seen += c;
        if seen >= target {
            return le;
        }
    }
    f64::NAN
}

/// One instrument's state, snapshotted for reporting.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's count.
    Counter(u64),
    /// A gauge's value.
    Gauge(f64),
    /// A histogram, as `(count, sum, max, nonzero buckets)`.
    Histogram {
        /// Observation count.
        count: u64,
        /// Observation sum.
        sum: f64,
        /// Largest observation.
        max: f64,
        /// Non-empty `(bucket_upper_bound, count)` pairs.
        buckets: Vec<(f64, u64)>,
    },
}

/// Named snapshot of every instrument in a registry, in registration order.
pub type MetricsSnapshot = Vec<(String, MetricValue)>;

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The home of every named instrument for one execution context.
///
/// Cloning shares the underlying table (`Arc`), so every subsystem — and
/// every exchange worker — can hold its own registry handle and the run
/// report still sees one namespace.
#[derive(Clone, Default)]
pub struct MetricsRegistry(Arc<Mutex<Vec<(String, Instrument)>>>);

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MetricsRegistry({} instruments)", self.len())
    }
}

impl MetricsRegistry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn table(&self) -> std::sync::MutexGuard<'_, Vec<(String, Instrument)>> {
        self.0.lock().expect("metrics registry lock")
    }

    /// The counter named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut table = self.table();
        if let Some((_, inst)) = table.iter().find(|(n, _)| n == name) {
            match inst {
                Instrument::Counter(c) => return c.clone(),
                _ => panic!("metric {name:?} is not a counter"),
            }
        }
        let c = Counter::default();
        table.push((name.to_string(), Instrument::Counter(c.clone())));
        c
    }

    /// The gauge named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut table = self.table();
        if let Some((_, inst)) = table.iter().find(|(n, _)| n == name) {
            match inst {
                Instrument::Gauge(g) => return g.clone(),
                _ => panic!("metric {name:?} is not a gauge"),
            }
        }
        let g = Gauge::default();
        table.push((name.to_string(), Instrument::Gauge(g.clone())));
        g
    }

    /// The histogram named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut table = self.table();
        if let Some((_, inst)) = table.iter().find(|(n, _)| n == name) {
            match inst {
                Instrument::Histogram(h) => return h.clone(),
                _ => panic!("metric {name:?} is not a histogram"),
            }
        }
        let h = Histogram::default();
        table.push((name.to_string(), Instrument::Histogram(h.clone())));
        h
    }

    /// Snapshot every instrument, in registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.table()
            .iter()
            .map(|(name, inst)| {
                let value = match inst {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                        buckets: h.nonzero_buckets(),
                    },
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.table().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.table().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("pop.replans");
        let b = reg.counter("pop.replans");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn gauges_move_both_ways() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("governor.outstanding");
        g.set(100.0);
        g.add(-30.0);
        assert_eq!(g.get(), 70.0);
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        let h = Histogram::default();
        for v in [0.0, 1.0, 3.0, 1000.0, -5.0, f64::NAN] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1000.0);
        assert!((h.sum() - 1004.0).abs() < 1e-9);
        let buckets = h.nonzero_buckets();
        // 0,1,-5,NaN land in bucket 0 (bound 2); 3 in bucket 1 (bound 4);
        // 1000 in bucket 9 (bound 1024).
        assert_eq!(buckets, vec![(2.0, 4), (4.0, 1), (1024.0, 1)]);
    }

    #[test]
    fn quantile_bound_is_order_of_magnitude() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.observe(1.0);
        }
        for _ in 0..10 {
            h.observe(1000.0);
        }
        assert_eq!(h.quantile_bound(0.5), 2.0);
        assert_eq!(h.quantile_bound(0.99), 1024.0);
        assert_eq!(h.p50(), 2.0);
        assert_eq!(h.p95(), 1024.0);
        assert_eq!(h.p99(), 1024.0);
        let empty = Histogram::default();
        assert!(empty.quantile_bound(0.5).is_nan());
        assert!(empty.mean().is_nan());
    }

    #[test]
    fn bucket_quantile_matches_live_instrument() {
        let h = Histogram::default();
        for v in [1.0, 3.0, 9.0, 100.0, 100.0, 4096.0] {
            h.observe(v);
        }
        let buckets = h.nonzero_buckets();
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(bucket_quantile(&buckets, q), h.quantile_bound(q), "q={q}");
        }
        assert!(bucket_quantile(&[], 0.5).is_nan());
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.gauge("x");
        reg.counter("x");
    }

    #[test]
    fn snapshot_preserves_registration_order() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last");
        reg.gauge("a.first");
        reg.histogram("m.mid").observe(5.0);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["z.last", "a.first", "m.mid"]);
        match &snap[2].1 {
            MetricValue::Histogram { count, .. } => assert_eq!(*count, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn instruments_shared_across_threads() {
        let reg = MetricsRegistry::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let c = reg.counter("workers.rows");
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("workers.rows").get(), 4000);
        assert_eq!(reg.len(), 1, "all threads shared one instrument");
    }
}
