//! Shared (circular) scans.
//!
//! The seminar's "robust execution algorithms" session lists *shared &
//! coordinated scans* as a robustness technique: many concurrent scan-heavy
//! queries attach to one continuously rotating scan cursor (QPipe, Crescando
//! "clock scan") instead of each thrashing the I/O path. The
//! [`SharedScanCoordinator`] is a deterministic discrete simulator over page
//! units: queries attach at arrival times, ride the cursor one full rotation,
//! and detach. It reports per-query completion times and total I/O for the
//! shared policy vs naive independent scans — the input to the mixed-workload
//! experiments.

/// One scan query's outcome under the shared policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanOutcome {
    /// Arrival time (in page-read units).
    pub arrival: f64,
    /// Completion time.
    pub completion: f64,
    /// Response time (completion − arrival).
    pub response: f64,
}

/// Result of simulating a batch of scan queries.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedScanReport {
    /// Per-query outcomes under the shared circular scan.
    pub shared: Vec<ScanOutcome>,
    /// Per-query outcomes when each query scans independently but queues on
    /// one I/O channel (FIFO).
    pub independent: Vec<ScanOutcome>,
    /// Total pages read by the shared scan.
    pub shared_pages: f64,
    /// Total pages read by independent scans.
    pub independent_pages: f64,
}

impl SharedScanReport {
    /// Mean response under the shared policy.
    pub fn shared_mean_response(&self) -> f64 {
        mean(self.shared.iter().map(|o| o.response))
    }

    /// Mean response under independent scans.
    pub fn independent_mean_response(&self) -> f64 {
        mean(self.independent.iter().map(|o| o.response))
    }

    /// I/O saved by sharing, as a fraction of independent I/O.
    pub fn io_savings(&self) -> f64 {
        if self.independent_pages == 0.0 {
            0.0
        } else {
            1.0 - self.shared_pages / self.independent_pages
        }
    }
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Deterministic simulator for shared vs independent scans.
#[derive(Debug, Clone)]
pub struct SharedScanCoordinator {
    table_pages: f64,
}

impl SharedScanCoordinator {
    /// A coordinator over a table of `table_pages` pages.
    pub fn new(table_pages: f64) -> Self {
        assert!(table_pages > 0.0, "table must have pages");
        SharedScanCoordinator { table_pages }
    }

    /// Simulate queries arriving at the given times (sorted or not), where
    /// each query needs one full pass over the table and one page costs one
    /// time unit on a single I/O channel.
    ///
    /// Shared policy: the cursor rotates whenever ≥1 query is attached; a
    /// query attaching at cursor position `p` completes when the cursor
    /// returns to `p`. Idle gaps (no attached queries) advance wall time but
    /// not the cursor.
    pub fn simulate(&self, arrivals: &[f64]) -> SharedScanReport {
        let mut order: Vec<f64> = arrivals.to_vec();
        order.sort_by(f64::total_cmp);

        // --- shared circular scan ---
        let mut shared = Vec::with_capacity(order.len());
        let mut shared_pages = 0.0;
        // Active queries: (arrival, pages_still_needed).
        let mut active: Vec<(f64, f64)> = Vec::new();
        let mut t: f64 = 0.0;
        let mut pending = order.clone();
        pending.reverse(); // pop from the back = earliest first
        while !pending.is_empty() || !active.is_empty() {
            if active.is_empty() {
                // Jump to next arrival.
                let a = pending.pop().expect("loop guard ensures pending");
                t = t.max(a);
                active.push((a, self.table_pages));
            }
            // Scan until the next event: a query finishing or a new arrival.
            let next_arrival = pending.last().copied().unwrap_or(f64::INFINITY);
            let min_left = active
                .iter()
                .map(|&(_, left)| left)
                .fold(f64::INFINITY, f64::min);
            let until_finish = t + min_left;
            if next_arrival < until_finish {
                let delta = next_arrival - t;
                for q in &mut active {
                    q.1 -= delta;
                }
                shared_pages += delta;
                t = next_arrival;
                pending.pop();
                active.push((t, self.table_pages));
            } else {
                let delta = min_left;
                for q in &mut active {
                    q.1 -= delta;
                }
                shared_pages += delta;
                t = until_finish;
                active.retain(|&(arr, left)| {
                    if left <= 1e-9 {
                        shared.push(ScanOutcome {
                            arrival: arr,
                            completion: t,
                            response: t - arr,
                        });
                        false
                    } else {
                        true
                    }
                });
            }
        }
        shared.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));

        // --- independent scans on one FIFO channel ---
        let mut independent = Vec::with_capacity(order.len());
        let mut channel_free: f64 = 0.0;
        for &a in &order {
            let start = channel_free.max(a);
            let completion = start + self.table_pages;
            independent.push(ScanOutcome { arrival: a, completion, response: completion - a });
            channel_free = completion;
        }
        let independent_pages = self.table_pages * order.len() as f64;

        SharedScanReport { shared, independent, shared_pages, independent_pages }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_query_costs_one_pass() {
        let c = SharedScanCoordinator::new(100.0);
        let r = c.simulate(&[0.0]);
        assert_eq!(r.shared.len(), 1);
        assert!((r.shared[0].response - 100.0).abs() < 1e-9);
        assert!((r.shared_pages - 100.0).abs() < 1e-9);
        assert!((r.independent_pages - 100.0).abs() < 1e-9);
    }

    #[test]
    fn simultaneous_queries_share_one_rotation() {
        let c = SharedScanCoordinator::new(100.0);
        let r = c.simulate(&[0.0, 0.0, 0.0, 0.0]);
        // All four ride the same pass: 100 pages total vs 400 independent.
        assert!((r.shared_pages - 100.0).abs() < 1e-9);
        assert!((r.independent_pages - 400.0).abs() < 1e-9);
        assert!(r.io_savings() > 0.7);
        for o in &r.shared {
            assert!((o.response - 100.0).abs() < 1e-9);
        }
        // Independent FIFO makes the last query wait 400.
        assert!((r.independent.last().unwrap().response - 400.0).abs() < 1e-9);
    }

    #[test]
    fn late_arrival_rides_partial_then_wraps() {
        let c = SharedScanCoordinator::new(100.0);
        let r = c.simulate(&[0.0, 50.0]);
        // Query 2 attaches mid-rotation and needs a full rotation of its own
        // position: completes at 150.
        let q2 = &r.shared[1];
        assert!((q2.completion - 150.0).abs() < 1e-9, "got {}", q2.completion);
        // Shared I/O: cursor ran continuously 0..150 = 150 pages vs 200.
        assert!((r.shared_pages - 150.0).abs() < 1e-9);
        assert!(r.io_savings() > 0.2);
    }

    #[test]
    fn idle_gap_does_not_burn_io() {
        let c = SharedScanCoordinator::new(10.0);
        let r = c.simulate(&[0.0, 1000.0]);
        assert!((r.shared_pages - 20.0).abs() < 1e-9);
        assert!((r.shared[1].completion - 1010.0).abs() < 1e-9);
        assert!((r.io_savings() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn mean_response_shared_beats_independent_under_load() {
        let c = SharedScanCoordinator::new(100.0);
        let arrivals: Vec<f64> = (0..10).map(|i| i as f64 * 5.0).collect();
        let r = c.simulate(&arrivals);
        assert!(
            r.shared_mean_response() < r.independent_mean_response(),
            "shared {} vs independent {}",
            r.shared_mean_response(),
            r.independent_mean_response()
        );
    }
}
