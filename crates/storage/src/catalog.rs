//! The catalog: named tables, indexes and adaptive-index stores.
//!
//! Tables and B-tree indexes are held behind `Arc` so running operators —
//! including exchange workers on other threads — can keep cheap snapshot
//! handles; mutation goes through [`Catalog::table_mut`], which copies on
//! write if a snapshot is still live (a poor man's snapshot isolation —
//! readers never observe concurrent appends). The adaptive indexes
//! (crackers, adaptive merge) stay `Rc<RefCell<…>>`: they mutate on every
//! query and remain single-threaded by design.

use crate::amerge::AdaptiveMergeIndex;
use crate::crack::CrackerColumn;
use crate::index::BTreeIndex;
use crate::multi_index::MultiIndex;
use crate::table::Table;
use rqp_common::{Result, RqpError};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// A named collection of tables, B-tree indexes and adaptive indexes.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
    indexes: HashMap<String, Arc<BTreeIndex>>,
    /// (table, column) → index name, for optimizer access-path lookup.
    index_by_col: HashMap<(String, String), String>,
    multi_indexes: HashMap<String, Arc<MultiIndex>>,
    crackers: HashMap<(String, String), Rc<RefCell<CrackerColumn>>>,
    amerges: HashMap<(String, String), Rc<RefCell<AdaptiveMergeIndex>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register (or replace) a table.
    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_owned(), Arc::new(table));
    }

    /// Snapshot handle to a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| RqpError::TableNotFound(name.to_owned()))
    }

    /// Mutable access to a table (copy-on-write if snapshots are live).
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        let rc = self
            .tables
            .get_mut(name)
            .ok_or_else(|| RqpError::TableNotFound(name.to_owned()))?;
        Ok(Arc::make_mut(rc))
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// True if `name` is a registered table.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Build and register a B-tree index named `index_name` on
    /// `table.column`. Replaces any index of the same name.
    pub fn create_index(
        &mut self,
        index_name: impl Into<String>,
        table: &str,
        column: &str,
    ) -> Result<()> {
        let index_name = index_name.into();
        let t = self.table(table)?;
        let idx = BTreeIndex::build(index_name.clone(), &t, column)?;
        self.index_by_col
            .insert((table.to_owned(), idx.column().to_owned()), index_name.clone());
        self.indexes.insert(index_name, Arc::new(idx));
        Ok(())
    }

    /// Drop an index by name (no-op if absent).
    pub fn drop_index(&mut self, index_name: &str) {
        if let Some(idx) = self.indexes.remove(index_name) {
            self.index_by_col
                .remove(&(idx.table().to_owned(), idx.column().to_owned()));
        }
    }

    /// Index handle by name.
    pub fn index(&self, name: &str) -> Result<Arc<BTreeIndex>> {
        self.indexes
            .get(name)
            .cloned()
            .ok_or_else(|| RqpError::IndexNotFound(name.to_owned()))
    }

    /// Find an index on `table.column`, if one exists.
    pub fn index_on(&self, table: &str, column: &str) -> Option<Arc<BTreeIndex>> {
        let unq = column.rsplit_once('.').map(|(_, c)| c).unwrap_or(column);
        self.index_by_col
            .get(&(table.to_owned(), unq.to_owned()))
            .and_then(|n| self.indexes.get(n).cloned())
    }

    /// All index names, sorted.
    pub fn index_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.indexes.keys().cloned().collect();
        names.sort();
        names
    }

    /// Build and register a composite index over `table.(columns…)`.
    pub fn create_multi_index(
        &mut self,
        index_name: impl Into<String>,
        table: &str,
        columns: &[&str],
    ) -> Result<()> {
        let index_name = index_name.into();
        let t = self.table(table)?;
        let idx = MultiIndex::build(index_name.clone(), &t, columns)?;
        self.multi_indexes.insert(index_name, Arc::new(idx));
        Ok(())
    }

    /// Composite index by name.
    pub fn multi_index(&self, name: &str) -> Result<Arc<MultiIndex>> {
        self.multi_indexes
            .get(name)
            .cloned()
            .ok_or_else(|| RqpError::IndexNotFound(name.to_owned()))
    }

    /// All composite indexes on `table`.
    pub fn multi_indexes_on(&self, table: &str) -> Vec<Arc<MultiIndex>> {
        let mut out: Vec<Arc<MultiIndex>> = self
            .multi_indexes
            .values()
            .filter(|ix| ix.table() == table)
            .cloned()
            .collect();
        out.sort_by(|a, b| a.name().cmp(b.name()));
        out
    }

    /// Create a cracker column over an integer `table.column`.
    pub fn create_cracker(&mut self, table: &str, column: &str) -> Result<()> {
        let t = self.table(table)?;
        let col = t.column_by_name(column)?;
        let keys = col.as_int_slice().ok_or_else(|| RqpError::TypeMismatch {
            expected: "INT column for cracking".into(),
            got: col.data_type().to_string(),
        })?;
        let unq = column.rsplit_once('.').map(|(_, c)| c).unwrap_or(column);
        self.crackers.insert(
            (table.to_owned(), unq.to_owned()),
            Rc::new(RefCell::new(CrackerColumn::new(keys))),
        );
        Ok(())
    }

    /// Cracker column over `table.column`, if created.
    pub fn cracker(&self, table: &str, column: &str) -> Option<Rc<RefCell<CrackerColumn>>> {
        let unq = column.rsplit_once('.').map(|(_, c)| c).unwrap_or(column);
        self.crackers.get(&(table.to_owned(), unq.to_owned())).cloned()
    }

    /// Create an adaptive-merge index over an integer `table.column`.
    pub fn create_amerge(&mut self, table: &str, column: &str, run_size: usize) -> Result<()> {
        let t = self.table(table)?;
        let col = t.column_by_name(column)?;
        let keys = col.as_int_slice().ok_or_else(|| RqpError::TypeMismatch {
            expected: "INT column for adaptive merging".into(),
            got: col.data_type().to_string(),
        })?;
        let unq = column.rsplit_once('.').map(|(_, c)| c).unwrap_or(column);
        self.amerges.insert(
            (table.to_owned(), unq.to_owned()),
            Rc::new(RefCell::new(AdaptiveMergeIndex::new(keys, run_size))),
        );
        Ok(())
    }

    /// Adaptive-merge index over `table.column`, if created.
    pub fn amerge(
        &self,
        table: &str,
        column: &str,
    ) -> Option<Rc<RefCell<AdaptiveMergeIndex>>> {
        let unq = column.rsplit_once('.').map(|(_, c)| c).unwrap_or(column);
        self.amerges.get(&(table.to_owned(), unq.to_owned())).cloned()
    }

    /// Register an existing table handle without copying its data (the
    /// reconstruction half of [`snapshot`](Self::snapshot)).
    pub fn add_shared_table(&mut self, table: Arc<Table>) {
        self.tables.insert(table.name().to_owned(), table);
    }

    /// Register an existing index handle, wiring the optimizer's
    /// column-lookup map from the index's own table/column.
    pub fn add_shared_index(&mut self, index: Arc<BTreeIndex>) {
        self.index_by_col.insert(
            (index.table().to_owned(), index.column().to_owned()),
            index.name().to_owned(),
        );
        self.indexes.insert(index.name().to_owned(), index);
    }

    /// Register an existing composite-index handle.
    pub fn add_shared_multi_index(&mut self, index: Arc<MultiIndex>) {
        self.multi_indexes.insert(index.name().to_owned(), index);
    }

    /// Attach (or replace) `pool` on every registered table, so scans pin
    /// data pages through one shared [`BufferPool`](crate::pool::BufferPool).
    /// Tables registered *after* this call are not wired — attach the pool
    /// once the catalog is fully loaded (or re-attach).
    pub fn attach_pool(&self, pool: &Arc<crate::pool::BufferPool>) {
        for t in self.tables.values() {
            t.attach_pool(pool);
        }
    }

    /// Attach (or replace) `log` on every registered table, so all mutations
    /// publish into one epoch-sequenced
    /// [`Changelog`](crate::changelog::Changelog) — the total order a
    /// multi-table subscription circuit replays. Same caveat as
    /// [`attach_pool`](Self::attach_pool): tables registered later are not
    /// wired.
    pub fn attach_changelog(&self, log: &Arc<crate::changelog::Changelog>) {
        for t in self.tables.values() {
            t.attach_changelog(log);
        }
    }

    /// A `Send + Sync` snapshot of the shareable half of the catalog: table,
    /// B-tree and composite-index handles, in sorted name order.
    ///
    /// The `Catalog` itself is not `Send` — the adaptive indexes (crackers,
    /// adaptive merge) are `Rc<RefCell<…>>` and mutate on every query — but
    /// everything an optimizer-planned query reads is already behind `Arc`.
    /// A query service snapshots the catalog once, hands the snapshot to
    /// each query thread, and every thread rebuilds a cheap thread-local
    /// `Catalog` with [`CatalogSnapshot::to_catalog`] (handle copies only,
    /// no data copies). Adaptive indexes are deliberately absent: a
    /// reconstructed catalog plans the non-adaptive access paths.
    pub fn snapshot(&self) -> CatalogSnapshot {
        let mut tables: Vec<Arc<Table>> = self.tables.values().cloned().collect();
        tables.sort_by(|a, b| a.name().cmp(b.name()));
        let mut indexes: Vec<Arc<BTreeIndex>> = self.indexes.values().cloned().collect();
        indexes.sort_by(|a, b| a.name().cmp(b.name()));
        let mut multi_indexes: Vec<Arc<MultiIndex>> =
            self.multi_indexes.values().cloned().collect();
        multi_indexes.sort_by(|a, b| a.name().cmp(b.name()));
        CatalogSnapshot { tables, indexes, multi_indexes }
    }
}

/// The `Send + Sync` half of a [`Catalog`]: shared handles to tables and
/// static indexes, produced by [`Catalog::snapshot`] and turned back into a
/// thread-local catalog with [`CatalogSnapshot::to_catalog`].
#[derive(Debug, Clone, Default)]
pub struct CatalogSnapshot {
    tables: Vec<Arc<Table>>,
    indexes: Vec<Arc<BTreeIndex>>,
    multi_indexes: Vec<Arc<MultiIndex>>,
}

impl CatalogSnapshot {
    /// Rebuild a thread-local [`Catalog`] from the shared handles. Cheap:
    /// only `Arc` clones, never data copies.
    pub fn to_catalog(&self) -> Catalog {
        let mut c = Catalog::new();
        for t in &self.tables {
            c.add_shared_table(Arc::clone(t));
        }
        for ix in &self.indexes {
            c.add_shared_index(Arc::clone(ix));
        }
        for ix in &self.multi_indexes {
            c.add_shared_multi_index(Arc::clone(ix));
        }
        c
    }

    /// Number of tables in the snapshot.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Shared handle to a table in the snapshot.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .iter()
            .find(|t| t.name() == name)
            .cloned()
            .ok_or_else(|| RqpError::TableNotFound(name.to_owned()))
    }

    /// Mutable access to a table in the snapshot, copying on write when
    /// other handles are live — the same snapshot isolation as
    /// [`Catalog::table_mut`]. Because the table's attached pool and
    /// changelog are shared `Arc`s, the copy keeps publishing to the same
    /// feed; catalogs rebuilt from this snapshot *after* the write see the
    /// new rows, ones rebuilt before keep their frozen view.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        let rc = self
            .tables
            .iter_mut()
            .find(|t| t.name() == name)
            .ok_or_else(|| RqpError::TableNotFound(name.to_owned()))?;
        Ok(Arc::make_mut(rc))
    }

    /// Attach (or replace) `pool` on every table handle in the snapshot.
    /// Because [`to_catalog`](Self::to_catalog) copies handles rather than
    /// data, every thread-local catalog rebuilt from this snapshot shares
    /// the attached pool.
    pub fn attach_pool(&self, pool: &Arc<crate::pool::BufferPool>) {
        for t in &self.tables {
            t.attach_pool(pool);
        }
    }

    /// Attach (or replace) `log` on every table handle in the snapshot; all
    /// thread-local catalogs rebuilt from this snapshot share the feed.
    pub fn attach_changelog(&self, log: &Arc<crate::changelog::Changelog>) {
        for t in &self.tables {
            t.attach_changelog(log);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::{DataType, Schema, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)]);
        let mut t = Table::new("t", schema);
        for i in 0..50 {
            t.append(vec![Value::Int(i), Value::Float(i as f64)]);
        }
        c.add_table(t);
        c
    }

    #[test]
    fn table_roundtrip() {
        let c = catalog();
        assert!(c.has_table("t"));
        assert_eq!(c.table("t").unwrap().nrows(), 50);
        assert!(c.table("missing").is_err());
        assert_eq!(c.table_names(), vec!["t".to_string()]);
    }

    #[test]
    fn index_lookup_by_column() {
        let mut c = catalog();
        c.create_index("ix_t_k", "t", "k").unwrap();
        assert!(c.index_on("t", "k").is_some());
        assert!(c.index_on("t", "t.k").is_some(), "qualified names accepted");
        assert!(c.index_on("t", "v").is_none());
        assert_eq!(c.index("ix_t_k").unwrap().entries(), 50);
        c.drop_index("ix_t_k");
        assert!(c.index_on("t", "k").is_none());
    }

    #[test]
    fn snapshot_isolation_on_write() {
        let mut c = catalog();
        let snap = c.table("t").unwrap();
        c.table_mut("t")
            .unwrap()
            .append(vec![Value::Int(99), Value::Float(9.9)]);
        assert_eq!(snap.nrows(), 50, "snapshot unaffected");
        assert_eq!(c.table("t").unwrap().nrows(), 51);
    }

    #[test]
    fn cracker_and_amerge_registration() {
        let mut c = catalog();
        c.create_cracker("t", "k").unwrap();
        c.create_amerge("t", "k", 8).unwrap();
        let cr = c.cracker("t", "k").unwrap();
        let (rows, _) = cr.borrow_mut().query(10, 19);
        assert_eq!(rows.len(), 10);
        let am = c.amerge("t", "k").unwrap();
        let (rows, _) = am.borrow_mut().query(10, 19);
        assert_eq!(rows.len(), 10);
        assert!(c.cracker("t", "v").is_none());
    }

    #[test]
    fn cracker_requires_int_column() {
        let mut c = catalog();
        assert!(c.create_cracker("t", "v").is_err());
        assert!(c.create_amerge("t", "v", 4).is_err());
    }

    #[test]
    fn snapshot_round_trips_across_threads() {
        let mut c = catalog();
        c.create_index("ix_t_k", "t", "k").unwrap();
        c.create_multi_index("mx_t_kv", "t", &["k", "v"]).unwrap();
        let snap = c.snapshot();
        assert_eq!(snap.table_count(), 1);
        // The snapshot crosses a thread boundary; the rebuilt catalog sees
        // the same tables and indexes (including the column-lookup wiring).
        let rebuilt = std::thread::spawn(move || {
            let local = snap.to_catalog();
            (
                local.table("t").unwrap().nrows(),
                local.index_on("t", "k").is_some(),
                local.multi_index("mx_t_kv").unwrap().name().to_owned(),
            )
        })
        .join()
        .unwrap();
        assert_eq!(rebuilt, (50, true, "mx_t_kv".to_owned()));
        // Shared handles, not copies: the snapshot is isolated from later
        // writes exactly like any other live table handle.
        c.table_mut("t")
            .unwrap()
            .append(vec![Value::Int(99), Value::Float(9.9)]);
        let snap2 = c.snapshot();
        assert_eq!(snap2.to_catalog().table("t").unwrap().nrows(), 51);
    }
}
