//! Multi-column (composite) B-tree indexes.
//!
//! The equivalent-query break-out's test design is explicit about these:
//! "With respect to selection from multi-column indexes, restrictions might
//! apply to leading, intermediate, or trailing index fields; they may be
//! equality or range predicates… an index on (A, B, C) should be used for
//! `A = 4 AND B BETWEEN 7 AND 11`". A [`MultiIndex`] keys a B-tree on a
//! column *tuple*; lookups take an equality prefix plus an optional range on
//! the next column — trailing restrictions stay residual, exactly the
//! access-path algebra the session wants exercised.

use crate::table::Table;
use crate::RowId;
use rqp_common::{Result, RqpError, Value};
use std::collections::BTreeMap;
use std::ops::Bound;

/// A B-tree index over an ordered list of columns.
#[derive(Debug, Clone)]
pub struct MultiIndex {
    name: String,
    table: String,
    columns: Vec<String>,
    map: BTreeMap<Vec<Value>, Vec<RowId>>,
    entries: usize,
}

impl MultiIndex {
    /// Build over `table.(columns…)` in the given order.
    pub fn build(name: impl Into<String>, table: &Table, columns: &[&str]) -> Result<Self> {
        if columns.is_empty() {
            return Err(RqpError::Invalid("multi-index needs at least one column".into()));
        }
        let idxs: Vec<usize> = columns
            .iter()
            .map(|c| table.column_index(c))
            .collect::<Result<_>>()?;
        let mut map: BTreeMap<Vec<Value>, Vec<RowId>> = BTreeMap::new();
        for rid in 0..table.nrows() {
            let row = table.row(rid);
            let key: Vec<Value> = idxs.iter().map(|&i| row[i].clone()).collect();
            map.entry(key).or_default().push(rid);
        }
        Ok(MultiIndex {
            name: name.into(),
            table: table.name().to_owned(),
            columns: columns
                .iter()
                .map(|c| {
                    c.rsplit_once('.')
                        .map(|(_, u)| u.to_owned())
                        .unwrap_or_else(|| (*c).to_owned())
                })
                .collect(),
            entries: table.nrows(),
            map,
        })
    }

    /// Index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Indexed table.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Indexed columns, leading first (unqualified).
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Row ids whose leading columns equal `prefix`, with an optional
    /// inclusive `[lo, hi]` range on the column *after* the prefix.
    ///
    /// `prefix` may be empty (pure range on the first column) and at most
    /// `columns().len()` long; when it covers every column the range must be
    /// absent. Errors on a longer prefix.
    pub fn lookup(
        &self,
        prefix: &[Value],
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Result<Vec<RowId>> {
        if prefix.len() > self.columns.len() {
            return Err(RqpError::Invalid(format!(
                "prefix of {} values exceeds {} indexed columns",
                prefix.len(),
                self.columns.len()
            )));
        }
        if prefix.len() == self.columns.len() && (lo.is_some() || hi.is_some()) {
            return Err(RqpError::Invalid(
                "range column exceeds the indexed columns".into(),
            ));
        }
        // Lower bound: prefix ++ [lo] (or just prefix). Lexicographic order
        // makes every key extending `prefix` sort at or after this bound.
        let mut lower = prefix.to_vec();
        if let Some(l) = lo {
            lower.push(l.clone());
        }
        let mut out = Vec::new();
        for (key, rids) in self.map.range((Bound::Included(lower), Bound::Unbounded)) {
            if key.len() < prefix.len() || key[..prefix.len()] != *prefix {
                break; // left the prefix region
            }
            if let Some(h) = hi {
                if key.len() > prefix.len() && key[prefix.len()] > *h {
                    break;
                }
            }
            out.extend_from_slice(rids);
        }
        Ok(out)
    }

    /// Exact fraction of entries matched by a lookup (statistics surface).
    pub fn selectivity(
        &self,
        prefix: &[Value],
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Result<f64> {
        if self.entries == 0 {
            return Ok(0.0);
        }
        Ok(self.lookup(prefix, lo, hi)?.len() as f64 / self.entries as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::{DataType, Schema};

    /// (a, b, c) with a ∈ 0..5, b ∈ 0..10, c sequential.
    fn table() -> Table {
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Int),
        ]);
        let mut t = Table::new("t", schema);
        for i in 0..500i64 {
            t.append(vec![Value::Int(i % 5), Value::Int(i % 10), Value::Int(i)]);
        }
        t
    }

    fn truth(f: impl Fn(i64, i64, i64) -> bool) -> Vec<RowId> {
        (0..500i64)
            .filter(|&i| f(i % 5, i % 10, i))
            .map(|i| i as RowId)
            .collect()
    }

    fn sorted(mut v: Vec<RowId>) -> Vec<RowId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn full_prefix_equality() {
        let t = table();
        let ix = MultiIndex::build("ix", &t, &["a", "b"]).unwrap();
        let got = ix
            .lookup(&[Value::Int(3), Value::Int(8)], None, None)
            .unwrap();
        assert_eq!(sorted(got), truth(|a, b, _| a == 3 && b == 8));
        assert_eq!(ix.columns(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn the_session_example_eq_then_range() {
        // "an index on (A, B, C) should be used for A = 4 AND B BETWEEN 7 AND 11"
        let t = table();
        let ix = MultiIndex::build("ix", &t, &["a", "b", "c"]).unwrap();
        let got = ix
            .lookup(&[Value::Int(4)], Some(&Value::Int(7)), Some(&Value::Int(11)))
            .unwrap();
        assert_eq!(sorted(got), truth(|a, b, _| a == 4 && (7..=11).contains(&b)));
    }

    #[test]
    fn empty_prefix_is_a_leading_range() {
        let t = table();
        let ix = MultiIndex::build("ix", &t, &["a", "b"]).unwrap();
        let got = ix
            .lookup(&[], Some(&Value::Int(1)), Some(&Value::Int(2)))
            .unwrap();
        assert_eq!(sorted(got), truth(|a, _, _| (1..=2).contains(&a)));
    }

    #[test]
    fn open_ended_ranges() {
        let t = table();
        let ix = MultiIndex::build("ix", &t, &["a", "b"]).unwrap();
        let got = ix.lookup(&[Value::Int(2)], Some(&Value::Int(7)), None).unwrap();
        assert_eq!(sorted(got), truth(|a, b, _| a == 2 && b >= 7));
        let got = ix.lookup(&[Value::Int(2)], None, Some(&Value::Int(3))).unwrap();
        assert_eq!(sorted(got), truth(|a, b, _| a == 2 && b <= 3));
    }

    #[test]
    fn misuse_is_rejected() {
        let t = table();
        let ix = MultiIndex::build("ix", &t, &["a", "b"]).unwrap();
        assert!(ix
            .lookup(&[Value::Int(1), Value::Int(2), Value::Int(3)], None, None)
            .is_err());
        assert!(ix
            .lookup(&[Value::Int(1), Value::Int(2)], Some(&Value::Int(0)), None)
            .is_err());
        assert!(MultiIndex::build("x", &t, &[]).is_err());
        assert!(MultiIndex::build("x", &t, &["nope"]).is_err());
    }

    #[test]
    fn selectivity_exact() {
        let t = table();
        let ix = MultiIndex::build("ix", &t, &["a", "b"]).unwrap();
        let s = ix.selectivity(&[Value::Int(0)], None, None).unwrap();
        assert!((s - 0.2).abs() < 1e-12);
    }

    #[test]
    fn no_match_prefix() {
        let t = table();
        let ix = MultiIndex::build("ix", &t, &["a", "b"]).unwrap();
        assert!(ix.lookup(&[Value::Int(99)], None, None).unwrap().is_empty());
        // hi < lo yields empty
        assert!(ix
            .lookup(&[Value::Int(1)], Some(&Value::Int(9)), Some(&Value::Int(2)))
            .unwrap()
            .is_empty());
    }
}
