//! Adaptive merging (Graefe & Kuno, EDBT 2010).
//!
//! Where database cracking refines by *partitioning*, adaptive merging
//! refines by *merging*: the column is first split into sorted runs (the
//! cheap, sequential part of an index build), and each range query then
//! merges only the queried key range out of the runs into a final B-tree.
//! Hot ranges become fully indexed quickly; cold ranges never pay merge
//! cost. The seminar's adaptive-indexing session contrasts the two — E11
//! benchmarks them head to head.

use crate::RowId;
use std::collections::BTreeMap;

/// Statistics for one adaptive-merge query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeStats {
    /// Entries moved from runs into the merged index by this query.
    pub moved: usize,
    /// Binary-search probes into runs (charged as comparisons).
    pub probes: usize,
    /// Rows returned.
    pub result_rows: usize,
    /// Fraction (0–100) of all entries now in the merged index.
    pub merged_pct: u8,
}

/// An adaptive merge index over `i64` keys.
#[derive(Debug, Clone)]
pub struct AdaptiveMergeIndex {
    /// Sorted runs still holding un-merged entries.
    runs: Vec<Vec<(i64, RowId)>>,
    /// The final merged index.
    merged: BTreeMap<i64, Vec<RowId>>,
    total_entries: usize,
    merged_entries: usize,
    initial_sort_comparisons: usize,
}

impl AdaptiveMergeIndex {
    /// Build from keys, creating sorted runs of `run_size` entries each.
    /// `run_size == 0` defaults to √n runs.
    pub fn new(keys: &[i64], run_size: usize) -> Self {
        let n = keys.len();
        let run_size = if run_size == 0 {
            ((n as f64).sqrt().ceil() as usize).max(1)
        } else {
            run_size
        };
        let mut runs = Vec::with_capacity(n.div_ceil(run_size.max(1)));
        let mut comparisons = 0usize;
        for chunk_start in (0..n).step_by(run_size.max(1)) {
            let end = (chunk_start + run_size).min(n);
            let mut run: Vec<(i64, RowId)> = keys[chunk_start..end]
                .iter()
                .copied()
                .zip(chunk_start..end)
                .collect();
            run.sort_unstable_by_key(|&(k, _)| k);
            // n log n comparisons per run, the "run generation" cost.
            let len = run.len().max(1);
            comparisons += len * (usize::BITS - len.leading_zeros()) as usize;
            runs.push(run);
        }
        AdaptiveMergeIndex {
            runs,
            merged: BTreeMap::new(),
            total_entries: n,
            merged_entries: 0,
            initial_sort_comparisons: comparisons,
        }
    }

    /// Comparisons spent building the initial sorted runs.
    pub fn initial_sort_comparisons(&self) -> usize {
        self.initial_sort_comparisons
    }

    /// Total entries across runs and merged index.
    pub fn len(&self) -> usize {
        self.total_entries
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.total_entries == 0
    }

    /// Fraction of entries already merged into the final index.
    pub fn merged_fraction(&self) -> f64 {
        if self.total_entries == 0 {
            0.0
        } else {
            self.merged_entries as f64 / self.total_entries as f64
        }
    }

    /// Range query `[lo, hi]` inclusive: merges that key range out of every
    /// run into the final index, then answers from the final index.
    pub fn query(&mut self, lo: i64, hi: i64) -> (Vec<RowId>, MergeStats) {
        let mut moved = 0usize;
        let mut probes = 0usize;
        if lo <= hi {
            for run in &mut self.runs {
                if run.is_empty() {
                    continue;
                }
                let start = run.partition_point(|&(k, _)| k < lo);
                let end = run.partition_point(|&(k, _)| k <= hi);
                probes += 2 * (usize::BITS - (run.len().max(1)).leading_zeros()) as usize;
                if start < end {
                    for (k, rid) in run.drain(start..end) {
                        self.merged.entry(k).or_default().push(rid);
                        moved += 1;
                    }
                }
            }
            self.runs.retain(|r| !r.is_empty());
            self.merged_entries += moved;
        }
        let mut rows = Vec::new();
        if lo <= hi {
            for rids in self.merged.range(lo..=hi).map(|(_, r)| r) {
                rows.extend_from_slice(rids);
            }
        }
        let stats = MergeStats {
            moved,
            probes,
            result_rows: rows.len(),
            merged_pct: (self.merged_fraction() * 100.0).round() as u8,
        };
        (rows, stats)
    }

    /// Check consistency: run entries + merged entries == total, runs sorted.
    pub fn check_invariant(&self) -> bool {
        let in_runs: usize = self.runs.iter().map(|r| r.len()).sum();
        if in_runs + self.merged_entries != self.total_entries {
            return false;
        }
        self.runs
            .iter()
            .all(|r| r.windows(2).all(|w| w[0].0 <= w[1].0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Vec<i64> {
        (0..200).map(|i| (i * 73) % 200).collect()
    }

    fn expected(lo: i64, hi: i64) -> Vec<RowId> {
        let mut v: Vec<RowId> = keys()
            .iter()
            .enumerate()
            .filter(|(_, &k)| k >= lo && k <= hi)
            .map(|(r, _)| r)
            .collect();
        v.sort_unstable();
        v
    }

    fn sorted(mut v: Vec<RowId>) -> Vec<RowId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn query_returns_correct_rows() {
        let mut a = AdaptiveMergeIndex::new(&keys(), 32);
        let (rows, st) = a.query(50, 79);
        assert_eq!(sorted(rows), expected(50, 79));
        assert_eq!(st.result_rows, 30);
        assert!(a.check_invariant());
    }

    #[test]
    fn repeat_query_moves_nothing() {
        let mut a = AdaptiveMergeIndex::new(&keys(), 32);
        let (_, st1) = a.query(50, 79);
        assert!(st1.moved > 0);
        let (rows, st2) = a.query(50, 79);
        assert_eq!(sorted(rows), expected(50, 79));
        assert_eq!(st2.moved, 0, "range already merged");
    }

    #[test]
    fn overlapping_query_moves_only_new_part() {
        let mut a = AdaptiveMergeIndex::new(&keys(), 32);
        a.query(50, 79);
        let (_, st) = a.query(70, 99);
        assert_eq!(st.moved, 20, "only keys 80..=99 remain unmerged");
        assert!(a.check_invariant());
    }

    #[test]
    fn full_merge_reaches_100_pct() {
        let mut a = AdaptiveMergeIndex::new(&keys(), 0);
        let (rows, st) = a.query(i64::MIN, i64::MAX);
        assert_eq!(rows.len(), 200);
        assert_eq!(st.merged_pct, 100);
        assert!((a.merged_fraction() - 1.0).abs() < 1e-12);
        assert!(a.check_invariant());
    }

    #[test]
    fn inverted_range_is_noop() {
        let mut a = AdaptiveMergeIndex::new(&keys(), 32);
        let (rows, st) = a.query(10, 5);
        assert!(rows.is_empty());
        assert_eq!(st.moved, 0);
    }

    #[test]
    fn duplicates_preserved() {
        let ks = vec![7i64; 10];
        let mut a = AdaptiveMergeIndex::new(&ks, 3);
        let (rows, _) = a.query(7, 7);
        assert_eq!(rows.len(), 10);
        assert!(a.check_invariant());
    }

    #[test]
    fn empty_index() {
        let mut a = AdaptiveMergeIndex::new(&[], 8);
        assert!(a.is_empty());
        let (rows, _) = a.query(0, 10);
        assert!(rows.is_empty());
    }
}
