//! Database cracking (Idreos, Kersten, Manegold — CIDR 2007).
//!
//! A [`CrackerColumn`] copies a base column into `(key, rowid)` pairs and
//! physically reorganizes them *as a side effect of range queries*: each query
//! partitions ("cracks") only the pieces its bounds fall into, an incremental
//! quicksort driven by the workload. The cracker index is a map from boundary
//! key to position; pieces between boundaries are unsorted but value-bounded.
//!
//! The first query pays roughly a scan; subsequent queries touch ever smaller
//! pieces; hot key ranges converge toward a full index while cold ranges stay
//! coarse — the convergence curve experiment E11 reproduces.
//!
//! Updates follow the "self-organizing differential updates" idea of Idreos
//! et al. (SIGMOD 2007): inserts and deletes queue in pending sets and merge
//! lazily, only when a query actually asks for the affected key range.

use crate::RowId;
use std::collections::BTreeMap;

/// Statistics about one cracking query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrackStats {
    /// Tuples physically moved/compared while cracking this query.
    pub touched: usize,
    /// Tuples returned.
    pub result_rows: usize,
    /// Number of pieces after the query.
    pub pieces: usize,
    /// Pending updates merged during this query.
    pub merged_updates: usize,
}

/// A cracker column over `i64` keys.
///
/// ```
/// use rqp_storage::CrackerColumn;
///
/// let mut c = CrackerColumn::new(&[5, 1, 9, 3, 7]);
/// let (rows, stats) = c.query(3, 7);           // first query cracks
/// assert_eq!(rows.len(), 3);                   // keys 3, 5, 7
/// assert!(stats.touched >= 5);
/// let (_, again) = c.query(3, 7);              // repeat is free
/// assert_eq!(again.touched, 0);
/// ```
#[derive(Debug, Clone)]
pub struct CrackerColumn {
    /// `(key, rowid)` pairs, partially ordered by the crack index.
    entries: Vec<(i64, RowId)>,
    /// Boundary key → position: entries[..pos] < key, entries[pos..] >= key.
    index: BTreeMap<i64, usize>,
    /// Pending inserts not yet merged into `entries`.
    pending_inserts: Vec<(i64, RowId)>,
    /// Pending deletes (by rowid) not yet applied.
    pending_deletes: Vec<(i64, RowId)>,
    /// Cumulative tuples touched by all cracking work.
    total_touched: usize,
}

impl CrackerColumn {
    /// Build from a column of keys; rowid = position.
    pub fn new(keys: &[i64]) -> Self {
        CrackerColumn {
            entries: keys.iter().copied().zip(0..).collect(),
            index: BTreeMap::new(),
            pending_inserts: Vec::new(),
            pending_deletes: Vec::new(),
            total_touched: 0,
        }
    }

    /// Number of live entries (excluding pending deletes, including pending
    /// inserts).
    pub fn len(&self) -> usize {
        self.entries.len() + self.pending_inserts.len() - self.pending_deletes.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pieces the column is currently cracked into.
    pub fn pieces(&self) -> usize {
        self.index.len() + 1
    }

    /// Cumulative tuples touched by cracking since creation.
    pub fn total_touched(&self) -> usize {
        self.total_touched
    }

    /// Queue an insert; merged lazily by the next query covering `key`.
    pub fn insert(&mut self, key: i64, rid: RowId) {
        self.pending_inserts.push((key, rid));
    }

    /// Queue a delete of `(key, rid)`; applied lazily.
    pub fn delete(&mut self, key: i64, rid: RowId) {
        self.pending_deletes.push((key, rid));
    }

    /// Range query `[lo, hi]` (inclusive): cracks the touched pieces, merges
    /// intersecting pending updates, and returns matching row ids plus stats.
    pub fn query(&mut self, lo: i64, hi: i64) -> (Vec<RowId>, CrackStats) {
        let mut touched = 0usize;
        let merged = self.merge_pending(lo, hi, &mut touched);
        if lo > hi {
            return (
                Vec::new(),
                CrackStats {
                    touched,
                    result_rows: 0,
                    pieces: self.pieces(),
                    merged_updates: merged,
                },
            );
        }
        let start = self.crack(lo, &mut touched);
        // Crack at hi+1 so [start, end) is exactly keys in [lo, hi]. Guard
        // against overflow at i64::MAX (then the range extends to the end).
        let end = if hi == i64::MAX {
            self.entries.len()
        } else {
            self.crack(hi + 1, &mut touched)
        };
        let rows: Vec<RowId> = self.entries[start..end].iter().map(|&(_, r)| r).collect();
        self.total_touched += touched;
        (
            rows,
            CrackStats {
                touched,
                result_rows: end - start,
                pieces: self.pieces(),
                merged_updates: merged,
            },
        )
    }

    /// Crack at `v`: ensure a boundary exists at key `v`, returning its
    /// position. Touches only the enclosing piece.
    fn crack(&mut self, v: i64, touched: &mut usize) -> usize {
        if let Some(&pos) = self.index.get(&v) {
            return pos;
        }
        let piece_start = self
            .index
            .range(..=v)
            .next_back()
            .map(|(_, &p)| p)
            .unwrap_or(0);
        let piece_end = self
            .index
            .range(v + 1..)
            .next()
            .map(|(_, &p)| p)
            .unwrap_or(self.entries.len());
        // Hoare-style partition of the piece: < v left, >= v right.
        let piece = &mut self.entries[piece_start..piece_end];
        *touched += piece.len();
        let mut i = 0usize;
        let mut j = piece.len();
        while i < j {
            if piece[i].0 < v {
                i += 1;
            } else {
                j -= 1;
                piece.swap(i, j);
            }
        }
        let pos = piece_start + i;
        self.index.insert(v, pos);
        pos
    }

    /// Merge pending inserts/deletes whose key intersects `[lo, hi]`.
    ///
    /// Inserts splice into the correct piece (positions after the splice
    /// shift right); deletes remove the first matching `(key, rid)` entry.
    /// Returns the number of updates merged.
    fn merge_pending(&mut self, lo: i64, hi: i64, touched: &mut usize) -> usize {
        let mut merged = 0usize;

        let ins: Vec<(i64, RowId)> = {
            let (take, keep): (Vec<_>, Vec<_>) = self
                .pending_inserts
                .drain(..)
                .partition(|&(k, _)| k >= lo && k <= hi);
            self.pending_inserts = keep;
            take
        };
        for (k, rid) in ins {
            // Insert at the start of the piece that owns k (any position
            // within the piece is valid since pieces are unsorted).
            let pos = self
                .index
                .range(..=k)
                .next_back()
                .map(|(_, &p)| p)
                .unwrap_or(0);
            self.entries.insert(pos, (k, rid));
            *touched += self.entries.len() - pos;
            for p in self.index.values_mut() {
                if *p > pos {
                    *p += 1;
                }
            }
            // Boundaries exactly at `pos` with key > k must also shift.
            let bump: Vec<i64> = self
                .index
                .iter()
                .filter(|&(&bk, &bp)| bp == pos && bk > k)
                .map(|(&bk, _)| bk)
                .collect();
            for bk in bump {
                *self.index.get_mut(&bk).expect("key just seen") += 1;
            }
            merged += 1;
        }

        let dels: Vec<(i64, RowId)> = {
            let (take, keep): (Vec<_>, Vec<_>) = self
                .pending_deletes
                .drain(..)
                .partition(|&(k, _)| k >= lo && k <= hi);
            self.pending_deletes = keep;
            take
        };
        for (k, rid) in dels {
            if let Some(pos) = self.entries.iter().position(|&(ek, er)| ek == k && er == rid) {
                self.entries.remove(pos);
                *touched += self.entries.len().saturating_sub(pos) + 1;
                for p in self.index.values_mut() {
                    if *p > pos {
                        *p -= 1;
                    }
                }
                merged += 1;
            }
        }
        merged
    }

    /// Check the cracker invariant: for every boundary `(k, p)`, all entries
    /// left of `p` are `< k` and all at/right of `p` are `>= k`.
    pub fn check_invariant(&self) -> bool {
        for (&k, &p) in &self.index {
            if p > self.entries.len() {
                return false;
            }
            if self.entries[..p].iter().any(|&(e, _)| e >= k) {
                return false;
            }
            if self.entries[p..].iter().any(|&(e, _)| e < k) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Vec<i64> {
        // deterministic shuffle of 0..100
        (0..100).map(|i| (i * 37) % 100).collect()
    }

    fn expected(lo: i64, hi: i64) -> Vec<RowId> {
        let mut v: Vec<RowId> = keys()
            .iter()
            .enumerate()
            .filter(|(_, &k)| k >= lo && k <= hi)
            .map(|(r, _)| r)
            .collect();
        v.sort_unstable();
        v
    }

    fn sorted(mut v: Vec<RowId>) -> Vec<RowId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn first_query_touches_everything() {
        let mut c = CrackerColumn::new(&keys());
        let (rows, st) = c.query(10, 19);
        assert_eq!(sorted(rows), expected(10, 19));
        assert_eq!(st.result_rows, 10);
        assert!(st.touched >= 100, "first crack scans the whole column");
        assert!(c.check_invariant());
    }

    #[test]
    fn repeat_query_touches_nothing() {
        let mut c = CrackerColumn::new(&keys());
        c.query(10, 19);
        let before = c.total_touched();
        let (rows, st) = c.query(10, 19);
        assert_eq!(sorted(rows), expected(10, 19));
        assert_eq!(st.touched, 0, "boundaries already exist");
        assert_eq!(c.total_touched(), before);
    }

    #[test]
    fn converges_with_more_queries() {
        let mut c = CrackerColumn::new(&keys());
        let mut last_touch = usize::MAX;
        for q in 0..5 {
            let lo = q * 17 % 80;
            let (_, st) = c.query(lo, lo + 9);
            assert!(c.check_invariant(), "invariant broken after query {q}");
            assert!(st.touched <= last_touch.max(100));
            last_touch = st.touched;
        }
        assert!(c.pieces() > 5);
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let mut c = CrackerColumn::new(&keys());
        let (rows, _) = c.query(200, 300);
        assert!(rows.is_empty());
        let (rows, st) = c.query(50, 40);
        assert!(rows.is_empty());
        assert_eq!(st.result_rows, 0);
        assert!(c.check_invariant());
    }

    #[test]
    fn extreme_bounds() {
        let mut c = CrackerColumn::new(&keys());
        let (rows, _) = c.query(i64::MIN, i64::MAX);
        assert_eq!(rows.len(), 100);
        assert!(c.check_invariant());
    }

    #[test]
    fn pending_insert_merges_on_covering_query() {
        let mut c = CrackerColumn::new(&keys());
        c.query(10, 19);
        c.insert(15, 1000);
        // A query not covering 15 leaves it pending.
        let (rows, st) = c.query(30, 39);
        assert!(!rows.contains(&1000));
        assert_eq!(st.merged_updates, 0);
        // A covering query merges and returns it.
        let (rows, st) = c.query(10, 19);
        assert!(rows.contains(&1000));
        assert_eq!(st.merged_updates, 1);
        assert!(c.check_invariant());
        assert_eq!(c.len(), 101);
    }

    #[test]
    fn pending_delete_applies_lazily() {
        let mut c = CrackerColumn::new(&keys());
        c.query(0, 99);
        // key 42 is at rowid r where keys()[r] == 42
        let rid = keys().iter().position(|&k| k == 42).unwrap();
        c.delete(42, rid);
        let (rows, st) = c.query(40, 45);
        assert!(!rows.contains(&rid));
        assert_eq!(st.merged_updates, 1);
        assert!(c.check_invariant());
        assert_eq!(c.len(), 99);
    }

    #[test]
    fn insert_then_crack_across_boundary() {
        let mut c = CrackerColumn::new(&keys());
        c.query(20, 29);
        c.query(60, 69);
        c.insert(25, 500);
        c.insert(65, 501);
        let (rows, _) = c.query(0, 99);
        assert_eq!(rows.len(), 102);
        assert!(rows.contains(&500) && rows.contains(&501));
        assert!(c.check_invariant());
    }

    #[test]
    fn single_value_range() {
        let mut c = CrackerColumn::new(&keys());
        let (rows, _) = c.query(7, 7);
        assert_eq!(rows.len(), 1);
        assert_eq!(keys()[rows[0]], 7);
    }
}
