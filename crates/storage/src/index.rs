//! B-tree secondary indexes.

use crate::table::Table;
use crate::RowId;
use rqp_common::{Result, RqpError, Value};
use std::collections::BTreeMap;
use std::ops::Bound;

/// A B-tree index over one column of a table.
///
/// `clustered` marks whether row ids in key order correspond to physical
/// order (built from a sorted column) — the cost model charges sequential
/// pages for clustered range scans and random pages for unclustered fetches,
/// which is precisely what creates the plan cliffs the robustness experiments
/// measure.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    name: String,
    table: String,
    column: String,
    map: BTreeMap<Value, Vec<RowId>>,
    clustered: bool,
    entries: usize,
}

impl BTreeIndex {
    /// Build an index over `table.column`.
    pub fn build(name: impl Into<String>, table: &Table, column: &str) -> Result<Self> {
        let col = table.column_by_name(column)?;
        let mut map: BTreeMap<Value, Vec<RowId>> = BTreeMap::new();
        for (rid, v) in col.iter_values().enumerate() {
            map.entry(v).or_default().push(rid);
        }
        // Clustered iff ascending key order visits row ids in ascending order.
        let mut last = 0usize;
        let mut clustered = true;
        'outer: for rids in map.values() {
            for &r in rids {
                if r < last {
                    clustered = false;
                    break 'outer;
                }
                last = r;
            }
        }
        let entries = col.len();
        Ok(BTreeIndex {
            name: name.into(),
            table: table.name().to_owned(),
            column: column
                .rsplit_once('.')
                .map(|(_, c)| c.to_owned())
                .unwrap_or_else(|| column.to_owned()),
            map,
            clustered,
            entries,
        })
    }

    /// Index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Indexed table name.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Indexed (unqualified) column name.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Whether key order matches physical row order.
    pub fn clustered(&self) -> bool {
        self.clustered
    }

    /// Total indexed entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Row ids with key exactly `v`.
    pub fn lookup_eq(&self, v: &Value) -> Vec<RowId> {
        self.map.get(v).cloned().unwrap_or_default()
    }

    /// Row ids with key in the inclusive range `[lo, hi]`; `None` bounds are
    /// unbounded.
    pub fn lookup_range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<RowId> {
        let lo_b = lo.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        let hi_b = hi.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        if let (Bound::Included(a), Bound::Included(b)) = (&lo_b, &hi_b) {
            if a > b {
                return Vec::new();
            }
        }
        let mut out = Vec::new();
        for rids in self.map.range((lo_b, hi_b)).map(|(_, r)| r) {
            out.extend_from_slice(rids);
        }
        out
    }

    /// Insert a new entry (used by the OLTP side of mixed workloads).
    pub fn insert(&mut self, key: Value, rid: RowId) {
        // An append to the end keeps a clustered index clustered only if the
        // key is >= the current max; otherwise the index degrades to
        // unclustered — mirroring real B-tree/heap drift.
        if self.clustered {
            if let Some((max_key, rids)) = self.map.iter().next_back() {
                let max_rid = rids.last().copied().unwrap_or(0);
                if key < *max_key || rid < max_rid {
                    self.clustered = false;
                }
            }
        }
        self.map.entry(key).or_default().push(rid);
        self.entries += 1;
    }

    /// Estimated fraction of entries in `[lo, hi]` — the index doubles as a
    /// perfectly accurate (but expensive) statistics source.
    pub fn selectivity(&self, lo: Option<&Value>, hi: Option<&Value>) -> f64 {
        if self.entries == 0 {
            return 0.0;
        }
        self.lookup_range(lo, hi).len() as f64 / self.entries as f64
    }

    /// Validate internal consistency (row-id count equals entries).
    pub fn validate(&self) -> Result<()> {
        let total: usize = self.map.values().map(|v| v.len()).sum();
        if total != self.entries {
            return Err(RqpError::Invalid(format!(
                "index {} has {} mapped rows but {} entries",
                self.name, total, self.entries
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::{DataType, Schema};

    fn table_sorted() -> Table {
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..100 {
            t.append(vec![Value::Int(i)]);
        }
        t
    }

    fn table_shuffled() -> Table {
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..100 {
            t.append(vec![Value::Int((i * 37) % 100)]);
        }
        t
    }

    #[test]
    fn eq_and_range_lookup() {
        let t = table_sorted();
        let idx = BTreeIndex::build("ix", &t, "k").unwrap();
        assert_eq!(idx.lookup_eq(&Value::Int(5)), vec![5]);
        let r = idx.lookup_range(Some(&Value::Int(10)), Some(&Value::Int(14)));
        assert_eq!(r, vec![10, 11, 12, 13, 14]);
        assert!(idx.lookup_eq(&Value::Int(1000)).is_empty());
    }

    #[test]
    fn empty_range_when_inverted() {
        let t = table_sorted();
        let idx = BTreeIndex::build("ix", &t, "k").unwrap();
        assert!(idx
            .lookup_range(Some(&Value::Int(10)), Some(&Value::Int(5)))
            .is_empty());
    }

    #[test]
    fn unbounded_ranges() {
        let t = table_sorted();
        let idx = BTreeIndex::build("ix", &t, "k").unwrap();
        assert_eq!(idx.lookup_range(None, Some(&Value::Int(2))).len(), 3);
        assert_eq!(idx.lookup_range(Some(&Value::Int(98)), None).len(), 2);
        assert_eq!(idx.lookup_range(None, None).len(), 100);
    }

    #[test]
    fn clustered_detection() {
        let idx = BTreeIndex::build("a", &table_sorted(), "k").unwrap();
        assert!(idx.clustered());
        let idx = BTreeIndex::build("b", &table_shuffled(), "k").unwrap();
        assert!(!idx.clustered());
    }

    #[test]
    fn selectivity_exact() {
        let idx = BTreeIndex::build("ix", &table_sorted(), "k").unwrap();
        let s = idx.selectivity(Some(&Value::Int(0)), Some(&Value::Int(24)));
        assert!((s - 0.25).abs() < 1e-9);
    }

    #[test]
    fn insert_updates_and_may_decluster() {
        let t = table_sorted();
        let mut idx = BTreeIndex::build("ix", &t, "k").unwrap();
        assert!(idx.clustered());
        idx.insert(Value::Int(500), 100);
        assert!(idx.clustered(), "appending a max key keeps clustering");
        idx.insert(Value::Int(-1), 101);
        assert!(!idx.clustered(), "inserting below max declusters");
        assert_eq!(idx.entries(), 102);
        idx.validate().unwrap();
    }

    #[test]
    fn duplicate_keys() {
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for _ in 0..5 {
            t.append(vec![Value::Int(7)]);
        }
        let idx = BTreeIndex::build("ix", &t, "k").unwrap();
        assert_eq!(idx.lookup_eq(&Value::Int(7)).len(), 5);
        assert_eq!(idx.distinct_keys(), 1);
        idx.validate().unwrap();
    }
}
