//! # rqp-storage
//!
//! In-memory columnar storage substrate for the robust-query-processing
//! testbed:
//!
//! * [`mod@column`] — typed column vectors with min/max/distinct statistics
//!   surface;
//! * [`table`] — a [`table::Table`] of columns plus row-wise access;
//! * [`index`] — clustered/unclustered B-tree secondary indexes
//!   ([`index::BTreeIndex`]) and multi-column composite indexes
//!   ([`multi_index::MultiIndex`]) with prefix + range lookups;
//! * [`crack`] — **database cracking** (Idreos, Kersten, Manegold): a cracker
//!   column physically reorganized as a side effect of range queries, the
//!   seminar's flagship *adaptive indexing* technique;
//! * [`amerge`] — **adaptive merging** (Graefe, Kuno): sorted runs merged on
//!   demand by the key ranges queries actually touch;
//! * [`shared_scan`] — a circular shared-scan coordinator in the spirit of
//!   QPipe/Crescando ("clock scan"), used by the mixed-workload experiments;
//! * [`catalog`] — the named collection of tables and indexes the optimizer
//!   plans against;
//! * [`mod@pool`] — the paged [`BufferPool`]: pin/unpin accounting over
//!   fixed-size logical pages with clock eviction, deterministic fault
//!   charging, and chaos-injected transient page-I/O errors.
//!
//! Storage is mostly pure data: it counts the tuples and pieces it touches
//! and leaves cost charging to the execution operators in `rqp-exec`. The
//! one exception is the buffer pool, whose re-faults and injected page-I/O
//! retries are charged where they happen so the pager's degradation is
//! deterministic no matter which operator pinned the page.

#![warn(missing_docs)]

pub mod amerge;
pub mod catalog;
pub mod changelog;
pub mod column;
pub mod crack;
pub mod index;
pub mod multi_index;
pub mod pool;
pub mod shared_scan;
pub mod table;

pub use amerge::AdaptiveMergeIndex;
pub use catalog::{Catalog, CatalogSnapshot};
pub use changelog::{ChangeOp, ChangeRecord, Changelog};
pub use column::ColumnData;
pub use crack::CrackerColumn;
pub use index::BTreeIndex;
pub use multi_index::MultiIndex;
pub use pool::{BufferPool, PagePin, PagerStats, PinOutcome};
pub use shared_scan::SharedScanCoordinator;
pub use table::{StrEncoding, Table};

/// Row identifier within a table (position in insertion order).
pub type RowId = usize;
