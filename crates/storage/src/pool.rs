//! The paged buffer pool: fixed-size pages over column data, pin/unpin
//! accounting, and clock (second-chance) eviction.
//!
//! The testbed's tables stay physically resident (this is a simulator), but
//! *logically* every scan must now pin the page it reads through a
//! [`BufferPool`] whose frame budget is a brokered resource. The pool tracks
//! residency per `(table, page)` key, evicts with the classic clock sweep,
//! and charges the deterministic cost clock for exactly the work a real
//! pager would add:
//!
//! * a **hit** (page resident) charges nothing — the scan's own sequential
//!   page charge already covers the read;
//! * a **cold load** (first-ever fault of a page) also charges nothing
//!   extra, because that first read *is* the sequential read the scan
//!   charged — this is what keeps paged execution bit-identical to the
//!   pre-pool engine whenever the budget covers the data;
//! * a **re-fault** (reloading a page that was evicted) charges one random
//!   page — the only cost the pool ever adds, so constraining the budget
//!   degrades cost smoothly and measurably;
//! * an injected **page-I/O fault** (chaos `page_io_fault`, keyed by the
//!   absolute page index so it is worker-count invariant) charges one random
//!   page per retry and escalates to a fatal error past the retry budget.
//!
//! Pins are released by [`PagePin`]'s `Drop`, so early termination, cancel,
//! and disconnect paths cannot leak them; a pool whose frames are all pinned
//! when a new page faults surfaces [`RqpError::PageBudgetExhausted`] — a
//! typed, non-retryable error, never a panic from the pool itself.

use rqp_common::{ChaosPolicy, Result, RqpError, SharedClock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of one logical page: the table's stable FNV key (survives
/// catalog snapshots rebuilding `Table` handles) plus the absolute page
/// index within the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageKey {
    /// Stable table key ([`ChaosPolicy::table_key`] of the name).
    pub table: u64,
    /// Absolute page index (`row / rows_per_page`).
    pub page: u64,
}

/// Per-frame state: pin count plus the clock sweep's reference bit.
#[derive(Debug)]
struct FrameState {
    pins: u32,
    referenced: bool,
}

#[derive(Debug)]
struct PoolInner {
    /// Frame budget (resident-page capacity), always ≥ 1.
    budget: usize,
    /// Resident pages.
    frames: HashMap<PageKey, FrameState>,
    /// Clock order over resident pages; kept in sync with `frames`.
    ring: Vec<PageKey>,
    /// Clock hand: index into `ring` of the next sweep candidate.
    hand: usize,
    /// Every page ever loaded — distinguishes cold loads from re-faults.
    ever_loaded: HashSet<PageKey>,
    /// Per-table eviction epochs; bumped whenever one of the table's pages
    /// is evicted, so derived structures (the memoized `StrEncoding`) can
    /// invalidate coherently.
    table_epochs: HashMap<u64, u64>,
}

/// Counter snapshot of a pool's activity since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Pins that found the page resident.
    pub hits: u64,
    /// First-ever page loads (free: covered by the scan's own charge).
    pub cold_loads: u64,
    /// Reloads of previously evicted pages (each charged one random page).
    pub refaults: u64,
    /// Pages evicted by the clock sweep (pressure or budget shrink).
    pub evictions: u64,
    /// Injected page-I/O faults retried (each charged one random page).
    pub io_retries: u64,
    /// Frames dropped by targeted invalidation (an append mutated the
    /// page); not evictions — the table's epoch is deliberately untouched.
    pub invalidations: u64,
}

impl PagerStats {
    /// Total page loads — cold loads plus re-faults.
    pub fn faults(&self) -> u64 {
        self.cold_loads + self.refaults
    }

    /// Fraction of pins served from resident frames; 1.0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let accesses = self.hits + self.faults();
        if accesses == 0 {
            1.0
        } else {
            self.hits as f64 / accesses as f64
        }
    }
}

/// What one [`BufferPool::pin`] call did, for the caller's telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinOutcome {
    /// The page was already resident.
    pub hit: bool,
    /// The load was a re-fault of an evicted page (one random page charged).
    pub refault: bool,
    /// Injected page-I/O faults retried before the load succeeded.
    pub retries: u32,
}

/// The shared buffer pool. See the module docs for the charging contract.
#[derive(Debug)]
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    cold_loads: AtomicU64,
    refaults: AtomicU64,
    evictions: AtomicU64,
    io_retries: AtomicU64,
    invalidations: AtomicU64,
    /// Budget epoch: bumped on every shrink, like the memory governor's
    /// pressure epoch, so consumers can renegotiate mid-drain.
    epoch: AtomicU64,
}

impl BufferPool {
    /// A pool with a frame budget of `pages` (clamped to at least one frame
    /// so a lone scan can always make progress).
    pub fn new(pages: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool {
            inner: Mutex::new(PoolInner {
                budget: pages.max(1),
                frames: HashMap::new(),
                ring: Vec::new(),
                hand: 0,
                ever_loaded: HashSet::new(),
                table_epochs: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            cold_loads: AtomicU64::new(0),
            refaults: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            io_retries: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        })
    }

    /// Pin `page` of `table`, faulting it in if necessary. Charges `clock`
    /// per the module-level contract and draws injected page-I/O faults from
    /// `chaos`. The returned [`PagePin`] releases the pin on drop.
    ///
    /// Errors: [`RqpError::PageBudgetExhausted`] when every frame is pinned
    /// and none can be evicted, or a fatal [`RqpError::Execution`] when the
    /// chaos retry budget is exhausted.
    pub fn pin(
        self: &Arc<Self>,
        table: &str,
        page: u64,
        clock: &SharedClock,
        chaos: &ChaosPolicy,
    ) -> Result<(PagePin, PinOutcome)> {
        let key = PageKey { table: ChaosPolicy::table_key(table), page };
        let mut inner = self.inner.lock().unwrap();
        if let Some(frame) = inner.frames.get_mut(&key) {
            frame.pins += 1;
            frame.referenced = true;
            self.hits.fetch_add(1, Ordering::Relaxed);
            let pin = PagePin { pool: Arc::clone(self), key };
            return Ok((pin, PinOutcome { hit: true, refault: false, retries: 0 }));
        }
        // Make room: evict until a frame is free, or report exhaustion if
        // everything resident is pinned.
        while inner.frames.len() >= inner.budget {
            match evict_one(&mut inner) {
                Some(victim) => {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    *inner.table_epochs.entry(victim.table).or_insert(0) += 1;
                }
                None => {
                    let pinned = inner.frames.values().filter(|f| f.pins > 0).count();
                    return Err(RqpError::PageBudgetExhausted { pinned, budget: inner.budget });
                }
            }
        }
        // Injected transient page-I/O faults: keyed by the absolute page
        // index and the attempt number, so the retry trace is invariant
        // under worker count and partitioning.
        let mut retries = 0u32;
        while chaos.page_io_fault(key.table, page, retries) {
            let err = RqpError::PageIo { site: format!("{table}/{page}"), attempt: retries };
            if retries >= chaos.page_max_retries() {
                return Err(RqpError::Execution(format!("page retries exhausted: {err}")));
            }
            debug_assert!(err.is_retryable());
            retries += 1;
            clock.charge_random_pages(1.0);
            self.io_retries.fetch_add(1, Ordering::Relaxed);
        }
        // The load: a cold load is the read the scan already charged; a
        // re-fault re-reads an evicted page and charges one random page.
        let refault = !inner.ever_loaded.insert(key);
        if refault {
            clock.charge_random_pages(1.0);
            self.refaults.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cold_loads.fetch_add(1, Ordering::Relaxed);
        }
        inner.frames.insert(key, FrameState { pins: 1, referenced: true });
        inner.ring.push(key);
        let pin = PagePin { pool: Arc::clone(self), key };
        Ok((pin, PinOutcome { hit: false, refault, retries }))
    }

    /// Retarget the frame budget (clamped to ≥ 1). A shrink bumps the
    /// budget epoch and evicts cold pages down to the new budget; pinned
    /// pages are never evicted. Returns `true` when pinned pages alone
    /// exceed the new budget — the pool is overcommitted until pins drop.
    pub fn set_budget(&self, pages: usize) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let pages = pages.max(1);
        if pages < inner.budget {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
        inner.budget = pages;
        while inner.frames.len() > inner.budget {
            match evict_one(&mut inner) {
                Some(victim) => {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    *inner.table_epochs.entry(victim.table).or_insert(0) += 1;
                }
                None => break,
            }
        }
        inner.frames.len() > inner.budget
    }

    /// Current frame budget.
    pub fn budget(&self) -> usize {
        self.inner.lock().unwrap().budget
    }

    /// Total outstanding pins across all frames.
    pub fn pins(&self) -> usize {
        self.inner.lock().unwrap().frames.values().map(|f| f.pins as usize).sum()
    }

    /// Resident pages.
    pub fn resident(&self) -> usize {
        self.inner.lock().unwrap().frames.len()
    }

    /// Budget epoch: bumped on every shrink (cf. the governor's pressure
    /// epoch).
    pub fn budget_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Eviction epoch of one table (by its stable key): bumped every time a
    /// page of that table is evicted. The memoized `StrEncoding` tags itself
    /// with this and rebuilds when it moves.
    pub fn evict_epoch(&self, table_key: u64) -> u64 {
        self.inner.lock().unwrap().table_epochs.get(&table_key).copied().unwrap_or(0)
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> PagerStats {
        PagerStats {
            hits: self.hits.load(Ordering::Relaxed),
            cold_loads: self.cold_loads.load(Ordering::Relaxed),
            refaults: self.refaults.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Drop the resident frame for one page of one table because the page's
    /// content changed (an append landed in it). This is *not* an eviction:
    /// the table's eviction epoch is untouched (the memoized `StrEncoding`
    /// extends itself incrementally and must not see a spurious epoch bump),
    /// no eviction is counted, and every other frame — including unrelated
    /// tables' cold pages — keeps its place in the clock ring. The page
    /// stays in `ever_loaded`, so the next pin charges an honest re-fault
    /// for re-reading the mutated page. A pinned frame is left alone (the
    /// reader keeps its snapshot); returns whether a frame was dropped.
    pub fn invalidate_page(&self, table_key: u64, page: u64) -> bool {
        let key = PageKey { table: table_key, page };
        let mut inner = self.inner.lock().unwrap();
        match inner.frames.get(&key) {
            Some(frame) if frame.pins == 0 => {
                inner.frames.remove(&key);
                let pos = inner.ring.iter().position(|k| *k == key).expect("ring in sync");
                inner.ring.remove(pos);
                if pos < inner.hand {
                    inner.hand -= 1;
                }
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

/// Clock (second-chance) sweep: skip pinned frames, clear reference bits on
/// the first pass, evict the first unreferenced unpinned frame. `None` when
/// every frame is pinned.
fn evict_one(inner: &mut PoolInner) -> Option<PageKey> {
    if inner.ring.is_empty() {
        return None;
    }
    // Two full revolutions bound the sweep: the first clears every
    // reference bit, the second must find any unpinned frame.
    let max_steps = inner.ring.len() * 2;
    for _ in 0..max_steps {
        if inner.hand >= inner.ring.len() {
            inner.hand = 0;
        }
        let key = inner.ring[inner.hand];
        let frame = inner.frames.get_mut(&key).expect("ring and frames in sync");
        if frame.pins > 0 {
            inner.hand += 1;
        } else if frame.referenced {
            frame.referenced = false;
            inner.hand += 1;
        } else {
            inner.frames.remove(&key);
            inner.ring.remove(inner.hand);
            return Some(key);
        }
    }
    None
}

/// A held pin on one page. Dropping it releases the pin — scans hold their
/// current page's pin in a field, so early termination, cancellation, and
/// disconnect all release through ordinary unwinding.
#[derive(Debug)]
pub struct PagePin {
    pool: Arc<BufferPool>,
    key: PageKey,
}

impl PagePin {
    /// The pinned page's key.
    pub fn key(&self) -> PageKey {
        self.key
    }
}

impl Drop for PagePin {
    fn drop(&mut self) {
        let mut inner = self.pool.inner.lock().unwrap();
        if let Some(frame) = inner.frames.get_mut(&self.key) {
            debug_assert!(frame.pins > 0, "double-release of a page pin");
            frame.pins = frame.pins.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::{ChaosConfig, CostClock};

    fn pin_n(
        pool: &Arc<BufferPool>,
        pages: std::ops::Range<u64>,
        clock: &SharedClock,
    ) -> Vec<PagePin> {
        let off = ChaosPolicy::off();
        pages
            .map(|p| pool.pin("t", p, clock, &off).expect("pin").0)
            .collect()
    }

    #[test]
    fn hits_and_cold_loads_charge_nothing() {
        let pool = BufferPool::new(8);
        let clock = CostClock::default_clock();
        let off = ChaosPolicy::off();
        for p in 0..8 {
            let (pin, out) = pool.pin("t", p, &clock, &off).unwrap();
            assert!(!out.hit && !out.refault && out.retries == 0);
            drop(pin);
        }
        let (_pin, out) = pool.pin("t", 3, &clock, &off).unwrap();
        assert!(out.hit);
        assert_eq!(clock.now(), 0.0, "hits and cold loads are free");
        let s = pool.stats();
        assert_eq!((s.hits, s.cold_loads, s.refaults, s.evictions), (1, 8, 0, 0));
        assert_eq!(s.hit_rate(), 1.0 / 9.0);
    }

    #[test]
    fn refaults_charge_one_random_page_and_bump_the_table_epoch() {
        let pool = BufferPool::new(2);
        let clock = CostClock::default_clock();
        let off = ChaosPolicy::off();
        let tk = ChaosPolicy::table_key("t");
        // Load 0, 1; loading 2 evicts; re-pinning the victim re-faults.
        for p in 0..3 {
            drop(pool.pin("t", p, &clock, &off).unwrap());
        }
        assert_eq!(pool.resident(), 2);
        assert_eq!(pool.stats().evictions, 1);
        assert!(pool.evict_epoch(tk) >= 1);
        assert_eq!(clock.breakdown().rand_io, 0.0, "cold loads are free");
        // Page 0 was the clock victim (oldest, unreferenced after sweep).
        let before = clock.breakdown().rand_io;
        let (_pin, out) = pool.pin("t", 0, &clock, &off).unwrap();
        assert!(out.refault);
        assert!(clock.breakdown().rand_io > before, "re-fault charges a random page");
        assert_eq!(pool.stats().refaults, 1);
    }

    #[test]
    fn pinned_frames_survive_the_sweep_and_exhaust_typed() {
        let pool = BufferPool::new(2);
        let clock = CostClock::default_clock();
        let held = pin_n(&pool, 0..2, &clock);
        assert_eq!(pool.pins(), 2);
        let off = ChaosPolicy::off();
        let err = pool.pin("t", 9, &clock, &off).unwrap_err();
        assert_eq!(err, RqpError::PageBudgetExhausted { pinned: 2, budget: 2 });
        assert!(err.is_fatal());
        drop(held);
        assert_eq!(pool.pins(), 0);
        // With the pins released the same pin now succeeds by evicting.
        assert!(pool.pin("t", 9, &clock, &off).is_ok());
    }

    #[test]
    fn clock_sweep_gives_referenced_pages_a_second_chance() {
        let pool = BufferPool::new(3);
        let clock = CostClock::default_clock();
        let off = ChaosPolicy::off();
        for p in 0..3 {
            drop(pool.pin("t", p, &clock, &off).unwrap());
        }
        // Fresh loads all carry set reference bits, so the first pressure
        // sweep clears every bit and evicts the ring head (page 0)…
        drop(pool.pin("t", 3, &clock, &off).unwrap());
        assert_eq!(pool.stats().evictions, 1);
        assert!(pool.pin("t", 1, &clock, &off).unwrap().1.hit, "1 survived");
        // …which also re-referenced page 1. Page 2's bit is still clear, so
        // the next eviction gives 1 its second chance and takes 2 instead.
        drop(pool.pin("t", 4, &clock, &off).unwrap());
        assert_eq!(pool.stats().evictions, 2);
        assert!(pool.pin("t", 1, &clock, &off).unwrap().1.hit, "referenced page survived");
        assert!(pool.pin("t", 3, &clock, &off).unwrap().1.hit, "recent load survived");
        assert!(pool.pin("t", 2, &clock, &off).unwrap().1.refault, "unreferenced page evicted");
    }

    #[test]
    fn shrink_evicts_cold_pages_bumps_epoch_and_reports_overcommit() {
        let pool = BufferPool::new(4);
        let clock = CostClock::default_clock();
        let held = pin_n(&pool, 0..2, &clock);
        let _cold = pin_n(&pool, 2..4, &clock); // dropped immediately below
        drop(_cold);
        assert_eq!(pool.resident(), 4);
        let e0 = pool.budget_epoch();
        // Shrink to 3: one cold page goes, no overcommit.
        assert!(!pool.set_budget(3));
        assert_eq!(pool.resident(), 3);
        assert!(pool.budget_epoch() > e0, "shrink bumps the epoch");
        // Shrink to 1: only the two pinned pages remain — overcommitted.
        assert!(pool.set_budget(1));
        assert_eq!(pool.resident(), 2);
        assert_eq!(pool.pins(), 2);
        // Growing back is not an epoch bump and reports no overcommit.
        let e1 = pool.budget_epoch();
        assert!(!pool.set_budget(8));
        assert_eq!(pool.budget_epoch(), e1);
        drop(held);
    }

    #[test]
    fn chaos_page_faults_retry_with_charges_and_escalate_past_budget() {
        let clock = CostClock::default_clock();
        // Rate 1.0: every attempt faults, so the retry budget must exhaust
        // with one random-page charge per retry burned on the way.
        let always = ChaosPolicy::new(ChaosConfig {
            page_fault_rate: 1.0,
            page_max_retries: 3,
            ..ChaosConfig::off()
        });
        let pool = BufferPool::new(4);
        let err = pool.pin("t", 0, &clock, &always).unwrap_err();
        assert!(matches!(err, RqpError::Execution(ref m) if m.contains("page retries exhausted")));
        assert_eq!(pool.stats().io_retries, 3);
        assert!(clock.breakdown().rand_io > 0.0);
        // A moderate rate recovers: some page loads see a fault on attempt 0
        // and succeed on a redraw.
        let sometimes = ChaosPolicy::new(ChaosConfig {
            page_fault_rate: 0.4,
            page_max_retries: 8,
            ..ChaosConfig::off()
        });
        let pool = BufferPool::new(64);
        let mut retried = 0;
        for p in 0..50 {
            let (_pin, out) = pool.pin("t", p, &clock, &sometimes).expect("retries recover");
            retried += out.retries;
        }
        assert!(retried > 0, "40% fault rate must retry somewhere");
        assert_eq!(pool.stats().io_retries as u32, retried);
    }

    #[test]
    fn invalidate_page_drops_one_frame_without_epoch_or_eviction() {
        let pool = BufferPool::new(4);
        let clock = CostClock::default_clock();
        let off = ChaosPolicy::off();
        let tk = ChaosPolicy::table_key("t");
        for p in 0..3 {
            drop(pool.pin("t", p, &clock, &off).unwrap());
        }
        // Dropping a resident unpinned frame: counted as an invalidation,
        // not an eviction, and the table epoch holds.
        assert!(pool.invalidate_page(tk, 1));
        let s = pool.stats();
        assert_eq!((s.invalidations, s.evictions), (1, 0));
        assert_eq!(pool.evict_epoch(tk), 0);
        assert_eq!(pool.resident(), 2);
        // Not resident (already dropped, or never loaded): no-op.
        assert!(!pool.invalidate_page(tk, 1));
        assert!(!pool.invalidate_page(tk, 99));
        // A pinned frame is left alone — the reader keeps its snapshot.
        let (held, _) = pool.pin("t", 0, &clock, &off).unwrap();
        assert!(!pool.invalidate_page(tk, 0));
        assert_eq!(pool.resident(), 2);
        drop(held);
        // Re-pinning the invalidated page charges an honest re-fault.
        let (_pin, out) = pool.pin("t", 1, &clock, &off).unwrap();
        assert!(out.refault);
        // The clock ring stays coherent: pressure eviction still works.
        for p in 10..16 {
            drop(pool.pin("t", p, &clock, &off).unwrap());
        }
        assert_eq!(pool.resident(), 4);
        assert!(pool.stats().evictions > 0);
    }

    #[test]
    fn pins_are_reentrant_and_drop_releases_in_any_order() {
        let pool = BufferPool::new(2);
        let clock = CostClock::default_clock();
        let off = ChaosPolicy::off();
        let a = pool.pin("t", 0, &clock, &off).unwrap().0;
        let b = pool.pin("t", 0, &clock, &off).unwrap().0;
        assert_eq!(pool.pins(), 2);
        assert_eq!(a.key(), b.key());
        drop(a);
        assert_eq!(pool.pins(), 1);
        drop(b);
        assert_eq!(pool.pins(), 0);
    }
}
