//! Typed column vectors.

use rqp_common::{DataType, Value};
use std::collections::BTreeSet;

/// A column of values, stored in a typed vector.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Integer column.
    Int(Vec<i64>),
    /// Float column.
    Float(Vec<f64>),
    /// String column.
    Str(Vec<String>),
}

impl ColumnData {
    /// An empty column of the given type.
    pub fn empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
        }
    }

    /// An empty column with reserved capacity.
    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        match dtype {
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            DataType::Str => ColumnData::Str(Vec::with_capacity(cap)),
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at row `i` (panics if out of bounds).
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
        }
    }

    /// Append a value; panics on type mismatch (loading is programmatic, so a
    /// mismatch is a bug in the generator, not a user error).
    pub fn push(&mut self, v: Value) {
        match (self, v) {
            (ColumnData::Int(col), Value::Int(x)) => col.push(x),
            (ColumnData::Float(col), Value::Float(x)) => col.push(x),
            (ColumnData::Float(col), Value::Int(x)) => col.push(x as f64),
            (ColumnData::Str(col), Value::Str(x)) => col.push(x),
            (col, v) => panic!(
                "type mismatch pushing {:?} into {:?} column",
                v.data_type(),
                col.data_type()
            ),
        }
    }

    /// Remove and return the value at row `i`, shifting later rows up
    /// (panics if out of bounds). O(n) — deletes are a changelog-visible
    /// maintenance path, not a scan-speed path.
    pub fn remove(&mut self, i: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v.remove(i)),
            ColumnData::Float(v) => Value::Float(v.remove(i)),
            ColumnData::Str(v) => Value::Str(v.remove(i)),
        }
    }

    /// Minimum value, or `None` if empty.
    pub fn min(&self) -> Option<Value> {
        match self {
            ColumnData::Int(v) => v.iter().min().map(|&x| Value::Int(x)),
            ColumnData::Float(v) => v
                .iter()
                .copied()
                .min_by(f64::total_cmp)
                .map(Value::Float),
            ColumnData::Str(v) => v.iter().min().map(|s| Value::Str(s.clone())),
        }
    }

    /// Maximum value, or `None` if empty.
    pub fn max(&self) -> Option<Value> {
        match self {
            ColumnData::Int(v) => v.iter().max().map(|&x| Value::Int(x)),
            ColumnData::Float(v) => v
                .iter()
                .copied()
                .max_by(f64::total_cmp)
                .map(Value::Float),
            ColumnData::Str(v) => v.iter().max().map(|s| Value::Str(s.clone())),
        }
    }

    /// Exact number of distinct values (O(n log n); used when gathering
    /// statistics, not on the query path).
    pub fn distinct_count(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.iter().collect::<BTreeSet<_>>().len(),
            ColumnData::Float(v) => v
                .iter()
                .map(|f| f.to_bits())
                .collect::<BTreeSet<_>>()
                .len(),
            ColumnData::Str(v) => v.iter().collect::<BTreeSet<_>>().len(),
        }
    }

    /// Integer slice view (None for non-int columns).
    pub fn as_int_slice(&self) -> Option<&[i64]> {
        match self {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Float slice view (None for non-float columns).
    pub fn as_float_slice(&self) -> Option<&[f64]> {
        match self {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }

    /// String slice view (None for non-string columns). Batch scans use
    /// this to dictionary-encode a range of rows without per-row `Value`
    /// materialization.
    pub fn as_str_slice(&self) -> Option<&[String]> {
        match self {
            ColumnData::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Iterate values as [`Value`]s (allocates per string row).
    pub fn iter_values(&self) -> Box<dyn Iterator<Item = Value> + '_> {
        match self {
            ColumnData::Int(v) => Box::new(v.iter().map(|&x| Value::Int(x))),
            ColumnData::Float(v) => Box::new(v.iter().map(|&x| Value::Float(x))),
            ColumnData::Str(v) => Box::new(v.iter().map(|s| Value::Str(s.clone()))),
        }
    }
}

impl From<Vec<i64>> for ColumnData {
    fn from(v: Vec<i64>) -> Self {
        ColumnData::Int(v)
    }
}
impl From<Vec<f64>> for ColumnData {
    fn from(v: Vec<f64>) -> Self {
        ColumnData::Float(v)
    }
}
impl From<Vec<String>> for ColumnData {
    fn from(v: Vec<String>) -> Self {
        ColumnData::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut c = ColumnData::empty(DataType::Int);
        c.push(Value::Int(3));
        c.push(Value::Int(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Value::Int(1));
    }

    #[test]
    fn int_coerces_into_float_column() {
        let mut c = ColumnData::empty(DataType::Float);
        c.push(Value::Int(2));
        assert_eq!(c.get(0), Value::Float(2.0));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn push_wrong_type_panics() {
        let mut c = ColumnData::empty(DataType::Int);
        c.push(Value::Str("x".into()));
    }

    #[test]
    fn min_max_distinct() {
        let c: ColumnData = vec![5i64, 1, 5, 9, 1].into();
        assert_eq!(c.min(), Some(Value::Int(1)));
        assert_eq!(c.max(), Some(Value::Int(9)));
        assert_eq!(c.distinct_count(), 3);
        let empty = ColumnData::empty(DataType::Float);
        assert_eq!(empty.min(), None);
    }

    #[test]
    fn float_min_max_total_order() {
        let c: ColumnData = vec![2.5f64, -1.0, 7.25].into();
        assert_eq!(c.min(), Some(Value::Float(-1.0)));
        assert_eq!(c.max(), Some(Value::Float(7.25)));
    }

    #[test]
    fn iter_values_matches_get() {
        let c: ColumnData = vec!["b".to_string(), "a".to_string()].into();
        let vals: Vec<Value> = c.iter_values().collect();
        assert_eq!(vals, vec![Value::Str("b".into()), Value::Str("a".into())]);
        assert_eq!(c.distinct_count(), 2);
    }
}
