//! Epoch-sequenced table changelog: the feed standing subscriptions drain.
//!
//! Every mutation on a [`Table`](crate::table::Table) with an attached
//! changelog publishes one [`ChangeRecord`] carrying a monotonically
//! increasing epoch. The changelog is deliberately dumb — an append-only
//! log behind a mutex — because correctness of incremental view
//! maintenance hinges on one property only: **every consumer sees the same
//! records in the same total order**. Consumers keep a cursor (the epoch
//! of the next unseen record) and poll with [`Changelog::since`]; the
//! stream circuit in `rqp-stream` folds the drained records into its
//! operator state.
//!
//! The log is shared by `Arc` across copy-on-write table clones (exactly
//! like the buffer pool attachment), so a service that mutates through
//! `Catalog::table_mut` keeps publishing into the same feed its
//! subscribers read.

use rqp_common::Row;
use std::sync::Mutex;

/// What happened to the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeOp {
    /// Row appended.
    Insert,
    /// Row deleted.
    Delete,
}

/// One published table mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeRecord {
    /// Position in the total mutation order (starts at 0, increments by 1).
    pub epoch: u64,
    /// Table the mutation applied to.
    pub table: String,
    /// Insert or delete.
    pub op: ChangeOp,
    /// The full row (unqualified column order, as stored).
    pub row: Row,
}

#[derive(Debug, Default)]
struct LogInner {
    entries: Vec<ChangeRecord>,
    next_epoch: u64,
}

/// An append-only, epoch-sequenced mutation log shared by every clone of
/// a table (and, when attached through the catalog, by every table in a
/// service snapshot — epochs are then totally ordered *across* tables,
/// which is what lets a multi-table join circuit replay interleaved
/// mutations deterministically).
#[derive(Debug, Default)]
pub struct Changelog {
    inner: Mutex<LogInner>,
}

impl Changelog {
    /// An empty changelog at epoch 0.
    pub fn new() -> Self {
        Changelog::default()
    }

    /// Publish an insert of `row` into `table`; returns the record's epoch.
    pub fn publish_insert(&self, table: &str, row: Row) -> u64 {
        self.publish(table, ChangeOp::Insert, row)
    }

    /// Publish a delete of `row` from `table`; returns the record's epoch.
    pub fn publish_delete(&self, table: &str, row: Row) -> u64 {
        self.publish(table, ChangeOp::Delete, row)
    }

    fn publish(&self, table: &str, op: ChangeOp, row: Row) -> u64 {
        let mut g = self.inner.lock().unwrap();
        let epoch = g.next_epoch;
        g.next_epoch += 1;
        g.entries.push(ChangeRecord { epoch, table: table.to_owned(), op, row });
        epoch
    }

    /// All records with `epoch >= cursor`, plus the new cursor (one past
    /// the last record in the log). A consumer that stores the returned
    /// cursor and polls again sees each record exactly once.
    pub fn since(&self, cursor: u64) -> (Vec<ChangeRecord>, u64) {
        let g = self.inner.lock().unwrap();
        let start = cursor.min(g.next_epoch) as usize;
        (g.entries[start..].to_vec(), g.next_epoch)
    }

    /// Number of records published so far (== the next epoch).
    pub fn len(&self) -> u64 {
        self.inner.lock().unwrap().next_epoch
    }

    /// True if nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::Value;

    fn row(i: i64) -> Row {
        vec![Value::Int(i)]
    }

    #[test]
    fn epochs_are_dense_and_ordered() {
        let log = Changelog::new();
        assert!(log.is_empty());
        assert_eq!(log.publish_insert("t", row(1)), 0);
        assert_eq!(log.publish_delete("t", row(1)), 1);
        assert_eq!(log.publish_insert("u", row(2)), 2);
        assert_eq!(log.len(), 3);
        let (recs, cur) = log.since(0);
        assert_eq!(cur, 3);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].op, ChangeOp::Insert);
        assert_eq!(recs[1].op, ChangeOp::Delete);
        assert_eq!(recs[2].table, "u");
        assert!(recs.windows(2).all(|w| w[0].epoch + 1 == w[1].epoch));
    }

    #[test]
    fn cursor_sees_each_record_exactly_once() {
        let log = Changelog::new();
        log.publish_insert("t", row(1));
        let (first, cur) = log.since(0);
        assert_eq!(first.len(), 1);
        let (none, cur2) = log.since(cur);
        assert!(none.is_empty());
        assert_eq!(cur2, cur);
        log.publish_insert("t", row(2));
        let (second, _) = log.since(cur2);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].row, row(2));
    }

    #[test]
    fn cursor_past_end_is_clamped() {
        let log = Changelog::new();
        log.publish_insert("t", row(1));
        let (recs, cur) = log.since(99);
        assert!(recs.is_empty());
        assert_eq!(cur, 1);
    }
}
