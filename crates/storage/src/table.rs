//! Tables: named collections of equal-length columns.

use crate::changelog::Changelog;
use crate::column::ColumnData;
use crate::pool::BufferPool;
use crate::RowId;
use rqp_common::{ChaosPolicy, CostModelParams, Result, Row, RqpError, Schema, Value};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A storage-resident dictionary encoding of one string column: the distinct
/// values in first-appearance order plus one dense local code per row.
///
/// Built lazily by [`Table::str_encoding`] and memoized (any append
/// invalidates it, and so does any buffer-pool eviction of the table's
/// pages — the memo is tagged with the pool's per-table eviction epoch), so
/// batch scans translate small integer codes instead of re-hashing every
/// string cell on every scan. Local codes are private to the table; scans
/// map them into their pipeline's shared `StringDict` through a
/// per-distinct-value translation table.
#[derive(Debug)]
pub struct StrEncoding {
    /// Distinct values, indexed by local code.
    pub values: Vec<String>,
    /// One local code per row: `values[codes[i] as usize] == column[i]`.
    pub codes: Vec<u32>,
}

/// A memoized column encoding tagged with the pool eviction epoch it was
/// built under (0 when no pool is attached).
type EncodingMemo = Mutex<Option<(u64, Arc<StrEncoding>)>>;

/// An in-memory table stored column-wise.
///
/// The schema's field names are *unqualified* (`"quantity"`); scans qualify
/// them with the table name so joins don't collide.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<ColumnData>,
    nrows: usize,
    /// Per-column memoized encoding, tagged with the pool eviction epoch it
    /// was built under (0 when no pool is attached).
    encodings: Vec<EncodingMemo>,
    /// The buffer pool scans of this table pin pages through; `None` means
    /// legacy always-resident behavior.
    pager: Mutex<Option<Arc<BufferPool>>>,
    /// The changelog mutations publish into; `None` means no subscribers.
    /// Shared by `Arc` across copy-on-write clones, like the pager.
    changelog: Mutex<Option<Arc<Changelog>>>,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: self.columns.clone(),
            nrows: self.nrows,
            encodings: self
                .encodings
                .iter()
                .map(|e| Mutex::new(e.lock().unwrap().clone()))
                .collect(),
            pager: Mutex::new(self.pager.lock().unwrap().clone()),
            changelog: Mutex::new(self.changelog.lock().unwrap().clone()),
        }
    }
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns: Vec<ColumnData> = schema
            .fields()
            .iter()
            .map(|f| ColumnData::empty(f.dtype))
            .collect();
        let encodings = (0..columns.len()).map(|_| Mutex::new(None)).collect();
        Table {
            name: name.into(),
            schema,
            columns,
            nrows: 0,
            encodings,
            pager: Mutex::new(None),
            changelog: Mutex::new(None),
        }
    }

    /// Create a table directly from columns (must be equal length and match
    /// the schema's types).
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<ColumnData>,
    ) -> Result<Self> {
        if columns.len() != schema.len() {
            return Err(RqpError::Invalid(format!(
                "schema has {} fields but {} columns supplied",
                schema.len(),
                columns.len()
            )));
        }
        let nrows = columns.first().map(|c| c.len()).unwrap_or(0);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != nrows {
                return Err(RqpError::Invalid(format!(
                    "column {i} has {} rows, expected {nrows}",
                    c.len()
                )));
            }
            if c.data_type() != schema.field(i).dtype {
                return Err(RqpError::TypeMismatch {
                    expected: schema.field(i).dtype.to_string(),
                    got: c.data_type().to_string(),
                });
            }
        }
        let encodings = (0..columns.len()).map(|_| Mutex::new(None)).collect();
        Ok(Table {
            name: name.into(),
            schema,
            columns,
            nrows,
            encodings,
            pager: Mutex::new(None),
            changelog: Mutex::new(None),
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stable pool/chaos key of this table (FNV-1a of the name), shared
    /// by every `Table` handle for the same name across catalog snapshots.
    pub fn table_key(&self) -> u64 {
        ChaosPolicy::table_key(&self.name)
    }

    /// Attach (or replace) the buffer pool scans pin this table's pages
    /// through. Interior-mutable so a shared `Arc<Table>` can be wired after
    /// catalog construction.
    pub fn attach_pool(&self, pool: &Arc<BufferPool>) {
        *self.pager.lock().unwrap() = Some(Arc::clone(pool));
    }

    /// The attached buffer pool, if any.
    pub fn pager(&self) -> Option<Arc<BufferPool>> {
        self.pager.lock().unwrap().clone()
    }

    /// Attach (or replace) the changelog mutations publish into. Interior-
    /// mutable so a shared `Arc<Table>` can be wired after construction;
    /// copy-on-write clones share the same log, so writes through
    /// `Catalog::table_mut` keep feeding subscribers holding old snapshots.
    pub fn attach_changelog(&self, log: &Arc<Changelog>) {
        *self.changelog.lock().unwrap() = Some(Arc::clone(log));
    }

    /// The attached changelog, if any.
    pub fn changelog(&self) -> Option<Arc<Changelog>> {
        self.changelog.lock().unwrap().clone()
    }

    /// Unqualified schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Schema with every field qualified as `table.column`.
    pub fn qualified_schema(&self) -> Schema {
        self.schema.qualify(&self.name)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Column by position.
    pub fn column(&self, i: usize) -> &ColumnData {
        &self.columns[i]
    }

    /// Column by name: exact match first (fields of materialized temp tables
    /// keep their original qualified names), then the unqualified suffix.
    pub fn column_by_name(&self, name: &str) -> Result<&ColumnData> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// Index of a column by (unqualified or qualified) name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        if let Ok(i) = self.schema.index_of(name) {
            return Ok(i);
        }
        let unq = name.rsplit_once('.').map(|(_, c)| c).unwrap_or(name);
        self.schema.index_of(unq)
    }

    /// Materialize row `id` (panics if out of bounds).
    pub fn row(&self, id: RowId) -> Row {
        self.columns.iter().map(|c| c.get(id)).collect()
    }

    /// Append one row (panics on arity/type mismatch — loading is
    /// programmatic).
    ///
    /// Appends are *incremental* with respect to the caches hanging off this
    /// table: memoized [`StrEncoding`]s are left in place (they record how
    /// many rows they cover; [`str_encoding`](Self::str_encoding) extends
    /// them lazily with only the new rows' codes) and only the buffer-pool
    /// frame of the page the row landed in is dropped — the rest of the
    /// resident set survives, so a subscription-heavy append loop doesn't
    /// thrash unrelated cold pages.
    pub fn append(&mut self, row: Row) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        let published = self
            .changelog
            .get_mut()
            .unwrap()
            .is_some()
            .then(|| row.clone());
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.nrows += 1;
        // The appended row lands in the table's last page: any cached frame
        // for that page is stale, every other page is untouched.
        let key = self.table_key();
        if let Some(pool) = self.pager.get_mut().unwrap().as_deref() {
            let rpp = CostModelParams::default().rows_per_page.max(1.0) as usize;
            pool.invalidate_page(key, ((self.nrows - 1) / rpp) as u64);
        }
        if let Some(row) = published {
            if let Some(log) = self.changelog.get_mut().unwrap().as_deref() {
                log.publish_insert(&self.name, row);
            }
        }
    }

    /// Delete row `id`, shifting later rows up; returns the removed row and
    /// publishes it to the attached changelog. Deletes are a maintenance
    /// path: the whole encoding memo and the table's resident pages are
    /// invalidated, since every row at or after `id` moves.
    pub fn delete_row(&mut self, id: RowId) -> Row {
        assert!(id < self.nrows, "delete_row out of bounds");
        let row: Row = self.columns.iter_mut().map(|c| c.remove(id)).collect();
        self.nrows -= 1;
        for e in &mut self.encodings {
            *e.get_mut().unwrap() = None;
        }
        let key = self.table_key();
        if let Some(pool) = self.pager.get_mut().unwrap().as_deref() {
            let rpp = CostModelParams::default().rows_per_page.max(1.0) as usize;
            for page in (id / rpp)..=(self.nrows / rpp) {
                pool.invalidate_page(key, page as u64);
            }
        }
        if let Some(log) = self.changelog.get_mut().unwrap().as_deref() {
            log.publish_delete(&self.name, row.clone());
        }
        row
    }

    /// The memoized dictionary encoding of string column `i`, built on first
    /// use; `None` for non-string columns.
    ///
    /// The memo is tagged with the attached pool's eviction epoch for this
    /// table: once any of the table's pages is evicted, the cached encoding
    /// may describe pages that will be re-read, so the next call rebuilds it
    /// instead of serving a stale `Arc`.
    pub fn str_encoding(&self, i: usize) -> Option<Arc<StrEncoding>> {
        let xs = self.columns[i].as_str_slice()?;
        let epoch = self
            .pager()
            .map(|p| p.evict_epoch(self.table_key()))
            .unwrap_or(0);
        let mut slot = self.encodings[i].lock().unwrap();
        if let Some((built_at, enc)) = slot.as_ref() {
            if *built_at == epoch {
                if enc.codes.len() == xs.len() {
                    return Some(Arc::clone(enc));
                }
                if enc.codes.len() < xs.len() {
                    // Appends since the memo was built: extend it with codes
                    // for the new suffix only, re-seeding the dictionary map
                    // from the distinct values (O(distinct + new), not
                    // O(rows)) — append-heavy subscription churn doesn't
                    // re-encode the whole column.
                    let mut values = enc.values.clone();
                    let mut codes = enc.codes.clone();
                    let mut map: HashMap<String, u32> = values
                        .iter()
                        .enumerate()
                        .map(|(c, s)| (s.clone(), c as u32))
                        .collect();
                    for s in &xs[codes.len()..] {
                        let code = *map.entry(s.clone()).or_insert_with(|| {
                            values.push(s.clone());
                            (values.len() - 1) as u32
                        });
                        codes.push(code);
                    }
                    let enc = Arc::new(StrEncoding { values, codes });
                    *slot = Some((epoch, Arc::clone(&enc)));
                    return Some(enc);
                }
            }
        }
        let mut values: Vec<String> = Vec::new();
        let mut map: HashMap<&str, u32> = HashMap::new();
        let codes = xs
            .iter()
            .map(|s| {
                *map.entry(s.as_str()).or_insert_with(|| {
                    values.push(s.clone());
                    (values.len() - 1) as u32
                })
            })
            .collect();
        let enc = Arc::new(StrEncoding { values, codes });
        *slot = Some((epoch, Arc::clone(&enc)));
        Some(enc)
    }

    /// Append many rows.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Row>) {
        for r in rows {
            self.append(r);
        }
    }

    /// Cell value at `(row, column-name)`.
    pub fn value(&self, id: RowId, column: &str) -> Result<Value> {
        Ok(self.column_by_name(column)?.get(id))
    }

    /// Iterate all rows in insertion order.
    pub fn iter_rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.nrows).map(|i| self.row(i))
    }

    /// Split the table's row space into `parts` contiguous `[start, end)`
    /// ranges with **page-aligned** boundaries (multiples of
    /// `rows_per_page`), as evenly as the page granularity allows.
    ///
    /// Page alignment is what keeps parallel scans cost-deterministic: a
    /// range scan starting on a page boundary charges exactly
    /// `ceil(len / rows_per_page)` sequential pages, and aligned boundaries
    /// make those per-partition page counts sum to the sequential scan's
    /// total for every partition count. Trailing partitions may be empty
    /// when the table has fewer pages than `parts`.
    pub fn page_partitions(&self, parts: usize, rows_per_page: usize) -> Vec<(usize, usize)> {
        let parts = parts.max(1);
        let rpp = rows_per_page.max(1);
        let pages = self.nrows.div_ceil(rpp);
        let mut out = Vec::with_capacity(parts);
        let mut start_page = 0usize;
        for i in 0..parts {
            let end_page = pages * (i + 1) / parts;
            out.push(((start_page * rpp).min(self.nrows), (end_page * rpp).min(self.nrows)));
            start_page = end_page;
        }
        out
    }

    /// Count rows matching a predicate evaluated against the *qualified*
    /// schema. Used by "oracle" estimators and metric code (true
    /// cardinalities), not by the query path.
    pub fn count_where(&self, pred: &rqp_common::Expr) -> Result<usize> {
        let schema = self.qualified_schema();
        let bound = pred.bind(&schema)?;
        let mut n = 0;
        for r in self.iter_rows() {
            if bound.eval_bool(&r) {
                n += 1;
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::DataType;

    fn tbl() -> Table {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Float)]);
        let mut t = Table::new("t", schema);
        for i in 0..10 {
            t.append(vec![Value::Int(i), Value::Float(i as f64 * 0.5)]);
        }
        t
    }

    #[test]
    fn append_and_row() {
        let t = tbl();
        assert_eq!(t.nrows(), 10);
        assert_eq!(t.row(3), vec![Value::Int(3), Value::Float(1.5)]);
    }

    #[test]
    fn qualified_schema_and_lookup() {
        let t = tbl();
        let q = t.qualified_schema();
        assert_eq!(q.field(0).name, "t.id");
        assert_eq!(t.column_by_name("t.v").unwrap().len(), 10);
        assert_eq!(t.column_index("v").unwrap(), 1);
        assert!(t.column_by_name("zz").is_err());
    }

    #[test]
    fn from_columns_validates() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let ok = Table::from_columns("x", schema.clone(), vec![vec![1i64, 2].into()]);
        assert_eq!(ok.unwrap().nrows(), 2);
        let bad_arity = Table::from_columns("x", schema.clone(), vec![]);
        assert!(bad_arity.is_err());
        let bad_type = Table::from_columns("x", schema, vec![vec![1.0f64].into()]);
        assert!(bad_type.is_err());
    }

    #[test]
    fn count_where_true_cardinality() {
        let t = tbl();
        let n = t.count_where(&col("t.id").lt(lit(4i64))).unwrap();
        assert_eq!(n, 4);
        let n = t.count_where(&col("v").ge(lit(2.0))).unwrap();
        assert_eq!(n, 6);
    }

    #[test]
    fn page_partitions_align_and_cover() {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..1050 {
            t.append(vec![Value::Int(i)]);
        }
        // 1050 rows at 100/page = 11 pages across 4 partitions.
        let parts = t.page_partitions(4, 100);
        assert_eq!(parts, vec![(0, 200), (200, 500), (500, 800), (800, 1050)]);
        // Boundaries are page multiples; ranges tile the table exactly.
        for w in parts.windows(2) {
            assert_eq!(w[0].1, w[1].0);
            assert_eq!(w[0].1 % 100, 0);
        }
        // Per-partition page counts sum to the sequential total, for any
        // partition count — the invariant parallel cost determinism rests on.
        let seq_pages = 1050usize.div_ceil(100);
        for k in [1, 2, 3, 4, 7, 16] {
            let ps = t.page_partitions(k, 100);
            assert_eq!(ps.first().unwrap().0, 0);
            assert_eq!(ps.last().unwrap().1, 1050);
            let pages: usize = ps.iter().map(|&(s, e)| (e - s).div_ceil(100)).sum();
            assert_eq!(pages, seq_pages, "k={k}");
        }
        // More partitions than pages: the tail is empty, not out of bounds.
        let ps = t.page_partitions(16, 100);
        assert!(ps.iter().all(|&(s, e)| s <= e && e <= 1050));
        // Empty table: all partitions empty.
        let e = Table::new("e", Schema::from_pairs(&[("x", DataType::Int)]));
        assert!(e.page_partitions(3, 100).iter().all(|&(s, end)| s == 0 && end == 0));
    }

    #[test]
    fn str_encoding_memoizes_and_invalidates() {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("cat", DataType::Str)]);
        let mut t = Table::new("t", schema);
        for i in 0..10i64 {
            t.append(vec![Value::Int(i), Value::Str(format!("c{}", i % 3))]);
        }
        assert!(t.str_encoding(0).is_none(), "int column has no encoding");
        let enc = t.str_encoding(1).unwrap();
        assert_eq!(enc.values, vec!["c0", "c1", "c2"], "first-appearance order");
        assert_eq!(enc.codes.len(), 10);
        for (i, &code) in enc.codes.iter().enumerate() {
            assert_eq!(enc.values[code as usize], format!("c{}", i % 3));
        }
        // Memoized: same Arc on the next call.
        assert!(Arc::ptr_eq(&enc, &t.str_encoding(1).unwrap()));
        // Appending invalidates and rebuilds with the new row covered.
        t.append(vec![Value::Int(10), Value::Str("c9".into())]);
        let enc2 = t.str_encoding(1).unwrap();
        assert!(!Arc::ptr_eq(&enc, &enc2));
        assert_eq!(enc2.codes.len(), 11);
        assert_eq!(enc2.values.last().map(String::as_str), Some("c9"));
    }

    #[test]
    fn str_encoding_invalidates_on_pool_eviction() {
        use crate::pool::BufferPool;
        use rqp_common::{ChaosPolicy, CostClock};

        let schema = Schema::from_pairs(&[("id", DataType::Int), ("cat", DataType::Str)]);
        let mut t = Table::new("t", schema);
        for i in 0..10i64 {
            t.append(vec![Value::Int(i), Value::Str(format!("c{}", i % 3))]);
        }
        let pool = BufferPool::new(2);
        t.attach_pool(&pool);
        let clock = CostClock::default_clock();
        let off = ChaosPolicy::off();
        let enc = t.str_encoding(1).unwrap();
        // Scans that stay within budget leave the memo valid…
        drop(pool.pin("t", 0, &clock, &off).unwrap());
        drop(pool.pin("t", 1, &clock, &off).unwrap());
        assert!(Arc::ptr_eq(&enc, &t.str_encoding(1).unwrap()), "no eviction, memo holds");
        // …but once a page of this table is evicted the next rescan must
        // rebuild rather than serve the stale pre-eviction encoding.
        drop(pool.pin("t", 2, &clock, &off).unwrap());
        assert!(pool.stats().evictions >= 1);
        let rebuilt = t.str_encoding(1).unwrap();
        assert!(!Arc::ptr_eq(&enc, &rebuilt), "evict-then-rescan rebuilds");
        assert_eq!(rebuilt.values, enc.values, "same data, fresh encoding");
        // The rebuilt memo is tagged with the new epoch and holds again.
        assert!(Arc::ptr_eq(&rebuilt, &t.str_encoding(1).unwrap()));
        // Another table's own churn doesn't invalidate this one: fill the
        // pool with `other` pages (displacing t's pages does bump t's
        // epoch), then keep churning `other` against itself.
        drop(pool.pin("other", 0, &clock, &off).unwrap());
        drop(pool.pin("other", 1, &clock, &off).unwrap());
        let epoch = pool.evict_epoch(t.table_key());
        let cur = t.str_encoding(1).unwrap();
        drop(pool.pin("other", 2, &clock, &off).unwrap());
        assert_eq!(pool.evict_epoch(t.table_key()), epoch, "epochs are per-table");
        assert!(Arc::ptr_eq(&cur, &t.str_encoding(1).unwrap()));
    }

    #[test]
    fn changelog_publishes_through_cow_clones() {
        use crate::changelog::{ChangeOp, Changelog};

        let mut t = tbl();
        let log = Arc::new(Changelog::new());
        t.attach_changelog(&log);
        // A copy-on-write clone (what `Catalog::table_mut` produces when a
        // snapshot is live) shares the same feed.
        let mut cow = t.clone();
        cow.append(vec![Value::Int(10), Value::Float(5.0)]);
        let removed = cow.delete_row(0);
        assert_eq!(removed, vec![Value::Int(0), Value::Float(0.0)]);
        assert_eq!(cow.nrows(), 10);
        assert_eq!(cow.row(0), vec![Value::Int(1), Value::Float(0.5)]);
        let (recs, cursor) = log.since(0);
        assert_eq!(cursor, 2);
        assert_eq!(recs[0].op, ChangeOp::Insert);
        assert_eq!(recs[0].row, vec![Value::Int(10), Value::Float(5.0)]);
        assert_eq!(recs[1].op, ChangeOp::Delete);
        assert_eq!(recs[1].row, vec![Value::Int(0), Value::Float(0.0)]);
        assert!(recs.iter().all(|r| r.table == "t"));
        // The original table, never mutated, published nothing of its own.
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn str_encoding_extends_incrementally_on_append() {
        let schema = Schema::from_pairs(&[("cat", DataType::Str)]);
        let mut t = Table::new("t", schema);
        for i in 0..6i64 {
            t.append(vec![Value::Str(format!("c{}", i % 2))]);
        }
        let enc = t.str_encoding(0).unwrap();
        assert_eq!(enc.values, vec!["c0", "c1"]);
        // Appends reuse the existing dictionary: an old value keeps its
        // code, a new value gets the next one, and codes cover all rows.
        t.append(vec![Value::Str("c1".into())]);
        t.append(vec![Value::Str("zz".into())]);
        let ext = t.str_encoding(0).unwrap();
        assert!(!Arc::ptr_eq(&enc, &ext));
        assert_eq!(ext.values, vec!["c0", "c1", "zz"]);
        assert_eq!(ext.codes.len(), 8);
        assert_eq!(&ext.codes[..6], &enc.codes[..]);
        assert_eq!(&ext.codes[6..], &[1, 2]);
        // Deletes shift rows, so they fall back to a full rebuild.
        t.delete_row(0);
        let rebuilt = t.str_encoding(0).unwrap();
        assert_eq!(rebuilt.codes.len(), 7);
        assert_eq!(rebuilt.values[rebuilt.codes[0] as usize], "c1");
    }

    #[test]
    fn append_loop_does_not_thrash_unrelated_cold_pages() {
        use crate::pool::BufferPool;
        use rqp_common::{ChaosPolicy, CostClock};

        let rpp = CostModelParams::default().rows_per_page.max(1.0) as usize;
        let schema = Schema::from_pairs(&[("id", DataType::Int)]);
        let mut hot = Table::new("hot", schema.clone());
        // 2.5 pages: the last resident page is partially filled, so the
        // first appends land *inside* it.
        for i in 0..(2 * rpp + rpp / 2) {
            hot.append(vec![Value::Int(i as i64)]);
        }
        let pool = BufferPool::new(8);
        hot.attach_pool(&pool);
        let clock = CostClock::default_clock();
        let off = ChaosPolicy::off();
        // Make all of `hot` plus another table's pages resident — the
        // latter are the "unrelated cold pages" a subscription-heavy
        // append loop must not thrash.
        for p in 0..3 {
            drop(pool.pin("hot", p, &clock, &off).unwrap());
        }
        for p in 0..4 {
            drop(pool.pin("other", p, &clock, &off).unwrap());
        }
        let cold_epoch = pool.evict_epoch(ChaosPolicy::table_key("other"));
        let hot_epoch = pool.evict_epoch(hot.table_key());
        // An append-heavy loop: each append invalidates only the page the
        // row landed in; the partial page 2 is dropped once, later appends
        // touch pages that were never resident (no-ops).
        for i in 0..(2 * rpp) {
            hot.append(vec![Value::Int(i as i64)]);
        }
        assert_eq!(pool.stats().invalidations, 1, "only the mutated page dropped");
        assert_eq!(pool.stats().evictions, 0, "no pressure eviction from appends");
        assert_eq!(
            pool.evict_epoch(ChaosPolicy::table_key("other")),
            cold_epoch,
            "unrelated table epoch untouched"
        );
        assert_eq!(pool.evict_epoch(hot.table_key()), hot_epoch, "own epoch untouched too");
        // Every `other` frame is still resident: re-pinning hits.
        for p in 0..4 {
            assert!(pool.pin("other", p, &clock, &off).unwrap().1.hit);
        }
        // Untouched pages of `hot` stay hot; the mutated page re-reads as
        // an honest re-fault (it was loaded before, its frame was dropped).
        assert!(pool.pin("hot", 0, &clock, &off).unwrap().1.hit);
        assert!(pool.pin("hot", 1, &clock, &off).unwrap().1.hit);
        let (_pin, out) = pool.pin("hot", 2, &clock, &off).unwrap();
        assert!(!out.hit && out.refault, "mutated page re-reads as a re-fault");
    }

    #[test]
    fn iter_rows_order() {
        let t = tbl();
        let ids: Vec<i64> = t
            .iter_rows()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }
}
