//! Tables: named collections of equal-length columns.

use crate::column::ColumnData;
use crate::pool::BufferPool;
use crate::RowId;
use rqp_common::{ChaosPolicy, Result, Row, RqpError, Schema, Value};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A storage-resident dictionary encoding of one string column: the distinct
/// values in first-appearance order plus one dense local code per row.
///
/// Built lazily by [`Table::str_encoding`] and memoized (any append
/// invalidates it, and so does any buffer-pool eviction of the table's
/// pages — the memo is tagged with the pool's per-table eviction epoch), so
/// batch scans translate small integer codes instead of re-hashing every
/// string cell on every scan. Local codes are private to the table; scans
/// map them into their pipeline's shared `StringDict` through a
/// per-distinct-value translation table.
#[derive(Debug)]
pub struct StrEncoding {
    /// Distinct values, indexed by local code.
    pub values: Vec<String>,
    /// One local code per row: `values[codes[i] as usize] == column[i]`.
    pub codes: Vec<u32>,
}

/// A memoized column encoding tagged with the pool eviction epoch it was
/// built under (0 when no pool is attached).
type EncodingMemo = Mutex<Option<(u64, Arc<StrEncoding>)>>;

/// An in-memory table stored column-wise.
///
/// The schema's field names are *unqualified* (`"quantity"`); scans qualify
/// them with the table name so joins don't collide.
#[derive(Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<ColumnData>,
    nrows: usize,
    /// Per-column memoized encoding, tagged with the pool eviction epoch it
    /// was built under (0 when no pool is attached).
    encodings: Vec<EncodingMemo>,
    /// The buffer pool scans of this table pin pages through; `None` means
    /// legacy always-resident behavior.
    pager: Mutex<Option<Arc<BufferPool>>>,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: self.columns.clone(),
            nrows: self.nrows,
            encodings: self
                .encodings
                .iter()
                .map(|e| Mutex::new(e.lock().unwrap().clone()))
                .collect(),
            pager: Mutex::new(self.pager.lock().unwrap().clone()),
        }
    }
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns: Vec<ColumnData> = schema
            .fields()
            .iter()
            .map(|f| ColumnData::empty(f.dtype))
            .collect();
        let encodings = (0..columns.len()).map(|_| Mutex::new(None)).collect();
        Table { name: name.into(), schema, columns, nrows: 0, encodings, pager: Mutex::new(None) }
    }

    /// Create a table directly from columns (must be equal length and match
    /// the schema's types).
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<ColumnData>,
    ) -> Result<Self> {
        if columns.len() != schema.len() {
            return Err(RqpError::Invalid(format!(
                "schema has {} fields but {} columns supplied",
                schema.len(),
                columns.len()
            )));
        }
        let nrows = columns.first().map(|c| c.len()).unwrap_or(0);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != nrows {
                return Err(RqpError::Invalid(format!(
                    "column {i} has {} rows, expected {nrows}",
                    c.len()
                )));
            }
            if c.data_type() != schema.field(i).dtype {
                return Err(RqpError::TypeMismatch {
                    expected: schema.field(i).dtype.to_string(),
                    got: c.data_type().to_string(),
                });
            }
        }
        let encodings = (0..columns.len()).map(|_| Mutex::new(None)).collect();
        Ok(Table { name: name.into(), schema, columns, nrows, encodings, pager: Mutex::new(None) })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stable pool/chaos key of this table (FNV-1a of the name), shared
    /// by every `Table` handle for the same name across catalog snapshots.
    pub fn table_key(&self) -> u64 {
        ChaosPolicy::table_key(&self.name)
    }

    /// Attach (or replace) the buffer pool scans pin this table's pages
    /// through. Interior-mutable so a shared `Arc<Table>` can be wired after
    /// catalog construction.
    pub fn attach_pool(&self, pool: &Arc<BufferPool>) {
        *self.pager.lock().unwrap() = Some(Arc::clone(pool));
    }

    /// The attached buffer pool, if any.
    pub fn pager(&self) -> Option<Arc<BufferPool>> {
        self.pager.lock().unwrap().clone()
    }

    /// Unqualified schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Schema with every field qualified as `table.column`.
    pub fn qualified_schema(&self) -> Schema {
        self.schema.qualify(&self.name)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Column by position.
    pub fn column(&self, i: usize) -> &ColumnData {
        &self.columns[i]
    }

    /// Column by name: exact match first (fields of materialized temp tables
    /// keep their original qualified names), then the unqualified suffix.
    pub fn column_by_name(&self, name: &str) -> Result<&ColumnData> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// Index of a column by (unqualified or qualified) name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        if let Ok(i) = self.schema.index_of(name) {
            return Ok(i);
        }
        let unq = name.rsplit_once('.').map(|(_, c)| c).unwrap_or(name);
        self.schema.index_of(unq)
    }

    /// Materialize row `id` (panics if out of bounds).
    pub fn row(&self, id: RowId) -> Row {
        self.columns.iter().map(|c| c.get(id)).collect()
    }

    /// Append one row (panics on arity/type mismatch — loading is
    /// programmatic).
    pub fn append(&mut self, row: Row) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.nrows += 1;
        // Mutation invalidates the memoized per-column encodings.
        for e in &mut self.encodings {
            *e.get_mut().unwrap() = None;
        }
    }

    /// The memoized dictionary encoding of string column `i`, built on first
    /// use; `None` for non-string columns.
    ///
    /// The memo is tagged with the attached pool's eviction epoch for this
    /// table: once any of the table's pages is evicted, the cached encoding
    /// may describe pages that will be re-read, so the next call rebuilds it
    /// instead of serving a stale `Arc`.
    pub fn str_encoding(&self, i: usize) -> Option<Arc<StrEncoding>> {
        let xs = self.columns[i].as_str_slice()?;
        let epoch = self
            .pager()
            .map(|p| p.evict_epoch(self.table_key()))
            .unwrap_or(0);
        let mut slot = self.encodings[i].lock().unwrap();
        if let Some((built_at, enc)) = slot.as_ref() {
            if *built_at == epoch {
                return Some(Arc::clone(enc));
            }
        }
        let mut values: Vec<String> = Vec::new();
        let mut map: HashMap<&str, u32> = HashMap::new();
        let codes = xs
            .iter()
            .map(|s| {
                *map.entry(s.as_str()).or_insert_with(|| {
                    values.push(s.clone());
                    (values.len() - 1) as u32
                })
            })
            .collect();
        let enc = Arc::new(StrEncoding { values, codes });
        *slot = Some((epoch, Arc::clone(&enc)));
        Some(enc)
    }

    /// Append many rows.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Row>) {
        for r in rows {
            self.append(r);
        }
    }

    /// Cell value at `(row, column-name)`.
    pub fn value(&self, id: RowId, column: &str) -> Result<Value> {
        Ok(self.column_by_name(column)?.get(id))
    }

    /// Iterate all rows in insertion order.
    pub fn iter_rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.nrows).map(|i| self.row(i))
    }

    /// Split the table's row space into `parts` contiguous `[start, end)`
    /// ranges with **page-aligned** boundaries (multiples of
    /// `rows_per_page`), as evenly as the page granularity allows.
    ///
    /// Page alignment is what keeps parallel scans cost-deterministic: a
    /// range scan starting on a page boundary charges exactly
    /// `ceil(len / rows_per_page)` sequential pages, and aligned boundaries
    /// make those per-partition page counts sum to the sequential scan's
    /// total for every partition count. Trailing partitions may be empty
    /// when the table has fewer pages than `parts`.
    pub fn page_partitions(&self, parts: usize, rows_per_page: usize) -> Vec<(usize, usize)> {
        let parts = parts.max(1);
        let rpp = rows_per_page.max(1);
        let pages = self.nrows.div_ceil(rpp);
        let mut out = Vec::with_capacity(parts);
        let mut start_page = 0usize;
        for i in 0..parts {
            let end_page = pages * (i + 1) / parts;
            out.push(((start_page * rpp).min(self.nrows), (end_page * rpp).min(self.nrows)));
            start_page = end_page;
        }
        out
    }

    /// Count rows matching a predicate evaluated against the *qualified*
    /// schema. Used by "oracle" estimators and metric code (true
    /// cardinalities), not by the query path.
    pub fn count_where(&self, pred: &rqp_common::Expr) -> Result<usize> {
        let schema = self.qualified_schema();
        let bound = pred.bind(&schema)?;
        let mut n = 0;
        for r in self.iter_rows() {
            if bound.eval_bool(&r) {
                n += 1;
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::DataType;

    fn tbl() -> Table {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Float)]);
        let mut t = Table::new("t", schema);
        for i in 0..10 {
            t.append(vec![Value::Int(i), Value::Float(i as f64 * 0.5)]);
        }
        t
    }

    #[test]
    fn append_and_row() {
        let t = tbl();
        assert_eq!(t.nrows(), 10);
        assert_eq!(t.row(3), vec![Value::Int(3), Value::Float(1.5)]);
    }

    #[test]
    fn qualified_schema_and_lookup() {
        let t = tbl();
        let q = t.qualified_schema();
        assert_eq!(q.field(0).name, "t.id");
        assert_eq!(t.column_by_name("t.v").unwrap().len(), 10);
        assert_eq!(t.column_index("v").unwrap(), 1);
        assert!(t.column_by_name("zz").is_err());
    }

    #[test]
    fn from_columns_validates() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let ok = Table::from_columns("x", schema.clone(), vec![vec![1i64, 2].into()]);
        assert_eq!(ok.unwrap().nrows(), 2);
        let bad_arity = Table::from_columns("x", schema.clone(), vec![]);
        assert!(bad_arity.is_err());
        let bad_type = Table::from_columns("x", schema, vec![vec![1.0f64].into()]);
        assert!(bad_type.is_err());
    }

    #[test]
    fn count_where_true_cardinality() {
        let t = tbl();
        let n = t.count_where(&col("t.id").lt(lit(4i64))).unwrap();
        assert_eq!(n, 4);
        let n = t.count_where(&col("v").ge(lit(2.0))).unwrap();
        assert_eq!(n, 6);
    }

    #[test]
    fn page_partitions_align_and_cover() {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..1050 {
            t.append(vec![Value::Int(i)]);
        }
        // 1050 rows at 100/page = 11 pages across 4 partitions.
        let parts = t.page_partitions(4, 100);
        assert_eq!(parts, vec![(0, 200), (200, 500), (500, 800), (800, 1050)]);
        // Boundaries are page multiples; ranges tile the table exactly.
        for w in parts.windows(2) {
            assert_eq!(w[0].1, w[1].0);
            assert_eq!(w[0].1 % 100, 0);
        }
        // Per-partition page counts sum to the sequential total, for any
        // partition count — the invariant parallel cost determinism rests on.
        let seq_pages = 1050usize.div_ceil(100);
        for k in [1, 2, 3, 4, 7, 16] {
            let ps = t.page_partitions(k, 100);
            assert_eq!(ps.first().unwrap().0, 0);
            assert_eq!(ps.last().unwrap().1, 1050);
            let pages: usize = ps.iter().map(|&(s, e)| (e - s).div_ceil(100)).sum();
            assert_eq!(pages, seq_pages, "k={k}");
        }
        // More partitions than pages: the tail is empty, not out of bounds.
        let ps = t.page_partitions(16, 100);
        assert!(ps.iter().all(|&(s, e)| s <= e && e <= 1050));
        // Empty table: all partitions empty.
        let e = Table::new("e", Schema::from_pairs(&[("x", DataType::Int)]));
        assert!(e.page_partitions(3, 100).iter().all(|&(s, end)| s == 0 && end == 0));
    }

    #[test]
    fn str_encoding_memoizes_and_invalidates() {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("cat", DataType::Str)]);
        let mut t = Table::new("t", schema);
        for i in 0..10i64 {
            t.append(vec![Value::Int(i), Value::Str(format!("c{}", i % 3))]);
        }
        assert!(t.str_encoding(0).is_none(), "int column has no encoding");
        let enc = t.str_encoding(1).unwrap();
        assert_eq!(enc.values, vec!["c0", "c1", "c2"], "first-appearance order");
        assert_eq!(enc.codes.len(), 10);
        for (i, &code) in enc.codes.iter().enumerate() {
            assert_eq!(enc.values[code as usize], format!("c{}", i % 3));
        }
        // Memoized: same Arc on the next call.
        assert!(Arc::ptr_eq(&enc, &t.str_encoding(1).unwrap()));
        // Appending invalidates and rebuilds with the new row covered.
        t.append(vec![Value::Int(10), Value::Str("c9".into())]);
        let enc2 = t.str_encoding(1).unwrap();
        assert!(!Arc::ptr_eq(&enc, &enc2));
        assert_eq!(enc2.codes.len(), 11);
        assert_eq!(enc2.values.last().map(String::as_str), Some("c9"));
    }

    #[test]
    fn str_encoding_invalidates_on_pool_eviction() {
        use crate::pool::BufferPool;
        use rqp_common::{ChaosPolicy, CostClock};

        let schema = Schema::from_pairs(&[("id", DataType::Int), ("cat", DataType::Str)]);
        let mut t = Table::new("t", schema);
        for i in 0..10i64 {
            t.append(vec![Value::Int(i), Value::Str(format!("c{}", i % 3))]);
        }
        let pool = BufferPool::new(2);
        t.attach_pool(&pool);
        let clock = CostClock::default_clock();
        let off = ChaosPolicy::off();
        let enc = t.str_encoding(1).unwrap();
        // Scans that stay within budget leave the memo valid…
        drop(pool.pin("t", 0, &clock, &off).unwrap());
        drop(pool.pin("t", 1, &clock, &off).unwrap());
        assert!(Arc::ptr_eq(&enc, &t.str_encoding(1).unwrap()), "no eviction, memo holds");
        // …but once a page of this table is evicted the next rescan must
        // rebuild rather than serve the stale pre-eviction encoding.
        drop(pool.pin("t", 2, &clock, &off).unwrap());
        assert!(pool.stats().evictions >= 1);
        let rebuilt = t.str_encoding(1).unwrap();
        assert!(!Arc::ptr_eq(&enc, &rebuilt), "evict-then-rescan rebuilds");
        assert_eq!(rebuilt.values, enc.values, "same data, fresh encoding");
        // The rebuilt memo is tagged with the new epoch and holds again.
        assert!(Arc::ptr_eq(&rebuilt, &t.str_encoding(1).unwrap()));
        // Another table's own churn doesn't invalidate this one: fill the
        // pool with `other` pages (displacing t's pages does bump t's
        // epoch), then keep churning `other` against itself.
        drop(pool.pin("other", 0, &clock, &off).unwrap());
        drop(pool.pin("other", 1, &clock, &off).unwrap());
        let epoch = pool.evict_epoch(t.table_key());
        let cur = t.str_encoding(1).unwrap();
        drop(pool.pin("other", 2, &clock, &off).unwrap());
        assert_eq!(pool.evict_epoch(t.table_key()), epoch, "epochs are per-table");
        assert!(Arc::ptr_eq(&cur, &t.str_encoding(1).unwrap()));
    }

    #[test]
    fn iter_rows_order() {
        let t = tbl();
        let ids: Vec<i64> = t
            .iter_rows()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }
}
