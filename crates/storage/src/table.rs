//! Tables: named collections of equal-length columns.

use crate::column::ColumnData;
use crate::RowId;
use rqp_common::{Result, Row, RqpError, Schema, Value};

/// An in-memory table stored column-wise.
///
/// The schema's field names are *unqualified* (`"quantity"`); scans qualify
/// them with the table name so joins don't collide.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<ColumnData>,
    nrows: usize,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnData::empty(f.dtype))
            .collect();
        Table { name: name.into(), schema, columns, nrows: 0 }
    }

    /// Create a table directly from columns (must be equal length and match
    /// the schema's types).
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<ColumnData>,
    ) -> Result<Self> {
        if columns.len() != schema.len() {
            return Err(RqpError::Invalid(format!(
                "schema has {} fields but {} columns supplied",
                schema.len(),
                columns.len()
            )));
        }
        let nrows = columns.first().map(|c| c.len()).unwrap_or(0);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != nrows {
                return Err(RqpError::Invalid(format!(
                    "column {i} has {} rows, expected {nrows}",
                    c.len()
                )));
            }
            if c.data_type() != schema.field(i).dtype {
                return Err(RqpError::TypeMismatch {
                    expected: schema.field(i).dtype.to_string(),
                    got: c.data_type().to_string(),
                });
            }
        }
        Ok(Table { name: name.into(), schema, columns, nrows })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Unqualified schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Schema with every field qualified as `table.column`.
    pub fn qualified_schema(&self) -> Schema {
        self.schema.qualify(&self.name)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Column by position.
    pub fn column(&self, i: usize) -> &ColumnData {
        &self.columns[i]
    }

    /// Column by name: exact match first (fields of materialized temp tables
    /// keep their original qualified names), then the unqualified suffix.
    pub fn column_by_name(&self, name: &str) -> Result<&ColumnData> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// Index of a column by (unqualified or qualified) name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        if let Ok(i) = self.schema.index_of(name) {
            return Ok(i);
        }
        let unq = name.rsplit_once('.').map(|(_, c)| c).unwrap_or(name);
        self.schema.index_of(unq)
    }

    /// Materialize row `id` (panics if out of bounds).
    pub fn row(&self, id: RowId) -> Row {
        self.columns.iter().map(|c| c.get(id)).collect()
    }

    /// Append one row (panics on arity/type mismatch — loading is
    /// programmatic).
    pub fn append(&mut self, row: Row) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.nrows += 1;
    }

    /// Append many rows.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Row>) {
        for r in rows {
            self.append(r);
        }
    }

    /// Cell value at `(row, column-name)`.
    pub fn value(&self, id: RowId, column: &str) -> Result<Value> {
        Ok(self.column_by_name(column)?.get(id))
    }

    /// Iterate all rows in insertion order.
    pub fn iter_rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.nrows).map(|i| self.row(i))
    }

    /// Split the table's row space into `parts` contiguous `[start, end)`
    /// ranges with **page-aligned** boundaries (multiples of
    /// `rows_per_page`), as evenly as the page granularity allows.
    ///
    /// Page alignment is what keeps parallel scans cost-deterministic: a
    /// range scan starting on a page boundary charges exactly
    /// `ceil(len / rows_per_page)` sequential pages, and aligned boundaries
    /// make those per-partition page counts sum to the sequential scan's
    /// total for every partition count. Trailing partitions may be empty
    /// when the table has fewer pages than `parts`.
    pub fn page_partitions(&self, parts: usize, rows_per_page: usize) -> Vec<(usize, usize)> {
        let parts = parts.max(1);
        let rpp = rows_per_page.max(1);
        let pages = self.nrows.div_ceil(rpp);
        let mut out = Vec::with_capacity(parts);
        let mut start_page = 0usize;
        for i in 0..parts {
            let end_page = pages * (i + 1) / parts;
            out.push(((start_page * rpp).min(self.nrows), (end_page * rpp).min(self.nrows)));
            start_page = end_page;
        }
        out
    }

    /// Count rows matching a predicate evaluated against the *qualified*
    /// schema. Used by "oracle" estimators and metric code (true
    /// cardinalities), not by the query path.
    pub fn count_where(&self, pred: &rqp_common::Expr) -> Result<usize> {
        let schema = self.qualified_schema();
        let bound = pred.bind(&schema)?;
        let mut n = 0;
        for r in self.iter_rows() {
            if bound.eval_bool(&r) {
                n += 1;
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_common::expr::{col, lit};
    use rqp_common::DataType;

    fn tbl() -> Table {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Float)]);
        let mut t = Table::new("t", schema);
        for i in 0..10 {
            t.append(vec![Value::Int(i), Value::Float(i as f64 * 0.5)]);
        }
        t
    }

    #[test]
    fn append_and_row() {
        let t = tbl();
        assert_eq!(t.nrows(), 10);
        assert_eq!(t.row(3), vec![Value::Int(3), Value::Float(1.5)]);
    }

    #[test]
    fn qualified_schema_and_lookup() {
        let t = tbl();
        let q = t.qualified_schema();
        assert_eq!(q.field(0).name, "t.id");
        assert_eq!(t.column_by_name("t.v").unwrap().len(), 10);
        assert_eq!(t.column_index("v").unwrap(), 1);
        assert!(t.column_by_name("zz").is_err());
    }

    #[test]
    fn from_columns_validates() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let ok = Table::from_columns("x", schema.clone(), vec![vec![1i64, 2].into()]);
        assert_eq!(ok.unwrap().nrows(), 2);
        let bad_arity = Table::from_columns("x", schema.clone(), vec![]);
        assert!(bad_arity.is_err());
        let bad_type = Table::from_columns("x", schema, vec![vec![1.0f64].into()]);
        assert!(bad_type.is_err());
    }

    #[test]
    fn count_where_true_cardinality() {
        let t = tbl();
        let n = t.count_where(&col("t.id").lt(lit(4i64))).unwrap();
        assert_eq!(n, 4);
        let n = t.count_where(&col("v").ge(lit(2.0))).unwrap();
        assert_eq!(n, 6);
    }

    #[test]
    fn page_partitions_align_and_cover() {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for i in 0..1050 {
            t.append(vec![Value::Int(i)]);
        }
        // 1050 rows at 100/page = 11 pages across 4 partitions.
        let parts = t.page_partitions(4, 100);
        assert_eq!(parts, vec![(0, 200), (200, 500), (500, 800), (800, 1050)]);
        // Boundaries are page multiples; ranges tile the table exactly.
        for w in parts.windows(2) {
            assert_eq!(w[0].1, w[1].0);
            assert_eq!(w[0].1 % 100, 0);
        }
        // Per-partition page counts sum to the sequential total, for any
        // partition count — the invariant parallel cost determinism rests on.
        let seq_pages = 1050usize.div_ceil(100);
        for k in [1, 2, 3, 4, 7, 16] {
            let ps = t.page_partitions(k, 100);
            assert_eq!(ps.first().unwrap().0, 0);
            assert_eq!(ps.last().unwrap().1, 1050);
            let pages: usize = ps.iter().map(|&(s, e)| (e - s).div_ceil(100)).sum();
            assert_eq!(pages, seq_pages, "k={k}");
        }
        // More partitions than pages: the tail is empty, not out of bounds.
        let ps = t.page_partitions(16, 100);
        assert!(ps.iter().all(|&(s, e)| s <= e && e <= 1050));
        // Empty table: all partitions empty.
        let e = Table::new("e", Schema::from_pairs(&[("x", DataType::Int)]));
        assert!(e.page_partitions(3, 100).iter().all(|&(s, end)| s == 0 && end == 0));
    }

    #[test]
    fn iter_rows_order() {
        let t = tbl();
        let ids: Vec<i64> = t
            .iter_rows()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }
}
