//! Criterion micro-benchmarks of the execution operators and adaptive
//! storage structures (real wall-clock time, complementing the cost-clock
//! experiments).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::Rng;
use rqp::common::rng::seeded;
use rqp::exec::{collect, ExecContext, GJoinOp, HashJoinOp, MergeJoinOp, Operator, SortOp};
use rqp::storage::{AdaptiveMergeIndex, BTreeIndex, CrackerColumn};
use rqp::{DataType, Row, Schema, Table, Value};

struct VecOp {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
}

impl Operator for VecOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn next(&mut self) -> Option<Row> {
        self.rows.next()
    }
}

fn src(name: &'static str, keys: &[i64]) -> Box<dyn Operator> {
    let schema = Schema::from_pairs(&[(
        Box::leak(format!("{name}.k").into_boxed_str()) as &str,
        DataType::Int,
    )]);
    Box::new(VecOp {
        schema,
        rows: keys
            .iter()
            .map(|&k| vec![Value::Int(k)])
            .collect::<Vec<_>>()
            .into_iter(),
    })
}

fn keys(n: i64, domain: i64, seed: u64) -> Vec<i64> {
    let mut rng = seeded(seed);
    (0..n).map(|_| rng.gen_range(0..domain)).collect()
}

fn bench_joins(c: &mut Criterion) {
    let l = keys(20_000, 5_000, 1);
    let r = keys(5_000, 5_000, 2);
    let mut sorted_l = l.clone();
    sorted_l.sort_unstable();
    let mut sorted_r = r.clone();
    sorted_r.sort_unstable();
    let mut g = c.benchmark_group("join_20k_x_5k");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("hash_join", |b| {
        b.iter_batched(
            || (src("l", &l), src("r", &r)),
            |(lo, ro)| {
                let ctx = ExecContext::unbounded();
                let mut j =
                    HashJoinOp::new(lo, ro, &["l.k"], &["r.k"], ctx).expect("join");
                collect(&mut j).len()
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("merge_join_presorted", |b| {
        b.iter_batched(
            || (src("l", &sorted_l), src("r", &sorted_r)),
            |(lo, ro)| {
                let ctx = ExecContext::unbounded();
                let mut j =
                    MergeJoinOp::new(lo, ro, &["l.k"], &["r.k"], ctx).expect("join");
                collect(&mut j).len()
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("g_join_unsorted", |b| {
        b.iter_batched(
            || (src("l", &l), src("r", &r)),
            |(lo, ro)| {
                let ctx = ExecContext::unbounded();
                let mut j = GJoinOp::new(
                    lo,
                    ro,
                    &["l.k"],
                    &["r.k"],
                    false,
                    false,
                    None,
                    ctx,
                )
                .expect("join");
                collect(&mut j).len()
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let data = keys(50_000, 1_000_000, 3);
    let mut g = c.benchmark_group("sort_50k");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("sort_operator", |b| {
        b.iter_batched(
            || src("t", &data),
            |op| {
                let ctx = ExecContext::unbounded();
                let mut s = SortOp::asc(op, &["t.k"], ctx).expect("sort");
                collect(&mut s).len()
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_adaptive_indexing(c: &mut Criterion) {
    let data = keys(100_000, 100_000, 4);
    let ranges: Vec<(i64, i64)> = {
        let mut rng = seeded(5);
        (0..50)
            .map(|_| {
                let lo = rng.gen_range(0..99_000);
                (lo, lo + 1000)
            })
            .collect()
    };
    let mut g = c.benchmark_group("adaptive_indexing_100k_50q");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("cracking", |b| {
        b.iter_batched(
            || CrackerColumn::new(&data),
            |mut cr| {
                let mut total = 0usize;
                for &(lo, hi) in &ranges {
                    total += cr.query(lo, hi).0.len();
                }
                total
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("adaptive_merging", |b| {
        b.iter_batched(
            || AdaptiveMergeIndex::new(&data, 0),
            |mut am| {
                let mut total = 0usize;
                for &(lo, hi) in &ranges {
                    total += am.query(lo, hi).0.len();
                }
                total
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("eager_btree_build_then_query", |b| {
        let table = {
            let mut t = Table::new("t", Schema::from_pairs(&[("k", DataType::Int)]));
            for &k in &data {
                t.append(vec![Value::Int(k)]);
            }
            t
        };
        b.iter(|| {
            let ix = BTreeIndex::build("ix", &table, "k").expect("index");
            let mut total = 0usize;
            for &(lo, hi) in &ranges {
                total += ix
                    .lookup_range(Some(&Value::Int(lo)), Some(&Value::Int(hi)))
                    .len();
            }
            total
        })
    });
    g.finish();
}

criterion_group!(benches, bench_joins, bench_sort, bench_adaptive_indexing);
criterion_main!(benches);
