//! Stopwatch micro-benchmarks of the execution operators and adaptive
//! storage structures (real wall-clock time, complementing the cost-clock
//! experiments). Run with `cargo bench -p rqp-bench --bench operators`.

use rand::Rng;
use rqp::common::rng::seeded;
use rqp::exec::{collect, ExecContext, GJoinOp, HashJoinOp, MergeJoinOp, Operator, SortOp};
use rqp::storage::{AdaptiveMergeIndex, BTreeIndex, CrackerColumn};
use rqp::{DataType, Row, Schema, Table, Value};
use rqp_bench::stopwatch::Group;

struct VecOp {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
}

impl Operator for VecOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn next(&mut self) -> Option<Row> {
        self.rows.next()
    }
}

fn src(name: &'static str, keys: &[i64]) -> Box<dyn Operator> {
    let schema = Schema::from_pairs(&[(
        Box::leak(format!("{name}.k").into_boxed_str()) as &str,
        DataType::Int,
    )]);
    Box::new(VecOp {
        schema,
        rows: keys
            .iter()
            .map(|&k| vec![Value::Int(k)])
            .collect::<Vec<_>>()
            .into_iter(),
    })
}

fn keys(n: i64, domain: i64, seed: u64) -> Vec<i64> {
    let mut rng = seeded(seed);
    (0..n).map(|_| rng.gen_range(0..domain)).collect()
}

fn bench_joins() {
    let l = keys(20_000, 5_000, 1);
    let r = keys(5_000, 5_000, 2);
    let mut sorted_l = l.clone();
    sorted_l.sort_unstable();
    let mut sorted_r = r.clone();
    sorted_r.sort_unstable();
    let g = Group::new("join_20k_x_5k");
    g.bench("hash_join", || {
        let ctx = ExecContext::unbounded();
        let mut j =
            HashJoinOp::new(src("l", &l), src("r", &r), &["l.k"], &["r.k"], ctx).expect("join");
        collect(&mut j).len()
    });
    g.bench("merge_join_presorted", || {
        let ctx = ExecContext::unbounded();
        let mut j = MergeJoinOp::new(
            src("l", &sorted_l),
            src("r", &sorted_r),
            &["l.k"],
            &["r.k"],
            ctx,
        )
        .expect("join");
        collect(&mut j).len()
    });
    g.bench("g_join_unsorted", || {
        let ctx = ExecContext::unbounded();
        let mut j = GJoinOp::new(
            src("l", &l),
            src("r", &r),
            &["l.k"],
            &["r.k"],
            false,
            false,
            None,
            ctx,
        )
        .expect("join");
        collect(&mut j).len()
    });
}

fn bench_sort() {
    let data = keys(50_000, 1_000_000, 3);
    let g = Group::new("sort_50k");
    g.bench("sort_operator", || {
        let ctx = ExecContext::unbounded();
        let mut s = SortOp::asc(src("t", &data), &["t.k"], ctx).expect("sort");
        collect(&mut s).len()
    });
}

fn bench_adaptive_indexing() {
    let data = keys(100_000, 100_000, 4);
    let ranges: Vec<(i64, i64)> = {
        let mut rng = seeded(5);
        (0..50)
            .map(|_| {
                let lo = rng.gen_range(0..99_000);
                (lo, lo + 1000)
            })
            .collect()
    };
    let g = Group::new("adaptive_indexing_100k_50q");
    g.bench("cracking", || {
        let mut cr = CrackerColumn::new(&data);
        let mut total = 0usize;
        for &(lo, hi) in &ranges {
            total += cr.query(lo, hi).0.len();
        }
        total
    });
    g.bench("adaptive_merging", || {
        let mut am = AdaptiveMergeIndex::new(&data, 0);
        let mut total = 0usize;
        for &(lo, hi) in &ranges {
            total += am.query(lo, hi).0.len();
        }
        total
    });
    let table = {
        let mut t = Table::new("t", Schema::from_pairs(&[("k", DataType::Int)]));
        for &k in &data {
            t.append(vec![Value::Int(k)]);
        }
        t
    };
    g.bench("eager_btree_build_then_query", || {
        let ix = BTreeIndex::build("ix", &table, "k").expect("index");
        let mut total = 0usize;
        for &(lo, hi) in &ranges {
            total += ix
                .lookup_range(Some(&Value::Int(lo)), Some(&Value::Int(hi)))
                .len();
        }
        total
    });
}

fn main() {
    bench_joins();
    bench_sort();
    bench_adaptive_indexing();
}
