//! Criterion wrappers over the experiment harness: every table/figure
//! regenerates under `cargo bench` (fast mode), timing the full experiment
//! pipeline. The primary artifacts are the printed reports from the `e*`
//! binaries; these benches guarantee the experiments stay runnable and give
//! a wall-clock baseline per experiment.

use criterion::{criterion_group, criterion_main, Criterion};

macro_rules! exp_bench {
    ($group:ident, $($name:ident),+ $(,)?) => {
        fn $group(c: &mut Criterion) {
            let mut g = c.benchmark_group(stringify!($group));
            g.sample_size(10);
            g.warm_up_time(std::time::Duration::from_millis(500));
            g.measurement_time(std::time::Duration::from_secs(2));
            $(
                g.bench_function(stringify!($name), |b| {
                    b.iter(|| {
                        let report = rqp_bench::$name(true);
                        assert!(!report.is_empty());
                        report.len()
                    })
                });
            )+
            g.finish();
        }
    };
}

exp_bench!(pop_figures, e01_pop_aggregate, e02_pop_ratio, e03_pop_scatter);
exp_bench!(seminar_benchmarks, e04_tractor_pull, e05_extrinsic, e06_equivalence);
exp_bench!(
    optimizer_robustness,
    e07_smoothness,
    e09_robust_opt,
    e10_plan_diagram,
    e20_rio,
    e21_stats_refresh,
);
exp_bench!(estimation, e08_card_metrics, e19_leo, e22_blackhat);
exp_bench!(execution, e11_cracking, e16_agreedy, e17_eddy, e18_gjoin);
exp_bench!(resources, e12_advisor, e13_fmt, e14_fpt, e15_mixed);
exp_bench!(ablations, a01_pop_theta, a02_amerge_runsize, a03_eddy_decay);

criterion_group!(
    benches,
    pop_figures,
    seminar_benchmarks,
    optimizer_robustness,
    estimation,
    execution,
    resources,
    ablations
);
criterion_main!(benches);
