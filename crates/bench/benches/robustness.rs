//! Stopwatch wrappers over the experiment harness: every table/figure
//! regenerates under `cargo bench` (fast mode), timing the full experiment
//! pipeline. The primary artifacts are the printed reports from the `e*`
//! binaries; these benches guarantee the experiments stay runnable and give
//! a wall-clock baseline per experiment.

use rqp_bench::stopwatch::Group;

macro_rules! exp_bench {
    ($group:literal, $($name:ident),+ $(,)?) => {{
        let g = Group::new($group);
        $(
            g.bench(stringify!($name), || {
                let report = rqp_bench::$name(true);
                assert!(!report.is_empty());
                report.len()
            });
        )+
    }};
}

fn main() {
    exp_bench!("pop_figures", e01_pop_aggregate, e02_pop_ratio, e03_pop_scatter);
    exp_bench!("seminar_benchmarks", e04_tractor_pull, e05_extrinsic, e06_equivalence);
    exp_bench!(
        "optimizer_robustness",
        e07_smoothness,
        e09_robust_opt,
        e10_plan_diagram,
        e20_rio,
        e21_stats_refresh,
    );
    exp_bench!("estimation", e08_card_metrics, e19_leo, e22_blackhat);
    exp_bench!("execution", e11_cracking, e16_agreedy, e17_eddy, e18_gjoin);
    exp_bench!("resources", e12_advisor, e13_fmt, e14_fpt, e15_mixed);
    exp_bench!("ablations", a01_pop_theta, a02_amerge_runsize, a03_eddy_decay);
}
