//! # rqp-bench
//!
//! The experiment harness: one function per table/figure the Dagstuhl 10381
//! report presents or specifies (see `DESIGN.md`'s per-experiment index).
//! Each experiment returns its printed report as a `String`; the `e*` binary
//! targets print it, and `EXPERIMENTS.md` records representative output.
//!
//! Run a single experiment:
//!
//! ```sh
//! cargo run --release -p rqp-bench --bin e01_pop_aggregate
//! ```
//!
//! All experiments accept a `fast` flag (used by the test suite and CI) that
//! shrinks data sizes while preserving each experiment's qualitative shape.

#![warn(missing_docs)]

pub mod experiments;
pub mod stopwatch;

pub use experiments::*;
