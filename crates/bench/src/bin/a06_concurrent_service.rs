//! Experiment binary; see DESIGN.md's per-experiment index. Pass `--fast`
//! for a reduced-size run. Writes `a06_concurrent_service.txt` and a JSON
//! run report to `exp_output/` (override with `RQP_EXP_OUTPUT`).

fn main() {
    rqp_bench::experiments::harness::cli_main(
        "a06_concurrent_service",
        rqp_bench::a06_concurrent_service,
    );
}
