//! Experiment binary; see DESIGN.md's per-experiment index. Pass `--fast`
//! for a reduced-size run. Writes `e16_agreedy.txt` and a JSON run report to
//! `exp_output/` (override with `RQP_EXP_OUTPUT`).

fn main() {
    rqp_bench::experiments::harness::cli_main("e16_agreedy", rqp_bench::e16_agreedy);
}
