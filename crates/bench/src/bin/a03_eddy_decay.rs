//! Experiment binary; see DESIGN.md's per-experiment index. Pass `--fast`
//! for a reduced-size run. Writes `a03_eddy_decay.txt` and a JSON run report to
//! `exp_output/` (override with `RQP_EXP_OUTPUT`).

fn main() {
    rqp_bench::experiments::harness::cli_main("a03_eddy_decay", rqp_bench::a03_eddy_decay);
}
