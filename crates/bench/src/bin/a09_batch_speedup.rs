//! Experiment binary; see DESIGN.md's per-experiment index. Pass `--fast`
//! for a reduced-size run. Writes `a09_batch_speedup.txt` and a JSON run
//! report to `exp_output/` (override with `RQP_EXP_OUTPUT`).

fn main() {
    rqp_bench::experiments::harness::cli_main("a09_batch_speedup", rqp_bench::a09_batch_speedup);
}
