//! Experiment binary; see DESIGN.md's per-experiment index. Pass `--fast`
//! for a reduced-size run. Writes `e21_stats_refresh.txt` and a JSON run report to
//! `exp_output/` (override with `RQP_EXP_OUTPUT`).

fn main() {
    rqp_bench::experiments::harness::cli_main("e21_stats_refresh", rqp_bench::e21_stats_refresh);
}
