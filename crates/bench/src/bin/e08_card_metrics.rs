//! Experiment binary; see DESIGN.md's per-experiment index. Pass `--fast`
//! for a reduced-size run. Writes `e08_card_metrics.txt` and a JSON run report to
//! `exp_output/` (override with `RQP_EXP_OUTPUT`).

fn main() {
    rqp_bench::experiments::harness::cli_main("e08_card_metrics", rqp_bench::e08_card_metrics);
}
