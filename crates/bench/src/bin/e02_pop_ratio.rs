//! Experiment binary; see DESIGN.md's per-experiment index. Pass `--fast`
//! for a reduced-size run. Writes `e02_pop_ratio.txt` and a JSON run report to
//! `exp_output/` (override with `RQP_EXP_OUTPUT`).

fn main() {
    rqp_bench::experiments::harness::cli_main("e02_pop_ratio", rqp_bench::e02_pop_ratio);
}
