//! Experiment binary; see DESIGN.md's per-experiment index. Pass `--fast`
//! for a reduced-size run. Writes `a11_continuous_queries.txt` and a JSON
//! run report to `exp_output/` (override with `RQP_EXP_OUTPUT`).

fn main() {
    rqp_bench::experiments::harness::cli_main(
        "a11_continuous_queries",
        rqp_bench::a11_continuous_queries,
    );
}
