//! Ablation binary; see DESIGN.md's ablation index. Pass `--fast` for a
//! reduced-size run.

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    println!("{}", rqp_bench::a01_pop_theta(fast));
}
