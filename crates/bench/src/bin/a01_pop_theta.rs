//! Experiment binary; see DESIGN.md's per-experiment index. Pass `--fast`
//! for a reduced-size run. Writes `a01_pop_theta.txt` and a JSON run report to
//! `exp_output/` (override with `RQP_EXP_OUTPUT`).

fn main() {
    rqp_bench::experiments::harness::cli_main("a01_pop_theta", rqp_bench::a01_pop_theta);
}
