//! Experiment binary; see DESIGN.md's per-experiment index. Pass `--fast`
//! for a reduced-size run. Writes `a05_resource_robustness.txt` and a JSON
//! run report to `exp_output/` (override with `RQP_EXP_OUTPUT`).

fn main() {
    rqp_bench::experiments::harness::cli_main(
        "a05_resource_robustness",
        rqp_bench::a05_resource_robustness,
    );
}
