//! Experiment binary; see DESIGN.md's per-experiment index. Pass `--fast`
//! for a reduced-size run. Writes `a08_live_observer.txt` and a JSON run
//! report to `exp_output/` (override with `RQP_EXP_OUTPUT`). Requires the
//! `rqp-loadgen` binary (built with `cargo build -p rqp-net`) next to this
//! one, or named via `RQP_LOADGEN_BIN`.

fn main() {
    rqp_bench::experiments::harness::cli_main("a08_live_observer", rqp_bench::a08_live_observer);
}
