//! Experiment binary; see DESIGN.md's per-experiment index. Pass `--fast`
//! for a reduced-size run. Writes `a02_amerge_runsize.txt` and a JSON run report to
//! `exp_output/` (override with `RQP_EXP_OUTPUT`).

fn main() {
    rqp_bench::experiments::harness::cli_main("a02_amerge_runsize", rqp_bench::a02_amerge_runsize);
}
