//! Experiment harness binary; see DESIGN.md's per-experiment index.
//! Pass `--fast` for a reduced-size run.

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    println!("{}", rqp_bench::e10_plan_diagram(fast));
}
