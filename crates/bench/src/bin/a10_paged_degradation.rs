//! Experiment binary; see DESIGN.md's per-experiment index. Pass `--fast`
//! for a reduced-size run. Writes `a10_paged_degradation.txt` and a JSON
//! run report to `exp_output/` (override with `RQP_EXP_OUTPUT`).

fn main() {
    rqp_bench::experiments::harness::cli_main(
        "a10_paged_degradation",
        rqp_bench::a10_paged_degradation,
    );
}
