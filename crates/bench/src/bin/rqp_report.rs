//! `rqp-report` — the observability CLI over `exp_output/` artifacts.
//!
//! ```text
//! rqp-report show <report.json>                 render one run report
//! rqp-report scoreboard <dir> [-o <out.json>]   fold reports into a scoreboard
//! rqp-report diff <baseline.json> <current.json>   regression gate
//! ```
//!
//! `show` renders the report's trace tree EXPLAIN ANALYZE-style, lists the
//! adaptive-decision events in cost-clock order, and summarizes metrics.
//! `scoreboard` folds every `*.json` run report in a directory into the
//! cross-run scoreboard of paper metrics. `diff` compares two scoreboards
//! with per-metric thresholds and exits non-zero when the current board
//! regresses against the baseline — the CI gate.

use rqp::telemetry::{DiffThresholds, EventTail, Json, MetricValue, RunReport, Scoreboard};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage:
  rqp-report show <report.json>
  rqp-report scoreboard <dir> [-o <out.json>]
  rqp-report diff <baseline.json> <current.json>

exit status: 0 on success, 1 on detected regression (diff), 2 on bad
invocation or unreadable input.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("show") => show(&args[1..]),
        Some("scoreboard") => scoreboard(&args[1..]),
        Some("diff") => return diff(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

fn load_scoreboard(path: &str) -> Result<Scoreboard, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Scoreboard::from_json(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn show(args: &[String]) -> Result<(), String> {
    let [path] = args else { return Err(USAGE.to_string()) };
    // A `show` target is either a run report or a live-captured events
    // dump (`rqp-top --events-dump`); the dump's `kind` marker decides.
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    if let Ok(dump) = EventTail::from_json(&doc) {
        print!("{}", render_events_dump(&dump));
    } else {
        let report = RunReport::from_json(&text).map_err(|e| format!("parse {path}: {e}"))?;
        print!("{}", render_report(&report));
    }
    Ok(())
}

/// Render a captured flight-recorder tail with the same event formatter
/// as the run-report adaptive-decision listing, keyed by owning query
/// instead of span id.
fn render_events_dump(dump: &EventTail) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "flight-recorder events ({}), {} overwritten before capture:\n",
        dump.events.len(),
        dump.gap,
    ));
    for ev in &dump.events {
        out.push_str(&event_line(ev.at, &format!("q {:>4}", ev.query), &ev.kind, &ev.detail));
    }
    out
}

/// One event line: shared by the run-report adaptive-decision listing
/// (owner = a span id) and the events-dump rendering (owner = a query id).
fn event_line(at: f64, owner: &str, kind: &str, detail: &str) -> String {
    format!("  @{at:<10.0} {owner}  {kind:<14} {detail}\n")
}

/// The full human rendering of one run report.
fn render_report(report: &RunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("experiment: {}\n", report.experiment));
    for (k, v) in &report.config {
        out.push_str(&format!("  config {k} = {v}\n"));
    }
    for (stream, seed) in &report.rng {
        out.push_str(&format!("  rng    {stream} = {seed}\n"));
    }
    out.push_str(&format!(
        "  cost   total {:.0} (seq_io {:.0}, rand_io {:.0}, cpu {:.0}, spill {:.0})\n",
        report.cost.total(),
        report.cost.seq_io,
        report.cost.rand_io,
        report.cost.cpu,
        report.cost.spill,
    ));

    if !report.spans.is_empty() {
        out.push_str("\ntrace:\n");
        out.push_str(&report.trace().render());
    }

    let events = report.events();
    if !events.is_empty() {
        out.push_str(&format!("\nadaptive-decision events ({}):\n", events.len()));
        for (span_id, ev) in &events {
            out.push_str(&event_line(ev.at, &format!("span {span_id:>3}"), &ev.kind, &ev.detail));
        }
    }

    if !report.metrics.is_empty() {
        out.push_str("\nmetrics:\n");
        for (name, value) in &report.metrics {
            match value {
                MetricValue::Counter(n) => {
                    out.push_str(&format!("  {name} = {n}\n"));
                }
                MetricValue::Gauge(x) => {
                    out.push_str(&format!("  {name} = {x}\n"));
                }
                MetricValue::Histogram { count, sum, max, buckets } => {
                    out.push_str(&format!(
                        "  {name}: count {count}, mean {:.2}, max {max:.2}, \
                         p50 {:.2}, p95 {:.2}, p99 {:.2}\n",
                        if *count > 0 { sum / *count as f64 } else { f64::NAN },
                        rqp::telemetry::bucket_quantile(buckets, 0.50),
                        rqp::telemetry::bucket_quantile(buckets, 0.95),
                        rqp::telemetry::bucket_quantile(buckets, 0.99),
                    ));
                }
            }
        }
    }
    out
}

fn scoreboard(args: &[String]) -> Result<(), String> {
    let (dir, out_path) = match args {
        [dir] => (dir, None),
        [dir, flag, out] if flag == "-o" => (dir, Some(out)),
        _ => return Err(USAGE.to_string()),
    };
    let board = Scoreboard::from_dir(Path::new(dir))?;
    let text = board.to_json().pretty();
    match out_path {
        Some(p) => {
            board
                .write_to(Path::new(p))
                .map_err(|e| format!("write {p}: {e}"))?;
            println!("scoreboard: {} experiments -> {p}", board.entries.len());
        }
        None => println!("{text}"),
    }
    Ok(())
}

fn diff(args: &[String]) -> ExitCode {
    let [baseline_path, current_path] = args else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let (baseline, current) =
        match (load_scoreboard(baseline_path), load_scoreboard(current_path)) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
    let regressions = baseline.diff(&current, &DiffThresholds::default());
    if regressions.is_empty() {
        println!(
            "no regressions: {} experiments within thresholds of {}",
            current.entries.len(),
            baseline_path,
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("{} regression(s) against {baseline_path}:", regressions.len());
        for r in &regressions {
            eprintln!("  {r}");
        }
        ExitCode::FAILURE
    }
}
