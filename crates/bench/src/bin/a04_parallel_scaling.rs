//! Experiment binary; see DESIGN.md's per-experiment index. Pass `--fast`
//! for a reduced-size run. Writes `a04_parallel_scaling.txt` and a JSON run
//! report to `exp_output/` (override with `RQP_EXP_OUTPUT`).

fn main() {
    rqp_bench::experiments::harness::cli_main(
        "a04_parallel_scaling",
        rqp_bench::a04_parallel_scaling,
    );
}
