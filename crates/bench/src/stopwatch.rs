//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace is hermetic (no crates.io), so criterion is replaced by
//! this stopwatch: per benchmark it runs a warm-up pass, then a fixed number
//! of timed samples, and prints min/median/mean. The cost-clock experiments
//! (`e01`–`e22`) remain the primary artifacts; these numbers are a coarse
//! wall-clock baseline for catching order-of-magnitude regressions.

use std::time::{Duration, Instant};

/// Number of timed samples per benchmark.
const SAMPLES: usize = 10;

/// A named group of stopwatch benchmarks, printed as one block.
pub struct Group {
    name: String,
}

impl Group {
    /// Start a group; prints the header immediately.
    pub fn new(name: &str) -> Self {
        println!("\n== {name} ==");
        Group { name: name.to_string() }
    }

    /// Time `f` (one warm-up call, then [`SAMPLES`] timed calls) and print a
    /// row. The closure's return value is consumed with `std::hint::black_box`
    /// so the work is not optimized away.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        let mut times: Vec<Duration> = (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort();
        let min = times[0];
        let median = times[SAMPLES / 2];
        let mean = times.iter().sum::<Duration>() / SAMPLES as u32;
        println!(
            "{:<40} median {:>10.3?}  min {:>10.3?}  mean {:>10.3?}  ({SAMPLES} samples)",
            format!("{}/{name}", self.name),
            median,
            min,
            mean,
        );
    }
}
