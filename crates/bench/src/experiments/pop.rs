//! E01–E03: the POP figures (the report's only *measured* artifacts).
//!
//! "Guy presented some slides showing how IBM demonstrated the impact of POP
//! upon a customer workload":
//!
//! * **Figure 1** — box plots of response times, standard vs POP: POP barely
//!   moves the mid-50% but dramatically shortens the outlier tail;
//! * **Figure 2** — per-query speed-up ratio (no-POP / POP) in decreasing
//!   order, with the no-speed-up line at 1.0 making regressions explicit;
//! * **Figure 3** — a scatter of response time without POP (x) vs with POP
//!   (y): improvements below the diagonal, regressions above.
//!
//! The "customer workload" substitute: a batch of 3-way join queries whose
//! fact-side selectivity estimates carry log-uniform random error (most
//! mild, a tail severe) — the estimation-error distribution every production
//! DBA recognizes.

use super::harness::{self, Harness};
use rand::Rng;
use rqp::adaptive::pop::{run_standard, run_with_pop, EstimatorWrapper, PopConfig};
use rqp::common::rng::child_seed;
use rqp::exec::ExecContext;
use rqp::metrics::{BoxPlot, ReportTable, Summary};
use rqp::opt::PlannerConfig;
use rqp::stats::{LyingEstimator, TableStatsRegistry};
use rqp::workload::{tpch::TpchParams, TpchDb};

/// One query's outcome under both regimes.
#[derive(Debug, Clone, Copy)]
pub struct PopPoint {
    /// Response (cost units) without POP.
    pub standard: f64,
    /// Response with POP.
    pub pop: f64,
    /// Re-optimizations POP performed.
    pub reopts: usize,
}

/// Run the shared POP problem workload, recording its seeds and headline
/// numbers on the harness.
pub fn run_pop_workload(h: &mut Harness) -> Vec<PopPoint> {
    let (li_rows, n_queries) = if h.fast() { (3000, 12) } else { (12_000, 60) };
    let db = TpchDb::build(
        TpchParams { lineitem_rows: li_rows, ..Default::default() },
        h.note_seed("db", 1001),
    );
    let registry = TableStatsRegistry::analyze_catalog(&db.catalog, 32);
    let mut rng = h.seeded("pop-workload", child_seed(1001, "pop-workload"));
    let mut out = Vec::with_capacity(n_queries);
    for qi in 0..n_queries {
        // Error severity: log-uniform underestimate in [1, 1000]×.
        let severity = 10f64.powf(rng.gen_range(0.0..3.0));
        let factor = 1.0 / severity;
        let spec = match qi % 2 {
            0 => db.q3(rng.gen_range(0..5), rng.gen_range(800..2000)),
            _ => db.q5(0, 24, rng.gen_range(0..1200)),
        };
        let wrap: Box<EstimatorWrapper<'_>> = Box::new(move |e| {
            Box::new(LyingEstimator::new(e).with_table_factor("lineitem", factor))
        });
        let cfg = PlannerConfig::default();
        let ctx = ExecContext::unbounded();
        let (rows_std, standard) =
            run_standard(&spec, &db.catalog, &registry, wrap.as_ref(), cfg, &ctx)
                .expect("standard run");
        let ctx = ExecContext::unbounded();
        let report = run_with_pop(
            &spec,
            &db.catalog,
            &registry,
            wrap.as_ref(),
            cfg,
            PopConfig::default(),
            &ctx,
        )
        .expect("pop run");
        assert_eq!(rows_std.len(), report.rows.len(), "POP must not change answers");
        out.push(PopPoint { standard, pop: report.total_cost, reopts: report.reoptimizations() });
    }
    // The workload's paper-metric samples: per-query gap between the
    // regimes (smoothness of improvement), and the static regime's
    // divergence from the adaptive one (extrinsic variability).
    h.config("queries", out.len());
    h.perf_gaps(&out.iter().map(|p| (p.standard - p.pop).abs()).collect::<Vec<_>>());
    h.env_costs(&out.iter().map(|p| (p.standard, p.pop)).collect::<Vec<_>>());
    out
}

/// Record the workload's cost distributions and re-optimization counts on
/// the harness registry, and execute one representative problem query (a
/// severe 100× underestimate) under POP on the harness context so its full
/// operator span trace — `check` spans, `pop.violation` events — lands in
/// the run report.
fn instrument_e01(h: &mut Harness, points: &[PopPoint]) {
    let std_hist = h.ctx().metrics.histogram("cost.standard");
    let pop_hist = h.ctx().metrics.histogram("cost.pop");
    for p in points {
        std_hist.observe(p.standard);
        pop_hist.observe(p.pop);
    }
    let li_rows = if h.fast() { 3000 } else { 12_000 };
    let db = TpchDb::build(
        TpchParams { lineitem_rows: li_rows, ..Default::default() },
        h.note_seed("db-representative", 1001),
    );
    let registry = TableStatsRegistry::analyze_catalog(&db.catalog, 32);
    let wrap: Box<EstimatorWrapper<'_>> = Box::new(|e| {
        Box::new(LyingEstimator::new(e).with_table_factor("lineitem", 0.01))
    });
    run_with_pop(
        &db.q3(1, 1200),
        &db.catalog,
        &registry,
        wrap.as_ref(),
        PlannerConfig::default(),
        PopConfig::default(),
        h.ctx(),
    )
    .expect("traced POP run");
}

/// E01 — Figure 1: aggregated improvement (box plots).
pub fn e01_pop_aggregate(fast: bool) -> String {
    harness::run("e01_pop_aggregate", fast, |h| {
        let points = run_pop_workload(h);
        instrument_e01(h, &points);
        let std_costs: Vec<f64> = points.iter().map(|p| p.standard).collect();
        let pop_costs: Vec<f64> = points.iter().map(|p| p.pop).collect();
        let sb = BoxPlot::of(&std_costs);
        let pb = BoxPlot::of(&pop_costs);
        let ss = Summary::of(&std_costs);
        let ps = Summary::of(&pop_costs);
        let mut t =
            ReportTable::new(&["regime", "q1", "median", "q3", "whisker-hi", "max", "mean"]);
        for (name, b, s) in [("standard", &sb, &ss), ("POP", &pb, &ps)] {
            t.row(&[
                name.into(),
                format!("{:.0}", b.q1),
                format!("{:.0}", b.median),
                format!("{:.0}", b.q3),
                format!("{:.0}", b.whisker_hi),
                format!("{:.0}", s.max),
                format!("{:.0}", s.mean),
            ]);
        }
        format!(
            "E01 — POP Figure 1: aggregated improvement ({} queries)\n\n\
             standard: {}\nPOP:      {}\n\n{t}\n\
             Expected shape: mid-50% barely moves, the outlier tail collapses.\n\
             tail compression (max std / max POP): {:.1}x\n",
            points.len(),
            sb.render(),
            pb.render(),
            ss.max / ps.max.max(1.0),
        )
    })
}

/// E02 — Figure 2: per-query speed-up ratios in decreasing order.
pub fn e02_pop_ratio(fast: bool) -> String {
    harness::run("e02_pop_ratio", fast, |h| {
        let points = run_pop_workload(h);
        e02_body(&points)
    })
}

fn e02_body(points: &[PopPoint]) -> String {
    let mut ratios: Vec<(f64, usize)> =
        points.iter().map(|p| (p.standard / p.pop.max(1e-9), p.reopts)).collect();
    ratios.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut t = ReportTable::new(&["rank", "speedup (std/POP)", "reopts", "vs 1.0 line"]);
    for (i, (r, reopts)) in ratios.iter().enumerate() {
        t.row(&[
            format!("{}", i + 1),
            format!("{r:.2}"),
            format!("{reopts}"),
            if *r >= 1.0 { "improved".into() } else { "REGRESSED".into() },
        ]);
    }
    let regressions = ratios.iter().filter(|(r, _)| *r < 1.0).count();
    let improved_5x = ratios.iter().filter(|(r, _)| *r >= 5.0).count();
    format!(
        "E02 — POP Figure 2: relative improvement, decreasing\n\n{t}\n\
         queries ≥5x faster: {improved_5x}; regressions (below the red line): {regressions} \
         of {}\nExpected shape: large improvements at the head, a small number of \
         mild regressions at the tail.\n",
        ratios.len()
    )
}

/// E03 — Figure 3: scatter of standard (x) vs POP (y) response time.
pub fn e03_pop_scatter(fast: bool) -> String {
    harness::run("e03_pop_scatter", fast, |h| {
        let points = run_pop_workload(h);
        e03_body(&points)
    })
}

fn e03_body(points: &[PopPoint]) -> String {
    let mut t = ReportTable::new(&["std (x)", "POP (y)", "y/x", "side of diagonal"]);
    let mut below = 0usize;
    for p in points {
        let ratio = p.pop / p.standard.max(1e-9);
        if ratio <= 1.0 {
            below += 1;
        }
        t.row(&[
            format!("{:.0}", p.standard),
            format!("{:.0}", p.pop),
            format!("{ratio:.2}"),
            if ratio <= 1.0 { "below (improved)".into() } else { "above (regressed)".into() },
        ]);
    }
    format!(
        "E03 — POP Figure 3: scatter plot data (x = no POP, y = with POP)\n\n{t}\n\
         points on/below the diagonal: {below}/{}\n\
         Expected shape: the cloud hugs the diagonal for easy queries and \
         falls far below it for the problem queries.\n",
        points.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e01_report_carries_trace_seeds_and_paper_samples() {
        let dir = std::env::temp_dir().join("rqp_e01_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let guard = harness::test_env::redirect(&dir);
        let out = e01_pop_aggregate(true);
        drop(guard);
        assert!(out.contains("run report:"), "{out}");
        let text = std::fs::read_to_string(dir.join("e01_pop_aggregate.json")).unwrap();
        let report = rqp::telemetry::RunReport::from_json(&text).expect("parse");
        assert_eq!(report.experiment, "e01_pop_aggregate");
        assert!(!report.spans.is_empty(), "traced query must leave spans");
        assert!(
            report.spans.iter().any(|s| s.kind == "check"),
            "POP instrumentation must show up as check spans"
        );
        assert!(report.rng.iter().any(|(s, _)| s == "db"), "db seed recorded");
        assert!(
            report.rng.iter().any(|(s, _)| s == "pop-workload"),
            "workload stream recorded"
        );
        assert!(
            report
                .metrics
                .iter()
                .any(|(name, _)| name
                    .starts_with(rqp::telemetry::scoreboard::samples::PERF_GAP_PREFIX)),
            "paper perf-gap samples published"
        );
        assert_eq!(
            report.to_json().pretty(),
            text,
            "re-serialization is stable"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
