//! E11, E16, E17, E18: robust execution mechanisms.

use super::harness::{self, Harness};
use rand::Rng;
use rqp::exec::{
    collect, AGreedyFilterOp, AMergeScanOp, CrackerScanOp, EddyFilterOp, ExecContext,
    GJoinOp, HashJoinOp, IndexNlJoinOp, IndexScanOp, MergeJoinOp, Operator, RoutingPolicy,
    SortOp, TableScanOp,
};
use rqp::expr::{col, lit};
use rqp::metrics::ReportTable;
use rqp::{Catalog, DataType, Row, Schema, Table, Value};

/// E11 — adaptive indexing: cracking vs adaptive merging vs scan vs eager
/// index over a query sequence (the convergence curve).
pub fn e11_cracking(fast: bool) -> String {
    harness::run("e11_cracking", fast, e11_body)
}

fn e11_body(h: &mut Harness) -> String {
    let (rows, queries) = if h.fast() { (30_000usize, 12usize) } else { (200_000, 25) };
    let range = (rows / 100) as i64; // ~1% selectivity
    let mut rng = h.seeded("keys-and-queries", 11);
    let mut catalog = Catalog::new();
    let mut t = Table::new("t", Schema::from_pairs(&[("k", DataType::Int)]));
    for _ in 0..rows {
        t.append(vec![Value::Int(rng.gen_range(0..rows as i64))]);
    }
    catalog.add_table(t);
    catalog.create_cracker("t", "k").expect("cracker");
    catalog.create_amerge("t", "k", 0).expect("amerge");
    // Eager index pays its build up front.
    let eager_ctx = ExecContext::unbounded();
    eager_ctx
        .clock
        .charge_compares(rows as f64 * (rows as f64).log2());
    catalog.create_index("ix", "t", "k").expect("index");

    let scan_ctx = ExecContext::unbounded();
    let crack_ctx = ExecContext::unbounded();
    let amerge_ctx = ExecContext::unbounded();
    let mut table = ReportTable::new(&["query", "scan", "crack", "amerge", "eager index"]);
    let mut prev = [0.0, eager_ctx.clock.now(), 0.0, 0.0];
    let mut crack_q1 = 0.0;
    let mut crack_last = 0.0;
    let mut crack_deltas = Vec::new();
    for q in 0..queries {
        let lo = rng.gen_range(0..rows as i64 - range);
        let hi = lo + range - 1;
        let mut scan = TableScanOp::new(catalog.table("t").expect("t"), scan_ctx.clone());
        while scan.next().is_some() {}
        let mut crack = CrackerScanOp::new(
            catalog.cracker("t", "k").expect("cracker"),
            catalog.table("t").expect("t"),
            lo,
            hi,
            crack_ctx.clone(),
        );
        let n_crack = collect(&mut crack).len();
        let mut amerge = AMergeScanOp::new(
            catalog.amerge("t", "k").expect("amerge"),
            catalog.table("t").expect("t"),
            lo,
            hi,
            amerge_ctx.clone(),
        );
        let n_amerge = collect(&mut amerge).len();
        assert_eq!(n_crack, n_amerge);
        let mut ix = IndexScanOp::new(
            catalog.index("ix").expect("ix"),
            catalog.table("t").expect("t"),
            Some(Value::Int(lo)),
            Some(Value::Int(hi)),
            eager_ctx.clone(),
        );
        let n_ix = collect(&mut ix).len();
        assert_eq!(n_crack, n_ix);
        let now = [
            scan_ctx.clock.now(),
            eager_ctx.clock.now(),
            crack_ctx.clock.now(),
            amerge_ctx.clock.now(),
        ];
        let d_crack = now[2] - prev[2];
        if q == 0 {
            crack_q1 = d_crack;
        }
        crack_last = d_crack;
        crack_deltas.push(d_crack);
        table.row(&[
            format!("{q}"),
            format!("{:.0}", now[0] - prev[0]),
            format!("{:.0}", d_crack),
            format!("{:.0}", now[3] - prev[3]),
            format!("{:.0}", now[1] - prev[1]),
        ]);
        prev = now;
    }
    h.config("queries", queries);
    // Cracking's per-query cost curve (convergence smoothness) and each
    // strategy's cumulative work against the cheapest.
    h.perf_gaps(&crack_deltas);
    let totals = [
        scan_ctx.clock.now(),
        crack_ctx.clock.now(),
        amerge_ctx.clock.now(),
        eager_ctx.clock.now(),
    ];
    let best_total = totals.iter().cloned().fold(f64::INFINITY, f64::min);
    h.env_costs(&totals.iter().map(|t| (*t, best_total)).collect::<Vec<_>>());
    format!(
        "E11 — adaptive indexing convergence ({rows} rows, {queries} 1% range queries)\n\n{table}\n\
         cumulative: scan {:.0} | crack {:.0} | amerge {:.0} | eager index \
         incl. build {:.0}\n\
         Expected shape: crack query 0 ≈ a scan, converging toward the index \
         (first {crack_q1:.0} → last {crack_last:.0}); total adaptive work ≪ \
         eager build unless the whole domain is queried.\n",
        scan_ctx.clock.now(),
        crack_ctx.clock.now(),
        amerge_ctx.clock.now(),
        eager_ctx.clock.now(),
    )
}

/// A two-phase drifting source: selectivity roles of the two predicate
/// columns swap halfway through.
fn drifting_table(n: i64) -> (Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
    let rows = (0..n)
        .map(|i| {
            if i < n / 2 {
                vec![Value::Int(i % 40), Value::Int(200 + i % 800)]
            } else {
                vec![Value::Int(200 + i % 800), Value::Int(i % 40)]
            }
        })
        .collect();
    (schema, rows)
}

struct VecOp {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
}

impl Operator for VecOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn next(&mut self) -> Option<Row> {
        self.rows.next()
    }
}

fn vec_op(schema: Schema, rows: Vec<Row>) -> Box<dyn Operator> {
    Box::new(VecOp { schema, rows: rows.into_iter() })
}

/// E16 — A-Greedy adaptive selection ordering under mid-stream drift.
pub fn e16_agreedy(fast: bool) -> String {
    harness::run("e16_agreedy", fast, e16_body)
}

fn e16_body(h: &mut Harness) -> String {
    let n = if h.fast() { 20_000 } else { 100_000 };
    let (schema, rows) = drifting_table(n);
    let preds = vec![col("a").lt(lit(100i64)), col("b").lt(lit(100i64))];
    // A-Greedy runs on the harness context so its spans land in the report.
    let ctx = h.ctx().clone();

    // Static order tuned for phase 1 (b first): stale after the drift.
    let mut stale_evals = 0usize;
    {
        let p_b = preds[1].bind(&schema).expect("bind");
        let p_a = preds[0].bind(&schema).expect("bind");
        for r in &rows {
            stale_evals += 1;
            if p_b.eval_bool(r) {
                stale_evals += 1;
                let _ = p_a.eval_bool(r);
            }
        }
    }
    // Optimal static per phase (an oracle that knew the drift): best first
    // predicate each phase drops ~everything, so ≈ n evaluations.
    let optimal_evals = rows.len();

    let mut agreedy = AGreedyFilterOp::new(
        vec_op(schema.clone(), rows.clone()),
        &preds,
        300,
        0.05,
        200,
        16,
        ctx.clone(),
    )
    .expect("agreedy");
    let out = collect(&mut agreedy);

    let mut t = ReportTable::new(&["strategy", "predicate evaluations", "vs optimal"]);
    for (name, evals) in [
        ("static (stale after drift)", stale_evals),
        ("A-Greedy", agreedy.evaluations),
        ("oracle static per phase", optimal_evals),
    ] {
        t.row(&[
            name.into(),
            format!("{evals}"),
            format!("{:.2}x", evals as f64 / optimal_evals as f64),
        ]);
    }
    h.config("drift_at", n / 2);
    h.gauge("agreedy.reorderings", agreedy.reorderings as f64);
    h.env_costs(&[
        (stale_evals as f64, optimal_evals as f64),
        (agreedy.evaluations as f64, optimal_evals as f64),
    ]);
    format!(
        "E16 — A-Greedy adaptive selection ordering (drift at tuple {})\n\n{t}\n\
         result rows: {} (identical across strategies); reorderings performed: {}\n\
         Expected shape: A-Greedy tracks the oracle within its sampling \
         overhead; the stale static order pays ~2 evaluations/tuple after \
         the flip.\n",
        n / 2,
        out.len(),
        agreedy.reorderings,
    )
}

/// E17 — eddies vs a fixed plan under selectivity drift.
pub fn e17_eddy(fast: bool) -> String {
    harness::run("e17_eddy", fast, e17_body)
}

fn e17_body(h: &mut Harness) -> String {
    let n = if h.fast() { 20_000 } else { 100_000 };
    let (schema, rows) = drifting_table(n);
    let preds = vec![col("a").lt(lit(100i64)), col("b").lt(lit(100i64))];
    let lottery_seed = h.note_seed("eddy-lottery", 17);
    let run = |policy: RoutingPolicy, ctx: ExecContext| -> (usize, usize) {
        let mut eddy = EddyFilterOp::new(
            vec_op(schema.clone(), rows.clone()),
            &preds,
            policy,
            lottery_seed,
            ctx,
        )
        .expect("eddy");
        let out = collect(&mut eddy);
        (eddy.evaluations, out.len())
    };
    // The lottery run executes on the harness context so its eddy.reroute
    // events land in the run report.
    let (lottery_evals, lottery_rows) =
        run(RoutingPolicy::Lottery { decay: 0.999 }, h.ctx().clone());
    let (fixed_a_evals, fixed_rows) =
        run(RoutingPolicy::Fixed(vec![0, 1]), ExecContext::unbounded());
    let (fixed_b_evals, _) = run(RoutingPolicy::Fixed(vec![1, 0]), ExecContext::unbounded());
    assert_eq!(lottery_rows, fixed_rows);
    let best = lottery_evals.min(fixed_a_evals).min(fixed_b_evals) as f64;
    h.config("drift_at", n / 2);
    h.env_costs(&[
        (fixed_a_evals as f64, best),
        (fixed_b_evals as f64, best),
        (lottery_evals as f64, best),
    ]);
    let mut t = ReportTable::new(&["policy", "evaluations", "per tuple"]);
    for (name, evals) in [
        ("fixed a-first (good early, bad late)", fixed_a_evals),
        ("fixed b-first (bad early, good late)", fixed_b_evals),
        ("eddy lottery (adapts at the flip)", lottery_evals),
    ] {
        t.row(&[name.into(), format!("{evals}"), format!("{:.2}", evals as f64 / n as f64)]);
    }
    format!(
        "E17 — eddy routing under mid-stream selectivity drift\n\n{t}\n\
         Expected shape: each fixed order is optimal in one phase and \
         pessimal in the other (~1.5 evals/tuple); the eddy re-routes within \
         its lottery exploration and beats both.\n",
    )
}

/// E18 — the generalized join vs the traditional repertoire across regimes.
pub fn e18_gjoin(fast: bool) -> String {
    harness::run("e18_gjoin", fast, e18_body)
}

fn e18_body(h: &mut Harness) -> String {
    let n = if h.fast() { 4_000i64 } else { 20_000i64 };
    let mut rng = h.seeded("keys", 18);
    let mut keys = |n: i64, shuffled: bool| -> Vec<i64> {
        (0..n)
            .map(|i| if shuffled { rng.gen_range(0..n / 4) } else { i % (n / 4) })
            .collect()
    };
    let make = |name: &'static str, ks: &[i64]| -> Box<dyn Operator> {
        let schema = Schema::from_pairs(&[(
            Box::leak(format!("{name}.k").into_boxed_str()) as &str,
            DataType::Int,
        )]);
        vec_op(schema, ks.iter().map(|&k| vec![Value::Int(k)]).collect())
    };

    // The regimes of the g-join abstract: sorted inputs, unsorted inputs,
    // indexed inner with small outer.
    let mut t = ReportTable::new(&["regime", "hash", "merge(+sort)", "INL", "g-join", "winner", "gjoin/best"]);
    let mut worst_ratio = 1.0f64;
    let mut env_pairs = Vec::new();

    // Regime A: both inputs sorted.
    {
        let mut ka = keys(n, false);
        ka.sort_unstable();
        let mut kb = keys(n / 2, false);
        kb.sort_unstable();
        let run_hash = cost(|ctx| {
            let mut j = HashJoinOp::new(make("l", &ka), make("r", &kb), &["l.k"], &["r.k"], ctx)
                .expect("hash");
            collect(&mut j).len()
        });
        let run_merge = cost(|ctx| {
            let mut j =
                MergeJoinOp::new(make("l", &ka), make("r", &kb), &["l.k"], &["r.k"], ctx)
                    .expect("merge");
            collect(&mut j).len()
        });
        let run_g = cost(|ctx| {
            let mut j = GJoinOp::new(
                make("l", &ka),
                make("r", &kb),
                &["l.k"],
                &["r.k"],
                true,
                true,
                None,
                ctx,
            )
            .expect("gjoin");
            collect(&mut j).len()
        });
        let ratio =
            report_row(&mut t, "sorted ⋈ sorted", run_hash, run_merge, None, run_g);
        worst_ratio = worst_ratio.max(ratio);
        env_pairs.push((run_g.0, run_g.0 / ratio));
    }

    // Regime B: both inputs unsorted.
    {
        let ka = keys(n, true);
        let kb = keys(n / 2, true);
        let run_hash = cost(|ctx| {
            let mut j = HashJoinOp::new(make("l", &ka), make("r", &kb), &["l.k"], &["r.k"], ctx)
                .expect("hash");
            collect(&mut j).len()
        });
        let run_merge = cost(|ctx| {
            let sl = Box::new(SortOp::asc(make("l", &ka), &["l.k"], ctx.clone()).expect("sort"));
            let sr = Box::new(SortOp::asc(make("r", &kb), &["r.k"], ctx.clone()).expect("sort"));
            let mut j = MergeJoinOp::new(sl, sr, &["l.k"], &["r.k"], ctx).expect("merge");
            collect(&mut j).len()
        });
        let run_g = cost(|ctx| {
            let mut j = GJoinOp::new(
                make("l", &ka),
                make("r", &kb),
                &["l.k"],
                &["r.k"],
                false,
                false,
                None,
                ctx,
            )
            .expect("gjoin");
            collect(&mut j).len()
        });
        let ratio =
            report_row(&mut t, "unsorted ⋈ unsorted", run_hash, run_merge, None, run_g);
        worst_ratio = worst_ratio.max(ratio);
        env_pairs.push((run_g.0, run_g.0 / ratio));
    }

    // Regime C: tiny outer, indexed inner.
    {
        let mut catalog = Catalog::new();
        let mut inner = Table::new("inner", Schema::from_pairs(&[("k", DataType::Int)]));
        for i in 0..n {
            inner.append(vec![Value::Int(i % (n / 4))]);
        }
        catalog.add_table(inner);
        catalog.create_index("ix", "inner", "k").expect("ix");
        let outer_keys: Vec<i64> = (0..10).map(|i| i * 3).collect();
        let run_hash = cost(|ctx| {
            let mut scan = TableScanOp::new(catalog.table("inner").expect("t"), ctx.clone());
            let mut inner_rows = Vec::new();
            while let Some(r) = scan.next() {
                inner_rows.push(r);
            }
            let schema = Schema::from_pairs(&[("inner.k", DataType::Int)]);
            let mut j = HashJoinOp::new(
                make("l", &outer_keys),
                vec_op(schema, inner_rows),
                &["l.k"],
                &["inner.k"],
                ctx,
            )
            .expect("hash");
            collect(&mut j).len()
        });
        let run_inl = cost(|ctx| {
            let mut j = IndexNlJoinOp::new(
                make("l", &outer_keys),
                "l.k",
                catalog.index("ix").expect("ix"),
                catalog.table("inner").expect("t"),
                ctx,
            )
            .expect("inl");
            collect(&mut j).len()
        });
        let run_g = cost(|ctx| {
            let ii = rqp::exec::gjoin::InnerIndex {
                index: catalog.index("ix").expect("ix"),
                table: catalog.table("inner").expect("t"),
            };
            let dummy = vec_op(Schema::from_pairs(&[("inner.k", DataType::Int)]), vec![]);
            let mut j = GJoinOp::new(
                make("l", &outer_keys),
                dummy,
                &["l.k"],
                &["inner.k"],
                false,
                false,
                Some(ii),
                ctx,
            )
            .expect("gjoin");
            collect(&mut j).len()
        });
        let ratio = report_row(
            &mut t,
            "tiny outer, indexed inner",
            run_hash,
            (f64::NAN, 0),
            Some(run_inl),
            run_g,
        );
        worst_ratio = worst_ratio.max(ratio);
        env_pairs.push((run_g.0, run_g.0 / ratio));
    }

    // Each regime is an environment: g-join's cost vs the best traditional
    // algorithm's. Robustness = staying near the ideal in all of them.
    h.env_costs(&env_pairs);
    h.gauge("gjoin.worst_ratio", worst_ratio);

    format!(
        "E18 — generalized join vs the traditional repertoire\n\n{t}\n\
         Expected shape: g-join tracks the per-regime best within a small \
         constant everywhere (worst observed ratio: {worst_ratio:.2}x) — \
         ending mistaken join-method choices by removing the choice.\n",
    )
}

fn cost(f: impl FnOnce(ExecContext) -> usize) -> (f64, usize) {
    let ctx = ExecContext::unbounded();
    let rows = f(ctx.clone());
    (ctx.clock.now(), rows)
}

fn report_row(
    t: &mut ReportTable,
    regime: &str,
    hash: (f64, usize),
    merge: (f64, usize),
    inl: Option<(f64, usize)>,
    gjoin: (f64, usize),
) -> f64 {
    // All present algorithms must agree on output cardinality.
    let mut cards = vec![hash.1, gjoin.1];
    if !merge.0.is_nan() {
        cards.push(merge.1);
    }
    if let Some(i) = inl {
        cards.push(i.1);
    }
    cards.dedup();
    assert_eq!(cards.len(), 1, "join algorithms disagree in regime {regime}");

    let mut best = hash.0;
    if !merge.0.is_nan() {
        best = best.min(merge.0);
    }
    if let Some(i) = inl {
        best = best.min(i.0);
    }
    let ratio = gjoin.0 / best;
    let winner = {
        let mut w = ("hash", hash.0);
        if !merge.0.is_nan() && merge.0 < w.1 {
            w = ("merge", merge.0);
        }
        if let Some(i) = inl {
            if i.0 < w.1 {
                w = ("INL", i.0);
            }
        }
        if gjoin.0 <= w.1 {
            "g-join"
        } else {
            w.0
        }
    };
    t.row(&[
        regime.into(),
        format!("{:.0}", hash.0),
        if merge.0.is_nan() { "—".into() } else { format!("{:.0}", merge.0) },
        inl.map(|i| format!("{:.0}", i.0)).unwrap_or_else(|| "—".into()),
        format!("{:.0}", gjoin.0),
        winner.into(),
        format!("{ratio:.2}x"),
    ]);
    ratio
}
