//! E04–E06: the seminar's proposed robustness benchmarks.

use super::harness::{self, Harness};
use rqp::exec::ExecContext;
use rqp::expr::{col, lit, rewrites};
use rqp::metrics::{ReportTable, VariabilityReport};
use rqp::opt::{plan, PlannerConfig};
use rqp::stats::{CardEstimator, OracleEstimator, StatsEstimator, TableStatsRegistry};
use rqp::workload::{tpch::TpchParams, TpchDb, TractorPull};
use rqp::workload::tractor::TractorConfig;
use rqp::QuerySpec;
use std::rc::Rc;

/// E04 — the tractor-pull benchmark: escalate load until the stall.
pub fn e04_tractor_pull(fast: bool) -> String {
    harness::run("e04_tractor_pull", fast, e04_body)
}

fn e04_body(h: &mut Harness) -> String {
    let fast = h.fast();
    let cfg = if fast {
        TractorConfig {
            max_rounds: 4,
            base_rows: 500,
            growth: 2.0,
            queries_per_round: 3,
            stall_budget: 5_000.0,
            seed: 41,
        }
    } else {
        TractorConfig {
            max_rounds: 8,
            base_rows: 1_000,
            growth: 2.0,
            queries_per_round: 5,
            stall_budget: 20_000.0,
            seed: 41,
        }
    };
    h.note_seed("tractor", cfg.seed);
    let rounds = TractorPull::run(cfg).expect("tractor pull");
    h.config("rounds", rounds.len());
    h.gauge("tractor.distance", TractorPull::distance(&rounds) as f64);
    // Per-round spread between the worst and the mean query — the
    // response-time-variance signal the benchmark is built around.
    h.perf_gaps(&rounds.iter().map(|r| r.max_cost - r.mean_cost).collect::<Vec<_>>());
    h.env_costs(&rounds.iter().map(|r| (r.max_cost, r.mean_cost)).collect::<Vec<_>>());
    let mut t = ReportTable::new(&[
        "round", "fact rows", "joins", "mean cost", "CV", "max cost", "status",
    ]);
    for r in &rounds {
        t.row(&[
            format!("{}", r.round),
            format!("{}", r.fact_rows),
            format!("{}", r.joins),
            format!("{:.0}", r.mean_cost),
            format!("{:.3}", r.cv),
            format!("{:.0}", r.max_cost),
            if r.stalled { "STALL".into() } else { "pull".into() },
        ]);
    }
    format!(
        "E04 — tractor pull: increasingly complex workload until the stall\n\n{t}\n\
         distance (rounds completed): {}\n\
         Expected shape: mean cost grows with the sled; response-time \
         variance (CV) is the robustness signal.\n",
        TractorPull::distance(&rounds)
    )
}

/// E05 — end-to-end robustness: intrinsic vs extrinsic variability.
///
/// Environments: shrinking memory budgets. The *rigid* system carries its
/// big-memory plan everywhere; the *adaptive* system re-plans per
/// environment (the ideal-plan approximation the break-out proposes).
pub fn e05_extrinsic(fast: bool) -> String {
    harness::run("e05_extrinsic", fast, e05_body)
}

fn e05_body(h: &mut Harness) -> String {
    let li = if h.fast() { 3000 } else { 10_000 };
    let db = TpchDb::build(
        TpchParams { lineitem_rows: li, ..Default::default() },
        h.note_seed("db", 5),
    );
    let oracle = OracleEstimator::new(Rc::new(db.catalog.clone()));
    let spec = db.q3(1, 1200);
    let environments: [f64; 4] = [f64::INFINITY, 5_000.0, 500.0, 120.0];

    // Rigid: plan once for infinite memory.
    let rigid = plan(
        &spec,
        &db.catalog,
        &oracle,
        PlannerConfig { memory_rows: f64::INFINITY, ..Default::default() },
    )
    .expect("rigid plan");

    let mut rigid_pairs = Vec::new();
    let mut adaptive_pairs = Vec::new();
    let mut t = ReportTable::new(&["memory", "ideal cost", "rigid cost", "divergence"]);
    for &mem in &environments {
        let cfg = PlannerConfig { memory_rows: mem, ..Default::default() };
        let ideal_plan = plan(&spec, &db.catalog, &oracle, cfg).expect("ideal plan");
        let ctx = ExecContext::with_memory(mem);
        ideal_plan.build(&db.catalog, &ctx, None).expect("build").run();
        let ideal_cost = ctx.clock.now();
        let ctx = ExecContext::with_memory(mem);
        rigid.build(&db.catalog, &ctx, None).expect("build").run();
        let rigid_cost = ctx.clock.now();
        rigid_pairs.push((rigid_cost, ideal_cost));
        adaptive_pairs.push((ideal_cost, ideal_cost));
        t.row(&[
            if mem.is_infinite() { "∞".into() } else { format!("{mem:.0}") },
            format!("{ideal_cost:.0}"),
            format!("{rigid_cost:.0}"),
            format!("{:.2}x", rigid_cost / ideal_cost),
        ]);
    }
    h.config("environments", environments.len());
    // The rigid system's (chosen, ideal) pairs are the experiment's
    // extrinsic-variability evidence; the ideal totals bound Metric3.
    h.env_costs(&rigid_pairs);
    h.m3(
        rigid_pairs.iter().map(|(c, _)| c).sum(),
        rigid_pairs.iter().map(|(_, i)| i).sum(),
    );
    let rigid_report = VariabilityReport::from_costs(&rigid_pairs);
    let adaptive_report = VariabilityReport::from_costs(&adaptive_pairs);
    format!(
        "E05 — intrinsic vs extrinsic variability across memory environments\n\n{t}\n\
         intrinsic variability (CV of ideal costs, paid by everyone): {:.3}\n\
         extrinsic variability — rigid system:    {:.3} (worst divergence {:.2}x)\n\
         extrinsic variability — adaptive system: {:.3}\n\
         Expected shape: robustness = low extrinsic; intrinsic is not the \
         system's fault.\n",
        rigid_report.intrinsic(),
        rigid_report.extrinsic(),
        rigid_report.worst_divergence(),
        adaptive_report.extrinsic(),
    )
}

/// E06 — equivalent-query consistency: semantically equal formulations must
/// cost (and estimate) the same.
pub fn e06_equivalence(fast: bool) -> String {
    harness::run("e06_equivalence", fast, e06_body)
}

fn e06_body(h: &mut Harness) -> String {
    let li = if h.fast() { 3000 } else { 10_000 };
    let mut db = TpchDb::build(
        TpchParams { lineitem_rows: li, ..Default::default() },
        h.note_seed("db", 6),
    );
    // The session's multi-column case: an index on (returnflag, quantity)
    // should serve "returnflag = 1 AND quantity BETWEEN 7 AND 11" in every
    // phrasing.
    db.catalog
        .create_multi_index("ix_rf_qty", "lineitem", &["returnflag", "quantity"])
        .expect("composite index");
    let reg = Rc::new(TableStatsRegistry::analyze_catalog(&db.catalog, 32));
    let est = StatsEstimator::new(Rc::clone(&reg));
    let mut rng = h.seeded("in-list", 66);
    use rand::Rng;

    let families: Vec<(&str, rqp::Expr)> = vec![
        (
            "range+negation",
            col("lineitem.shipdate")
                .between(200i64, 800i64)
                .and(col("lineitem.returnflag").ne(lit(1i64)).not()),
        ),
        (
            "in-list",
            col("lineitem.quantity").in_list(
                (0..8).map(|_| rqp::Value::Int(rng.gen_range(1..50))).collect(),
            ),
        ),
        (
            "conjunction",
            col("lineitem.quantity")
                .lt(lit(30i64))
                .and(col("lineitem.discount").le(lit(0.05)))
                .and(col("lineitem.shipdate").ge(lit(400i64))),
        ),
        (
            "multi-column index",
            col("lineitem.returnflag")
                .eq(lit(1i64))
                .and(col("lineitem.quantity").between(7i64, 11i64)),
        ),
    ];

    let mut t = ReportTable::new(&[
        "family", "variants", "distinct results", "plans", "est spread", "cost spread",
    ]);
    let mut worst_cost_spread = 1.0f64;
    let mut env_pairs = Vec::new();
    let mut spread_gaps = Vec::new();
    for (name, base) in &families {
        let variants = rewrites::variants(base);
        let mut results = std::collections::BTreeSet::new();
        let mut plans = std::collections::BTreeSet::new();
        let mut ests = Vec::new();
        let mut costs = Vec::new();
        for v in &variants {
            let spec = QuerySpec::new().table("lineitem").filter("lineitem", v.clone());
            ests.push(est.filtered_rows("lineitem", v));
            let p = plan(&spec, &db.catalog, &est, PlannerConfig::default()).expect("plan");
            plans.insert(p.fingerprint());
            let ctx = ExecContext::unbounded();
            let rows = p.build(&db.catalog, &ctx, None).expect("build").run();
            results.insert(rows.len());
            costs.push(ctx.clock.now());
        }
        let spread = |v: &[f64]| -> f64 {
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min).max(1e-9);
            let hi = v.iter().cloned().fold(0.0, f64::max);
            hi / lo
        };
        let cost_spread = spread(&costs);
        worst_cost_spread = worst_cost_spread.max(cost_spread);
        // Each phrasing is an "environment" whose ideal is the family's
        // cheapest variant; a robust system keeps every pair identical.
        let cheapest = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        env_pairs.extend(costs.iter().map(|c| (*c, cheapest)));
        spread_gaps.push(cost_spread - 1.0);
        t.row(&[
            (*name).into(),
            format!("{}", variants.len()),
            format!("{}", results.len()),
            format!("{}", plans.len()),
            format!("{:.2}x", spread(&ests)),
            format!("{cost_spread:.2}x"),
        ]);
    }
    h.config("families", families.len());
    h.perf_gaps(&spread_gaps);
    h.env_costs(&env_pairs);
    format!(
        "E06 — equivalent-query robustness (Graefe et al. break-out)\n\n{t}\n\
         Ideal: every family has 1 distinct result (required) and spreads of \
         1.00x (estimates and execution resources identical no matter how \
         the query is phrased). worst cost spread observed: {worst_cost_spread:.2}x\n",
    )
}
