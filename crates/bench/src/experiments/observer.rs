//! A08: live observation of the wire service — overhead and event loss.

use super::harness::{self, Harness};
use rqp::metrics::ReportTable;
use rqp::server::{QueryService, ServiceConfig, ServiceReport};
use rqp::telemetry::scoreboard::samples;
use rqp::telemetry::MetricValue;
use rqp::workload::{tpch::TpchParams, TpchDb};
use rqp_net::loadgen::menu;
use rqp_net::{WireClient, WireQueryOptions, WireServer};
use std::path::PathBuf;
use std::sync::Arc;

/// A08 — live observer: the same multi-process workload run bare and with
/// an observer tailing STATS/EVENTS; the introspection path must not move
/// the virtual-time tail at all (overhead ratio exactly 1), the observer
/// must see every flight-recorder event (zero loss at the provisioned ring
/// size), and when the ring *is* undersized the loss must be counted, not
/// silent.
pub fn a08_live_observer(fast: bool) -> String {
    harness::run("a08_live_observer", fast, a08_body)
}

/// Locate `rqp-loadgen` exactly as A07 does: env override, else a sibling.
fn loadgen_bin() -> PathBuf {
    if let Some(path) = std::env::var_os("RQP_LOADGEN_BIN") {
        return PathBuf::from(path);
    }
    let mut dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.pop();
    }
    dir.join("rqp-loadgen")
}

struct RunOutcome {
    report: ServiceReport,
    published: f64,
    observer_events: Option<u64>,
    observer_gaps: Option<u64>,
}

/// Read one gauge out of a STATS metrics snapshot.
fn gauge_of(metrics: &[(String, MetricValue)], name: &str) -> f64 {
    metrics
        .iter()
        .find_map(|(n, v)| match v {
            MetricValue::Gauge(x) if n == name => Some(*x),
            _ => None,
        })
        .unwrap_or(f64::NAN)
}

/// One loadgen run against a fresh service; identical parameters except for
/// `observe`. Returns the deterministic virtual-time schedule report plus
/// the observer counters parsed from the loadgen total line.
fn run_leg(
    svc: &Arc<QueryService>,
    seed: u64,
    clients: usize,
    queries: usize,
    observe: bool,
) -> RunOutcome {
    let server = WireServer::start(Arc::clone(svc), "127.0.0.1:0").expect("bind wire server");
    let addr = format!("127.0.0.1:{}", server.port());
    let bin = loadgen_bin();
    let mut cmd = std::process::Command::new(&bin);
    cmd.args(["--addr", &addr])
        .args(["--clients", &clients.to_string()])
        .args(["--queries", &queries.to_string()])
        .args(["--mode", "open"])
        .args(["--seed", &seed.to_string()]);
    if observe {
        cmd.arg("--observe");
    }
    let output = cmd.output().unwrap_or_else(|e| panic!("spawn {}: {e}", bin.display()));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "loadgen failed ({}):\n{stdout}\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let mut observer_events = None;
    let mut observer_gaps = None;
    for tok in stdout
        .lines()
        .find(|l| l.starts_with("RQPLOAD total"))
        .expect("loadgen total line")
        .split_whitespace()
    {
        if let Some(v) = tok.strip_prefix("observer_events=") {
            observer_events = v.parse().ok();
        } else if let Some(v) = tok.strip_prefix("observer_gaps=") {
            observer_gaps = v.parse().ok();
        }
    }

    // The recorder-published total, via the same STATS frame rqp-top polls.
    let mut probe = WireClient::connect(&addr, 0).expect("connect stats probe");
    let snap = probe.stats().expect("STATS");
    let published = gauge_of(&snap.metrics, "server.recorder.published");
    probe.goodbye().expect("goodbye probe");
    drop(server);

    RunOutcome { report: svc.schedule_report(), published, observer_events, observer_gaps }
}

fn a08_body(h: &mut Harness) -> String {
    let fast = h.fast();
    let seed: u64 = std::env::var("RQP_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    h.note_seed("chaos", seed);

    let li = if fast { 4_000 } else { 12_000 };
    let db = TpchDb::build(
        TpchParams { lineitem_rows: li, ..Default::default() },
        h.note_seed("db", 108),
    );
    let clients = if fast { 4 } else { 6 };
    let queries = if fast { 3 } else { 4 };
    let config = ServiceConfig {
        mpl: 4,
        memory_rows: if fast { 20_000.0 } else { 60_000.0 },
        drift_threshold: 1e9,
        ..Default::default()
    };
    h.config("lineitem_rows", li);
    h.config("clients", clients);
    h.config("queries_per_client", queries);
    h.config("recorder_capacity", config.recorder_capacity);

    // --- Overhead leg: the identical workload against two fresh services,
    // bare and observed. Introspection frames bypass admission and charge
    // no cost units, so the completion logs — and therefore the replayed
    // virtual-time tails — must be bit-identical. ---
    let bare_svc = Arc::new(QueryService::new(&db.catalog, config.clone()));
    let bare = run_leg(&bare_svc, seed, clients, queries, false);
    let observed_svc = Arc::new(QueryService::new(&db.catalog, config.clone()));
    let observed = run_leg(&observed_svc, seed, clients, queries, true);

    assert_eq!(bare.report.completed, clients * queries, "bare queries went missing");
    assert_eq!(observed.report.completed, clients * queries, "observed queries went missing");
    assert!(bare.report.latency_p99 > 0.0, "bare run produced no tail");
    let overhead = observed.report.latency_p99 / bare.report.latency_p99;
    assert!(
        (overhead - 1.0).abs() < 1e-9,
        "observer moved the virtual-time tail: {} vs {}",
        observed.report.latency_p99,
        bare.report.latency_p99
    );

    // The observer must have seen every event the recorder published: the
    // ring is provisioned well past this workload's event volume, so the
    // loadgen-reported gap is zero and its event count matches the
    // recorder's own published total.
    let events = observed.observer_events.expect("observer_events on total line");
    let loss = observed.observer_gaps.expect("observer_gaps on total line");
    assert!(events > 0, "observer saw no events");
    assert_eq!(events as f64, observed.published, "observer missed published events");
    assert_eq!(loss, 0, "provisioned ring overwrote events under the observer");

    // INSPECT acceptance: a finished query remains inspectable by id — the
    // service keeps its span tree in the merged forest.
    let observed_server =
        WireServer::start(Arc::clone(&observed_svc), "127.0.0.1:0").expect("rebind wire server");
    let addr = format!("127.0.0.1:{}", observed_server.port());
    let mut obs = WireClient::connect(&addr, 0).expect("connect inspector");
    let q = obs
        .submit(&menu()[0], WireQueryOptions::default())
        .expect("submit inspect target");
    obs.fetch(q).expect("wire transport").expect("inspect target result");
    let outcome = obs.inspect(q).expect("INSPECT");
    assert!(outcome.found, "finished query q{q} not found by INSPECT");
    assert!(!outcome.rendered.is_empty(), "finished query q{q} rendered no tree");
    obs.goodbye().expect("goodbye inspector");
    drop(observed_server);

    // --- Loss-accounting leg: an undersized ring against the same menu.
    // Overwrite is allowed; *silent* overwrite is not — a single drain at
    // the end must report retained + gap == published exactly. ---
    let tiny_cap = 64usize;
    let tiny_svc = Arc::new(QueryService::new(
        &db.catalog,
        ServiceConfig { recorder_capacity: tiny_cap, ..config },
    ));
    let tiny_server =
        WireServer::start(Arc::clone(&tiny_svc), "127.0.0.1:0").expect("bind tiny server");
    let addr = format!("127.0.0.1:{}", tiny_server.port());
    let mut worker = WireClient::connect(&addr, 0).expect("connect tiny worker");
    for spec in menu().iter().cycle().take(if fast { 12 } else { 24 }) {
        worker
            .run(spec, WireQueryOptions::default())
            .expect("wire transport")
            .expect("tiny-ring query");
    }
    let snap = worker.stats().expect("tiny STATS");
    let tiny_published = gauge_of(&snap.metrics, "server.recorder.published");
    let mut cursor = 0u64;
    let mut retained = 0u64;
    let mut gap = 0u64;
    loop {
        let tail = worker.events(cursor, 4096).expect("tiny EVENTS");
        cursor = tail.next_cursor;
        retained += tail.events.len() as u64;
        gap += tail.gap;
        if tail.events.is_empty() {
            break;
        }
    }
    assert!(
        gap > 0,
        "{tiny_published} events did not overflow the {tiny_cap}-slot ring"
    );
    assert_eq!(
        (retained + gap) as f64,
        tiny_published,
        "ring overwrite went uncounted"
    );
    worker.goodbye().expect("goodbye tiny worker");
    drop(tiny_server);

    let mut table = ReportTable::new(&["leg", "completed", "p99", "amp", "published", "seen", "lost"]);
    table.row(&[
        "bare".into(),
        format!("{}", bare.report.completed),
        format!("{:.1}", bare.report.latency_p99),
        format!("{:.2}x", bare.report.tail_amplification),
        format!("{:.0}", bare.published),
        "-".into(),
        "-".into(),
    ]);
    table.row(&[
        "observed".into(),
        format!("{}", observed.report.completed),
        format!("{:.1}", observed.report.latency_p99),
        format!("{:.2}x", observed.report.tail_amplification),
        format!("{:.0}", observed.published),
        format!("{events}"),
        format!("{loss}"),
    ]);
    table.row(&[
        format!("ring={tiny_cap}"),
        format!("{}", if fast { 12 } else { 24 }),
        "-".into(),
        "-".into(),
        format!("{tiny_published:.0}"),
        format!("{retained}"),
        format!("{gap}"),
    ]);

    h.gauge(samples::OBSERVER_OVERHEAD_P99, overhead);
    h.gauge(samples::OBSERVER_EVENT_LOSS, loss as f64);

    format!(
        "A08 — live observer ({li} lineitem rows; {clients} client processes × \
         {queries} queries over TCP, bare vs observed; seed {seed})\n\n\
         overhead: virtual-time p99 ratio observed/bare = {overhead:.6} — \
         introspection frames bypass admission and charge no cost units, so \
         the replayed schedule is bit-identical.\n\
         loss: the {}-slot ring published {:.0} events and the observer saw \
         all of them; the deliberately undersized {tiny_cap}-slot ring \
         overwrote {gap} of {tiny_published:.0}, every one counted in the \
         reported gap.\n\n{table}\n\
         Expected shape: the overhead ratio is exactly 1 and the provisioned \
         ring loses nothing; shrinking the ring trades retention for memory \
         but never miscounts — retained + lost always equals published.\n",
        config.recorder_capacity, observed.published,
    )
}
