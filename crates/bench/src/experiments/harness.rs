//! The shared experiment harness: every `e*`/`a*` experiment runs through
//! [`run`], so every run leaves a schema-versioned JSON [`RunReport`] in
//! `exp_output/` next to its `.txt` artifact — config, RNG seed streams,
//! operator spans with adaptive-decision events, and metrics.
//!
//! The harness owns the run's [`ExecContext`]. Experiments execute their
//! queries under it (or under scratch contexts whose summary numbers they
//! publish back via gauges/histograms), draw every RNG stream through
//! [`Harness::seeded`] so the seed lands in the report, and publish the raw
//! samples behind the paper metrics ([`Harness::perf_gaps`],
//! [`Harness::env_costs`], [`Harness::m3`]) that the telemetry scoreboard
//! folds into `exp_output/scoreboard.json`.

use rand::rngs::StdRng;
use rqp::exec::ExecContext;
use rqp::telemetry::scoreboard::samples;
use std::path::{Path, PathBuf};

/// Where run reports and `.txt` artifacts land: `$RQP_EXP_OUTPUT` when set
/// (CI writes fresh runs to a scratch directory), otherwise the repository's
/// committed `exp_output/` — anchored at the workspace root so the answer
/// does not depend on the invoking directory.
pub fn output_dir() -> PathBuf {
    match std::env::var_os("RQP_EXP_OUTPUT") {
        Some(dir) => PathBuf::from(dir),
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../exp_output"),
    }
}

/// Per-run state the harness threads through an experiment body.
pub struct Harness {
    ctx: ExecContext,
    fast: bool,
    config: Vec<(String, String)>,
    seeds: Vec<(String, u64)>,
}

impl Harness {
    /// The run's execution context: execute representative queries under it
    /// so their spans (and adaptive-decision events) land in the report.
    pub fn ctx(&self) -> &ExecContext {
        &self.ctx
    }

    /// Whether this is a reduced-size (`--fast`) run.
    pub fn fast(&self) -> bool {
        self.fast
    }

    /// Record a configuration label for the report.
    pub fn config(&mut self, key: &str, value: impl std::fmt::Display) {
        self.config.push((key.to_string(), value.to_string()));
    }

    /// Record a named RNG stream's seed without constructing a generator
    /// (for seeds handed to builders like `TpchDb::build`). Returns the seed
    /// so call sites stay one expression.
    pub fn note_seed(&mut self, stream: &str, seed: u64) -> u64 {
        self.seeds.push((stream.to_string(), seed));
        seed
    }

    /// A deterministic RNG for the named stream, with the seed recorded in
    /// the report — the only way experiments should obtain randomness.
    pub fn seeded(&mut self, stream: &str, seed: u64) -> StdRng {
        rqp::common::rng::seeded(self.note_seed(stream, seed))
    }

    /// Publish a named gauge on the run's metrics registry.
    pub fn gauge(&self, name: &str, value: f64) {
        self.ctx.metrics.gauge(name).set(value);
    }

    /// Publish a parameterized sweep's per-query performance gaps `P(qᵢ)`;
    /// the scoreboard computes smoothness `S(Q)` from them.
    pub fn perf_gaps(&self, gaps: &[f64]) {
        for (i, gap) in gaps.iter().enumerate() {
            self.gauge(&format!("{}{i:03}", samples::PERF_GAP_PREFIX), *gap);
        }
    }

    /// Publish per-environment `(chosen_cost, ideal_cost)` pairs; the
    /// scoreboard computes intrinsic/extrinsic variability from them.
    pub fn env_costs(&self, pairs: &[(f64, f64)]) {
        for (i, (chosen, ideal)) in pairs.iter().enumerate() {
            self.gauge(&format!("{}{i:03}{}", samples::ENV_PREFIX, samples::ENV_CHOSEN), *chosen);
            self.gauge(&format!("{}{i:03}{}", samples::ENV_PREFIX, samples::ENV_IDEAL), *ideal);
        }
    }

    /// Publish the Metric3 runtime pair (`RunTimeOpt`, `RunTimeBest`).
    pub fn m3(&self, runtime_opt: f64, runtime_best: f64) {
        self.gauge(samples::M3_OPT, runtime_opt);
        self.gauge(samples::M3_BEST, runtime_best);
    }
}

/// Run one experiment through the harness: execute `body`, assemble the
/// context's run report (config, seeds, spans, events, metrics), write it to
/// [`output_dir`]`/<name>.json`, and append a footer line naming the report
/// to the experiment's printed output.
pub fn run(
    name: &str,
    fast: bool,
    body: impl FnOnce(&mut Harness) -> String,
) -> String {
    let mut h = Harness {
        ctx: ExecContext::unbounded(),
        fast,
        config: Vec::new(),
        seeds: Vec::new(),
    };
    let text = body(&mut h);
    let mut report = h
        .ctx
        .run_report(name)
        .with_config("fast", if fast { "true" } else { "false" });
    for (k, v) in &h.config {
        report = report.with_config(k, v);
    }
    for (stream, seed) in &h.seeds {
        report = report.with_seed(stream, *seed);
    }
    // The footer names the report portably: committed `.txt` artifacts must
    // not embed the absolute checkout path.
    let footer = match report.write_to(&output_dir()) {
        Ok(path) => match std::env::var_os("RQP_EXP_OUTPUT") {
            Some(_) => format!("run report: {}", path.display()),
            None => format!(
                "run report: exp_output/{}",
                path.file_name().unwrap_or_default().to_string_lossy()
            ),
        },
        Err(e) => format!("run report: write failed ({e})"),
    };
    let sep = if text.ends_with('\n') { "" } else { "\n" };
    format!("{text}{sep}{footer}\n")
}

/// Shared main for the experiment binaries: parse `--fast`, run the
/// experiment, print its report, and write it as `<name>.txt` next to the
/// JSON run report.
pub fn cli_main(name: &str, experiment: fn(bool) -> String) {
    let fast = std::env::args().any(|a| a == "--fast");
    let out = experiment(fast);
    println!("{out}");
    let path = output_dir().join(format!("{name}.txt"));
    if let Err(e) = std::fs::create_dir_all(output_dir())
        .and_then(|()| std::fs::write(&path, &out))
    {
        eprintln!("artifact write failed for {}: {e}", path.display());
        std::process::exit(1);
    }
}

#[cfg(test)]
pub(crate) mod test_env {
    //! Test-only redirection of `RQP_EXP_OUTPUT`. The variable is
    //! process-global and the test harness is multi-threaded, so redirecting
    //! tests serialize on one lock held for the guard's lifetime.

    use std::path::Path;
    use std::sync::{Mutex, MutexGuard};

    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Holds the redirection; dropping it restores the default output dir.
    pub struct Redirect(#[allow(dead_code)] MutexGuard<'static, ()>);

    /// Point [`super::output_dir`] at `dir` until the guard drops.
    pub fn redirect(dir: &Path) -> Redirect {
        let guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var("RQP_EXP_OUTPUT", dir);
        Redirect(guard)
    }

    impl Drop for Redirect {
        fn drop(&mut self) {
            std::env::remove_var("RQP_EXP_OUTPUT");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp::telemetry::RunReport;

    #[test]
    fn run_writes_a_report_with_seeds_and_config() {
        let dir = std::env::temp_dir().join("rqp_harness_run_test");
        let _ = std::fs::remove_dir_all(&dir);
        let guard = test_env::redirect(&dir);
        let out = run("e00_harness_probe", true, |h| {
            let _rng = h.seeded("workload", 77);
            h.note_seed("db", 1001);
            h.config("queries", 12);
            h.gauge("probe.value", 3.0);
            h.ctx().tracer.open("probe", &h.ctx().clock);
            "probe output".to_string()
        });
        drop(guard);
        assert!(out.contains("probe output"));
        assert!(out.contains("run report:"), "{out}");
        let text = std::fs::read_to_string(dir.join("e00_harness_probe.json")).unwrap();
        let report = RunReport::from_json(&text).expect("parse");
        assert_eq!(report.experiment, "e00_harness_probe");
        assert_eq!(
            report.rng,
            vec![("workload".to_string(), 77), ("db".to_string(), 1001)]
        );
        assert!(report.config.contains(&("fast".to_string(), "true".to_string())));
        assert!(report.config.contains(&("queries".to_string(), "12".to_string())));
        assert_eq!(report.spans.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn paper_sample_helpers_use_reserved_names() {
        let dir = std::env::temp_dir().join("rqp_harness_samples_test");
        let _ = std::fs::remove_dir_all(&dir);
        let guard = test_env::redirect(&dir);
        run("e00_sample_probe", true, |h| {
            h.perf_gaps(&[1.0, 2.0, 30.0]);
            h.env_costs(&[(12.0, 10.0), (80.0, 20.0)]);
            h.m3(100.0, 80.0);
            String::new()
        });
        drop(guard);
        let board =
            rqp::telemetry::Scoreboard::from_dir(&dir).expect("fold");
        let e = &board.entries["e00_sample_probe"];
        assert!(e.smoothness > 0.0);
        assert!(e.intrinsic > 0.0);
        assert!(e.extrinsic > 0.0);
        assert!((e.m3 - 0.25).abs() < 1e-9);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
