//! E08, E19, E22: cardinality-estimation robustness.

use super::harness::{self, Harness};
use rqp::adaptive::run_with_feedback;
use rqp::exec::ExecContext;
use rqp::expr::col;
use rqp::metrics::{cardinality_error_geomean, metric1, metric3, ReportTable};
use rqp::opt::{plan, PlannerConfig};
use rqp::stats::{
    CardEstimator, FeedbackEstimator, FeedbackRepo, LyingEstimator, MaxEntSolver,
    OracleEstimator, SamplingEstimator, StatsEstimator, TableStatsRegistry,
};
use rqp::workload::star::StarParams;
use rqp::workload::{BlackHatDb, StarDb};
use rqp::QuerySpec;
use std::cell::RefCell;
use std::rc::Rc;

/// E08 — Metric1/Metric3 and C(Q) across estimation regimes on a correlated
/// star schema.
pub fn e08_card_metrics(fast: bool) -> String {
    harness::run("e08_card_metrics", fast, e08_body)
}

fn e08_body(h: &mut Harness) -> String {
    let fact_rows = if h.fast() { 3000 } else { 12_000 };
    let db = StarDb::build(
        StarParams { fact_rows, correlated_fks: true, fk_skew: 0.6, ..Default::default() },
        h.note_seed("db", 8),
    );
    let catalog = Rc::new(db.catalog.clone());
    let oracle = OracleEstimator::new(Rc::clone(&catalog));
    let reg = Rc::new(TableStatsRegistry::analyze_catalog(&db.catalog, 32));
    let stats = StatsEstimator::new(Rc::clone(&reg));
    let mut rng = h.seeded("sampling", 88);
    let sampler = SamplingEstimator::build(
        &db.catalog.table("fact").expect("fact"),
        (fact_rows / 10).max(100),
        &mut rng,
    );

    // Query set: star queries with per-dimension filters + a correlated
    // fact predicate (fk1 and fk2 are dependent).
    let preds: Vec<rqp::Expr> = (1..=4)
        .map(|k| {
            col("fact.fk1")
                .lt(lit_i(k * 20))
                .and(col("fact.fk2").lt(lit_i(k * 10)))
        })
        .collect();

    let mut t = ReportTable::new(&["estimator", "Metric1", "C(Q)", "max q-error"]);
    type EstimateFn<'a> = Box<dyn Fn(&rqp::Expr) -> f64 + 'a>;
    let regimes: Vec<(&str, EstimateFn<'_>)> = vec![
        (
            "independence+histogram",
            Box::new(|p: &rqp::Expr| stats.filtered_rows("fact", p)),
        ),
        (
            "sampling (10%)",
            Box::new(|p: &rqp::Expr| {
                sampler.selectivity(p).unwrap_or(0.0) * fact_rows as f64
            }),
        ),
        (
            "max-entropy (w/ pair stats)",
            Box::new(|p: &rqp::Expr| {
                // ME given single-column selectivities AND the observed pair
                // selectivity of the conjunct pair (the multivariate
                // statistic the paper assumes available).
                let conjuncts = p.conjuncts();
                let s1 = oracle.selectivity("fact", &conjuncts[0]);
                let s2 = oracle.selectivity("fact", &conjuncts[1]);
                let s12 = oracle.selectivity("fact", p);
                let mut solver = MaxEntSolver::new(2).expect("2 preds");
                solver.add_constraint(0b01, s1).expect("c1");
                solver.add_constraint(0b10, s2).expect("c2");
                solver.add_constraint(0b11, s12).expect("c12");
                solver.solve(2000, 1e-10).selectivity(0b11) * fact_rows as f64
            }),
        ),
        (
            "oracle",
            Box::new(|p: &rqp::Expr| oracle.filtered_rows("fact", p)),
        ),
    ];

    let mut metric1_by_regime = Vec::new();
    for (name, estimate) in &regimes {
        let pairs: Vec<(f64, f64)> = preds
            .iter()
            .map(|p| (estimate(p), oracle.filtered_rows("fact", p)))
            .collect();
        let m1 = metric1(&pairs);
        metric1_by_regime.push(m1);
        let cq = cardinality_error_geomean(&pairs);
        let maxq = pairs
            .iter()
            .map(|&(e, a)| rqp::stats::q_error(e, a))
            .fold(1.0, f64::max);
        t.row(&[
            (*name).into(),
            format!("{m1:.2}"),
            format!("{cq:.3}"),
            format!("{maxq:.1}"),
        ]);
    }

    // Metric3: impose each enumerated plan for one star query, compare the
    // chosen plan's runtime to the best imposed runtime. The chosen plan runs
    // on the harness context so its per-operator (estimate, actual) spans
    // feed the scoreboard's M1/q-error columns.
    let spec = db.star_query(4, 4, 10);
    let chosen = plan(&spec, &db.catalog, &stats, PlannerConfig::default()).expect("plan");
    let run = |p: &rqp::PhysicalPlan, ctx: &ExecContext| -> f64 {
        let start = ctx.clock.now();
        p.build(&db.catalog, ctx, None).expect("build").run();
        ctx.clock.now() - start
    };
    let runtime_best = run(&chosen, h.ctx());
    let oracle_plan = plan(&spec, &db.catalog, &oracle, PlannerConfig::default()).expect("plan");
    let runtime_opt = run(&oracle_plan, &ExecContext::unbounded()).min(runtime_best);
    let m3 = metric3(runtime_opt, runtime_best);
    h.m3(runtime_opt, runtime_best);
    h.config("regimes", regimes.len());

    format!(
        "E08 — cardinality-error metrics on a correlated star schema\n\n{t}\n\
         Metric3 (|RunTimeOpt − RunTimeBest| / RunTimeBest) for the \
         histogram-planned star query: {m3:.3}\n\
         Expected shape: independence ≫ sampling ≈ max-entropy ≫ oracle on \
         correlated predicates (independence Metric1 here: {:.1} vs \
         max-entropy {:.2}).\n",
        metric1_by_regime[0], metric1_by_regime[2]
    )
}

fn lit_i(v: i64) -> rqp::Expr {
    rqp::expr::lit(v)
}

/// E19 — LEO feedback: q-error decay over repeated workload epochs.
pub fn e19_leo(fast: bool) -> String {
    harness::run("e19_leo", fast, e19_body)
}

fn e19_body(h: &mut Harness) -> String {
    let fast = h.fast();
    let fact_rows = if fast { 3000 } else { 10_000 };
    let db = StarDb::build(
        StarParams { fact_rows, correlated_fks: true, ..Default::default() },
        h.note_seed("db", 19),
    );
    let reg = Rc::new(TableStatsRegistry::analyze_catalog(&db.catalog, 32));
    let repo = Rc::new(RefCell::new(FeedbackRepo::new(0.8)));
    // Base estimator underestimates the fact table 40×.
    let lying = LyingEstimator::new(Box::new(StatsEstimator::new(Rc::clone(&reg))))
        .with_table_factor("fact", 1.0 / 40.0);
    let with_feedback = FeedbackEstimator::new(Box::new(lying), Rc::clone(&repo));
    let without = LyingEstimator::new(Box::new(StatsEstimator::new(Rc::clone(&reg))))
        .with_table_factor("fact", 1.0 / 40.0);

    // Queries with *fact-side* filters, the locus of the injected error.
    let workload: Vec<QuerySpec> = vec![
        QuerySpec::new()
            .join("fact", "fk1", "d1", "key")
            .filter("fact", col("fact.flag").lt(rqp::expr::lit(3i64))),
        QuerySpec::new()
            .join("fact", "fk2", "d2", "key")
            .filter("fact", col("fact.flag").le(rqp::expr::lit(6i64))),
    ];
    let epochs = if fast { 4 } else { 6 };
    let mut t = ReportTable::new(&["epoch", "max q-error (LEO)", "max q-error (no feedback)"]);
    let mut first_leo = 0.0;
    let mut last_leo = 0.0;
    for epoch in 0..epochs {
        let mut worst_leo = 1.0f64;
        let mut worst_plain = 1.0f64;
        for q in &workload {
            // LEO runs share the harness context: its leo.q_error histogram
            // and leo.correction events accumulate across the epochs.
            let r = run_with_feedback(
                q,
                &db.catalog,
                &with_feedback,
                &repo,
                PlannerConfig::default(),
                h.ctx(),
            )
            .expect("leo run");
            worst_leo = worst_leo.max(r.max_q_error());
            // Plain: same measurement, results discarded.
            let scratch = Rc::new(RefCell::new(FeedbackRepo::new(1.0)));
            let ctx = ExecContext::unbounded();
            let r = run_with_feedback(
                q,
                &db.catalog,
                &without,
                &scratch,
                PlannerConfig::default(),
                &ctx,
            )
            .expect("plain run");
            worst_plain = worst_plain.max(r.max_q_error());
        }
        if epoch == 0 {
            first_leo = worst_leo;
        }
        last_leo = worst_leo;
        t.row(&[
            format!("{epoch}"),
            format!("{worst_leo:.2}"),
            format!("{worst_plain:.2}"),
        ]);
    }
    h.config("epochs", epochs);
    h.gauge("leo.first_epoch_q", first_leo);
    h.gauge("leo.final_epoch_q", last_leo);
    format!(
        "E19 — LEO learning loop: repeated workload epochs\n\n{t}\n\
         learned signatures: {}\n\
         Expected shape: the LEO column decays toward 1 (epoch 0: {first_leo:.1} → \
         final: {last_leo:.1}); the no-feedback column stays flat.\n",
        repo.borrow().len()
    )
}

/// E22 — black-hat cardinality stress: estimation error per trap, in orders
/// of magnitude.
pub fn e22_blackhat(fast: bool) -> String {
    harness::run("e22_blackhat", fast, e22_body)
}

fn e22_body(h: &mut Harness) -> String {
    let rows = if h.fast() { 3000 } else { 20_000 };
    let bh = BlackHatDb::build(rows, h.note_seed("db", 22));
    let reg = Rc::new(TableStatsRegistry::analyze_catalog(&bh.catalog, 32));
    let est = StatsEstimator::new(Rc::clone(&reg));
    let mut t = ReportTable::new(&["trap", "estimate", "actual", "q-error", "magnitude (log10)"]);
    let mut worst_q = 1.0f64;
    for trap in bh.traps() {
        let truth = bh.true_cardinality(&trap) as f64;
        let guess = match (&trap.target_table, &trap.pred) {
            (Some(tbl), Some(p)) => est.filtered_rows(tbl, p),
            _ => {
                est.table_rows("person")
                    * est.table_rows("sales")
                    * est.join_selectivity("person", "zipf", "sales", "person_zipf")
            }
        };
        let q = rqp::stats::q_error(guess, truth);
        worst_q = worst_q.max(q);
        h.ctx().metrics.histogram("blackhat.q_error").observe(q);
        t.row(&[
            trap.name.into(),
            format!("{guess:.1}"),
            format!("{truth:.0}"),
            format!("{q:.1}"),
            format!("{:.1}", q.log10()),
        ]);
    }
    h.gauge("blackhat.worst_q_log10", worst_q.log10());
    format!(
        "E22 — black-hat query optimization: the estimation trap list\n\n{t}\n\
         Expected shape: redundant/correlated predicates underestimate by \
         orders of magnitude (the '7 orders of magnitude' war story, scaled \
         to table size); skewed joins blow past the containment estimate.\n",
    )
}

