//! A11: continuous queries — standing subscriptions under insert storms
//! and chaos.

use super::harness::{self, Harness};
use rqp::metrics::ReportTable;
use rqp::server::{QueryService, ServiceConfig, SubscribeOptions};
use rqp::stream::canonicalize;
use rqp::telemetry::scoreboard::samples;
use rqp::workload::{tpch::TpchParams, TpchDb};
use rqp::{QuerySpec, Row, Value};

/// A11 — continuous queries: subscription-count × insert-rate × chaos
/// sweep over the standing-subscription registry, gating per-delta
/// propagation latency and view consistency.
pub fn a11_continuous_queries(fast: bool) -> String {
    harness::run("a11_continuous_queries", fast, a11_body)
}

/// The standing-query menu: the loadgen menu shapes with ORDER BY/LIMIT
/// stripped (a maintained view is an unordered multiset; subscribers order
/// on their side). Covers a grouped aggregate, a 3-way join + aggregate,
/// and a global (no-group) aggregate over a multi-predicate filter.
fn sub_menu(db: &TpchDb) -> Vec<QuerySpec> {
    [db.q1(30), db.q3(1, 400), db.q6(100, 0.05, 30), db.q1(90)]
        .into_iter()
        .map(|mut s| {
            s.order_by.clear();
            s.limit = None;
            s
        })
        .collect()
}

/// A fresh lineitem row for batch `b`, slot `r`. Float values are dyadic
/// (exact in an f64), so retractable sums stay bit-exact under churn.
fn fresh_row(b: usize, r: usize) -> Row {
    let k = (b * 1_000 + r) as i64;
    vec![
        Value::Int(k % 200),                              // orderkey
        Value::Int(k % 20),                               // partkey
        Value::Int(k % 10),                               // suppkey
        Value::Int(1 + k % 50),                           // quantity
        Value::Float(1_000.0 + (k % 100) as f64 * 0.25),  // extendedprice
        Value::Float((k % 5) as f64 * 0.015_625),         // discount
        Value::Int(k % 2_400),                            // shipdate
        Value::Int(k % 3),                                // returnflag
    ]
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn a11_body(h: &mut Harness) -> String {
    let fast = h.fast();
    let li = if fast { 1_500 } else { 4_000 };
    let db = TpchDb::build(
        TpchParams { lineitem_rows: li, ..Default::default() },
        h.note_seed("db", 111),
    );
    let menu = sub_menu(&db);
    let sub_counts: &[usize] = if fast { &[4, 16, 64] } else { &[8, 64, 256] };
    let rates: &[usize] = &[16, 64];
    let batches = if fast { 4 } else { 8 };
    let chaos_seed = h.note_seed("chaos", 1111);
    h.config("lineitem_rows", li);
    h.config("menu_specs", menu.len());
    h.config("sub_counts", sub_counts.len());
    h.config("insert_rates", rates.len());
    h.config("batches_per_cell", batches);

    // Chaos is toggled per cell through the same environment knob the CI
    // chaos leg uses (`poll_subscription` reads it per poll); the caller's
    // setting is restored on the way out.
    let saved_chaos = std::env::var("RQP_CHAOS_SEED").ok();
    let set_chaos = |on: bool| {
        if on {
            std::env::set_var("RQP_CHAOS_SEED", chaos_seed.to_string());
        } else {
            std::env::remove_var("RQP_CHAOS_SEED");
        }
    };

    let mut t_out = ReportTable::new(&[
        "subs", "rows/batch", "chaos", "delta p50", "delta p99", "max lag", "delta rows",
        "diverged",
    ]);
    let mut worst_p99 = 0.0f64;
    let mut best_p99 = f64::INFINITY;
    let mut diverged_total = 0usize;
    let mut env_pairs = Vec::new();
    let mut gaps = Vec::new();
    for &n_subs in sub_counts {
        for &rate in rates {
            // Fault-free first: its p99 is the chaos cell's ideal.
            let mut cell_p99 = [f64::NAN; 2];
            for (ci, &chaos) in [false, true].iter().enumerate() {
                set_chaos(chaos);
                // A fresh service per cell: the snapshot is copy-on-write,
                // so appends never leak into the next cell's baseline.
                let svc = QueryService::new(
                    &db.catalog,
                    ServiceConfig { mpl: 4, drift_threshold: 1e9, ..ServiceConfig::default() },
                );
                let ids: Vec<(u64, usize)> = (0..n_subs)
                    .map(|i| {
                        let mi = i % menu.len();
                        let id = svc
                            .subscribe(&menu[mi], SubscribeOptions::default())
                            .expect("subscribe");
                        (id, mi)
                    })
                    .collect();

                // The insert storm: append a batch, then advance every
                // subscription and charge its poll to its own cost clock —
                // the per-delta latency sample is that clock's delta.
                let mut poll_costs = Vec::new();
                let mut max_lag = 0u64;
                let mut delta_rows = 0u64;
                for b in 0..batches {
                    let rows: Vec<Row> = (0..rate).map(|r| fresh_row(b, r)).collect();
                    svc.append_rows("lineitem", rows).expect("append");
                    for &(id, _) in &ids {
                        let sub = svc.subscriptions().get(id).expect("live subscription");
                        let before = sub.cost();
                        let (packet, lag) =
                            svc.poll_subscription(id, 0).expect("poll never drops deltas");
                        poll_costs.push(sub.cost() - before);
                        max_lag = max_lag.max(lag);
                        delta_rows += packet.delta_rows() as u64;
                    }
                }

                // View consistency: every maintained view must equal a cold
                // re-run of its spec on the post-storm snapshot. Chaos is
                // lifted for the re-runs (it inflates poll cost; it must
                // never change the maintained rows).
                set_chaos(false);
                let mut cold: Vec<Option<Vec<Row>>> = vec![None; menu.len()];
                let mut diverged = 0usize;
                for &(id, mi) in &ids {
                    let want = cold[mi].get_or_insert_with(|| {
                        canonicalize(svc.run_solo(&menu[mi]).expect("cold re-run").rows)
                    });
                    if svc.subscriptions().get(id).expect("live subscription").view() != *want {
                        diverged += 1;
                    }
                }
                diverged_total += diverged;

                // Teardown leaves nothing behind: no registry entries, no
                // broker grants.
                assert_eq!(svc.shutdown_subscriptions(), n_subs, "every sub torn down");
                assert_eq!(svc.subscriptions().count(), 0, "registry empty after shutdown");
                // Grant renegotiation is f64 arithmetic against fair-share
                // fractions; what must not remain is any material grant.
                assert!(svc.reserved().abs() < 1e-6, "subscription grants returned");

                poll_costs.sort_by(f64::total_cmp);
                let p50 = percentile(&poll_costs, 50.0);
                let p99 = percentile(&poll_costs, 99.0);
                cell_p99[ci] = p99;
                worst_p99 = worst_p99.max(p99);
                best_p99 = best_p99.min(p99);
                t_out.row(&[
                    format!("{n_subs}"),
                    format!("{rate}"),
                    if chaos { "on".into() } else { "off".into() },
                    format!("{p50:.1}"),
                    format!("{p99:.1}"),
                    format!("{max_lag}"),
                    format!("{delta_rows}"),
                    format!("{diverged}"),
                ]);
            }
            // The chaos cell's environment: same storm, injected faults;
            // the fault-free p99 is its ideal.
            env_pairs.push((cell_p99[1].max(cell_p99[0]), cell_p99[0]));
            gaps.push((cell_p99[1] - cell_p99[0]).max(0.0));
        }
    }
    match &saved_chaos {
        Some(v) => std::env::set_var("RQP_CHAOS_SEED", v),
        None => std::env::remove_var("RQP_CHAOS_SEED"),
    }

    assert_eq!(
        diverged_total, 0,
        "maintained views must be bit-identical to cold re-runs"
    );
    h.env_costs(&env_pairs);
    h.perf_gaps(&gaps);
    h.m3(worst_p99, best_p99);
    h.gauge(samples::STREAM_DELTA_P99, worst_p99);
    h.gauge(samples::STREAM_VIEW_DIVERGENCE, diverged_total as f64);
    format!(
        "A11 — continuous queries ({li} lineitem rows, {} standing specs, \
         {batches} append batches/cell)\n\n{t_out}\n\
         worst delta p99: {worst_p99:.1} cost units   diverged views: \
         {diverged_total} (contract: 0)\n\n\
         Expected shape: per-delta cost scales with the batch, not the \
         table — more subscribers multiply total propagation work but each \
         subscription's own delta stays flat; chaos inflates poll latency \
         with retry charges yet never drops a delta, so every maintained \
         view still matches its cold re-run bit-for-bit.\n",
        menu.len()
    )
}
