//! A07: the TCP wire service under multi-process client load.

use super::harness::{self, Harness};
use rqp::expr::col;
use rqp::metrics::ReportTable;
use rqp::server::{QueryService, ServiceConfig};
use rqp::telemetry::scoreboard::samples;
use rqp::workload::{tpch::TpchParams, Job, TpchDb, WorkloadManager};
use rqp::QuerySpec;
use rqp_net::loadgen::{menu, menu_index};
use rqp_net::{rows_checksum, WireClient, WireQueryOptions, WireServer};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A07 — wire service: real client *processes* against the TCP front door
/// (result-checksum identity, mid-query disconnect churn, credit-based
/// backpressure), plus a deterministic clients × arrival-rate × churn sweep
/// replayed in virtual time for the tail-latency gauges.
pub fn a07_wire_service(fast: bool) -> String {
    harness::run("a07_wire_service", fast, a07_body)
}

/// Locate the `rqp-loadgen` binary: `RQP_LOADGEN_BIN` when set (the gate
/// test passes Cargo's own path), otherwise a sibling of the running binary
/// (stepping out of `target/<profile>/deps/` when invoked from a test).
fn loadgen_bin() -> PathBuf {
    if let Some(path) = std::env::var_os("RQP_LOADGEN_BIN") {
        return PathBuf::from(path);
    }
    let mut dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.pop();
    }
    dir.join("rqp-loadgen")
}

/// Spin until `cond` holds or a generous deadline passes.
fn await_until(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

fn a07_body(h: &mut Harness) -> String {
    let fast = h.fast();
    // The workload seed is the chaos-seed convention: `RQP_CHAOS_SEED`
    // pins the whole run (menu draws in every worker process included).
    let seed: u64 = std::env::var("RQP_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    h.note_seed("chaos", seed);

    let li = if fast { 4_000 } else { 12_000 };
    let db = TpchDb::build(
        TpchParams { lineitem_rows: li, ..Default::default() },
        h.note_seed("db", 107),
    );
    let mpl = 4;
    let svc = Arc::new(QueryService::new(
        &db.catalog,
        ServiceConfig {
            mpl,
            memory_rows: if fast { 20_000.0 } else { 60_000.0 },
            drift_threshold: 1e9,
            ..Default::default()
        },
    ));

    // --- Solo baselines over the shared loadgen menu: the checksums the
    // worker processes must reproduce, and the demands the sweep replays. ---
    let menu_specs = menu();
    let solo: Vec<_> =
        menu_specs.iter().map(|q| svc.run_solo(q).expect("solo menu run")).collect();
    let checksums: Vec<u64> = solo.iter().map(|o| rows_checksum(&o.rows)).collect();
    let unit = solo.iter().map(|o| o.cost).sum::<f64>() / solo.len() as f64;
    let units: Vec<f64> = solo.iter().map(|o| o.cost / unit).collect();

    // --- Behavioral leg: N real client processes over TCP, one of them
    // killing itself mid-query. ---
    let clients = if fast { 4 } else { 6 };
    let queries = if fast { 3 } else { 4 };
    let churn = 1usize;
    h.config("lineitem_rows", li);
    h.config("clients", clients);
    h.config("queries_per_client", queries);
    h.config("churn_clients", churn);

    let server = WireServer::start(Arc::clone(&svc), "127.0.0.1:0").expect("bind wire server");
    let addr = format!("127.0.0.1:{}", server.port());
    let bin = loadgen_bin();
    let output = std::process::Command::new(&bin)
        .args(["--addr", &addr])
        .args(["--clients", &clients.to_string()])
        .args(["--queries", &queries.to_string()])
        .args(["--mode", "open"])
        .args(["--churn", &churn.to_string()])
        .args(["--seed", &seed.to_string()])
        .output()
        .unwrap_or_else(|e| panic!("spawn {}: {e}", bin.display()));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "loadgen failed ({}):\n{stdout}\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );

    // Every checksum a worker process reported must match the solo run of
    // the same menu entry — result identity across process boundaries.
    let mut verified = 0usize;
    let mut ok_total = 0usize;
    let mut disconnected_workers = 0usize;
    for line in stdout.lines().filter(|l| l.starts_with("RQPLOAD client=")) {
        for tok in line.split_whitespace() {
            if let Some(v) = tok.strip_prefix("ok=") {
                ok_total += v.parse::<usize>().unwrap_or(0);
            } else if tok == "disconnected=1" {
                disconnected_workers += 1;
            } else if let Some(pairs) = tok.strip_prefix("results=") {
                for pair in pairs.split(',').filter(|p| !p.is_empty()) {
                    let (idx, sum) = pair.split_once(':').expect("idx:checksum");
                    let idx: usize = idx.parse().expect("menu index");
                    let sum = u64::from_str_radix(sum, 16).expect("hex checksum");
                    assert_eq!(
                        sum, checksums[idx],
                        "worker checksum for menu entry {idx} diverged from solo"
                    );
                    verified += 1;
                }
            }
        }
    }
    assert_eq!(ok_total, clients * queries, "worker queries went missing");
    assert_eq!(verified, clients * queries, "unverified worker results");
    assert_eq!(disconnected_workers, churn, "churn worker summary missing");

    // The disconnects must be fully absorbed: every connection reaped, the
    // churn queries cancelled and recovered, no slot or grant leaked.
    await_until(|| server.stats().closed == clients as u64, "connection teardown");
    let stats = server.stats();
    assert_eq!(stats.disconnected_queries, churn as u64, "mid-query disconnects");
    assert_eq!(
        stats.recovered_queries, stats.disconnected_queries,
        "disconnected queries not reaped"
    );
    await_until(|| svc.queue_depth() == 0, "admission queue to drain");
    assert_eq!(svc.reserved(), 0.0, "wire churn leaked memory grants");
    assert!(svc.peak_concurrency() <= mpl, "MPL gate violated under wire load");
    let churn_recovery = stats.recovered_queries as f64 / stats.disconnected_queries as f64;

    // --- Backpressure leg: a stalled in-process consumer may hold at most
    // one encoded page and zero broker memory while a neighbour proceeds. ---
    let scan = QuerySpec::new()
        .table("lineitem")
        .filter("lineitem", col("lineitem.quantity").ge(rqp::expr::lit(0)))
        .project(&["lineitem.orderkey", "lineitem.quantity"]);
    let mut slow = WireClient::connect(&addr, 0).expect("connect slow consumer");
    let q = slow.submit(&scan, WireQueryOptions::default()).expect("submit scan");
    let first = slow.fetch_partial(q, 1).expect("first page");
    assert!(!first.is_empty(), "scan produced no first page");
    assert_eq!(svc.reserved(), 0.0, "stalled consumer held broker memory");
    let mut neighbour = WireClient::connect(&addr, 0).expect("connect neighbour");
    let out = neighbour
        .run(&menu_specs[0], WireQueryOptions::default())
        .expect("wire transport")
        .expect("neighbour behind stalled consumer");
    assert_eq!(rows_checksum(&out.rows), checksums[0]);
    neighbour.goodbye().expect("goodbye neighbour");
    let rest = slow.fetch_partial(q, u32::MAX).expect("drain");
    assert_eq!(first.len() + rest.len(), li, "row loss across the stall");
    slow.goodbye().expect("goodbye slow");
    let peak_pages = server.stats().peak_buffered_pages;
    assert!(peak_pages <= 1, "pager buffered {peak_pages} pages despite credits");
    drop(server);

    // --- The sweep: clients × arrival period × churn, replayed in virtual
    // time (real-process latencies race; the replay is exact). Churn is
    // modeled conservatively: the to-be-cancelled query charged at full
    // demand. ---
    let sweep_clients: &[usize] = if fast { &[2, 4] } else { &[2, 4, 8] };
    let periods = [1.0, 4.0];
    let churns = [0usize, 1];
    let sweep_q = if fast { 20 } else { 40 };
    h.config("sweep_clients", sweep_clients.len());
    h.config("sweep_periods", periods.len());
    h.config("sweep_queries_per_client", sweep_q);
    let mut table =
        ReportTable::new(&["clients", "period", "churn", "p50", "p99", "amp p99", "amp p999"]);
    let mut worst_p99 = 1.0f64;
    let mut worst_p999 = 1.0f64;
    let mut env_pairs = Vec::new();
    let mut gaps = Vec::new();
    for &c in sweep_clients {
        for &period in &periods {
            for &ch in &churns {
                let mut jobs: Vec<Job> = Vec::new();
                for id in 0..c {
                    for qi in 0..sweep_q {
                        jobs.push(Job {
                            id: id * 100_000 + qi,
                            arrival: (qi * c + id) as f64 * period,
                            demand: units[menu_index(seed, id, qi, units.len())],
                            priority: (id % 3) as u8,
                            weight: 1.0,
                        });
                    }
                }
                for id in 0..ch {
                    jobs.push(Job {
                        id: id * 100_000 + sweep_q,
                        arrival: (sweep_q * c + id) as f64 * period,
                        demand: units[menu_index(seed, id, sweep_q, units.len())],
                        priority: (id % 3) as u8,
                        weight: 1.0,
                    });
                }
                let sim = WorkloadManager::new(mpl, 1.0).simulate(&jobs);
                let mut resp: Vec<f64> = sim.jobs.iter().map(|j| j.response).collect();
                let mut solo_d: Vec<f64> = jobs.iter().map(|j| j.demand).collect();
                resp.sort_by(f64::total_cmp);
                solo_d.sort_by(f64::total_cmp);
                let p50 = percentile(&resp, 50.0);
                let p99 = percentile(&resp, 99.0);
                let p999 = percentile(&resp, 99.9);
                let amp99 = p99 / percentile(&solo_d, 99.0);
                let amp999 = p999 / percentile(&solo_d, 99.9);
                worst_p99 = worst_p99.max(amp99);
                worst_p999 = worst_p999.max(amp999);
                env_pairs.push((p99, percentile(&solo_d, 99.0)));
                gaps.push(p99 - percentile(&solo_d, 99.0));
                table.row(&[
                    format!("{c}"),
                    format!("{period}"),
                    format!("{ch}"),
                    format!("{p50:.1}"),
                    format!("{p99:.1}"),
                    format!("{amp99:.2}x"),
                    format!("{amp999:.2}x"),
                ]);
            }
        }
    }
    h.env_costs(&env_pairs);
    h.perf_gaps(&gaps);
    h.gauge(samples::WIRE_TAIL_P99, worst_p99);
    h.gauge(samples::WIRE_TAIL_P999, worst_p999);
    h.gauge(samples::WIRE_CHURN_RECOVERY, churn_recovery);
    h.gauge(samples::WIRE_BACKPRESSURE_PAGES, peak_pages.max(1) as f64);

    format!(
        "A07 — wire service ({li} lineitem rows; {clients} client processes × \
         {queries} queries over TCP, {churn} disconnecting mid-query; seed {seed})\n\n\
         behavioral leg: all {verified} worker-reported checksums bit-identical \
         to solo runs; {} mid-query disconnect(s) fully recovered (slot + \
         grants released); stalled consumer held {peak_pages} encoded page(s) \
         and zero broker memory.\n\n{table}\n\
         Expected shape: the tail amplification grows with client count and \
         arrival density; a single churn client barely moves it (its \
         cancelled query is bounded work); credit-based paging keeps the \
         backpressure gauge at 1 page regardless of consumer speed.\n",
        stats.disconnected_queries
    )
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}
