//! A06: the concurrent query service under a mixed OLTP/analytic workload.

use super::harness::{self, Harness};
use rqp::expr::col;
use rqp::metrics::ReportTable;
use rqp::server::{QueryOptions, QueryService, ServiceConfig};
use rqp::telemetry::scoreboard::samples;
use rqp::workload::{tpch::TpchParams, Job, TpchDb, WorkloadManager};
use rqp::QuerySpec;
use std::collections::HashMap;

/// A06 — concurrent service: MPL × arrival-rate sweep over a mixed
/// workload, plus the behavioral leg (result identity, MPL gate, deadline
/// abort, cancellation) on real threads.
pub fn a06_concurrent_service(fast: bool) -> String {
    harness::run("a06_concurrent_service", fast, a06_body)
}

fn a06_body(h: &mut Harness) -> String {
    let fast = h.fast();
    let li = if fast { 4_000 } else { 16_000 };
    let db = TpchDb::build(
        TpchParams { lineitem_rows: li, ..Default::default() },
        h.note_seed("db", 106),
    );
    // Mixed workload: an OLTP-ish stream of narrow range lookups plus an
    // analytic mix, all executed through one service.
    let oltp_specs: Vec<QuerySpec> = (0..4i64)
        .map(|i| {
            QuerySpec::new().table("lineitem").filter(
                "lineitem",
                col("lineitem.shipdate").between(i * 150, i * 150 + 2),
            )
        })
        .collect();
    let mut rng = h.seeded("analytic-mix", 106);
    let olap_specs = db.analytic_mix(if fast { 3 } else { 4 }, &mut rng);

    // Drift invalidation is off here (`tests/service.rs` covers it): every
    // submission must execute the *same* cached physical plan so results
    // are comparable bit-for-bit against the solo baseline.
    let config = ServiceConfig {
        mpl: 2,
        memory_rows: if fast { 20_000.0 } else { 60_000.0 },
        drift_threshold: 1e9,
        ..Default::default()
    };
    let mpl = config.mpl;
    let svc = QueryService::new(&db.catalog, config);
    h.config("lineitem_rows", li);
    h.config("oltp_specs", oltp_specs.len());
    h.config("olap_specs", olap_specs.len());

    // --- Solo baselines: deterministic demands; warms the plan cache. ---
    let oltp_solo: Vec<_> =
        oltp_specs.iter().map(|q| svc.run_solo(q).expect("solo oltp")).collect();
    let olap_solo: Vec<_> =
        olap_specs.iter().map(|q| svc.run_solo(q).expect("solo olap")).collect();
    // Work in units of the mean OLTP demand so the sweep's arrival periods
    // and capacity are scale-free.
    let unit = oltp_solo.iter().map(|o| o.cost).sum::<f64>() / oltp_solo.len() as f64;

    // --- Behavioral leg, on real threads: every concurrent query must
    // return exactly the solo rows, the gate must hold, and aborts must
    // release what they hold. ---
    let oltp_session = svc.session(0);
    let olap_session = svc.session(2);
    let mut handles = Vec::new();
    for round in 0..2u64 {
        for (i, q) in oltp_specs.iter().enumerate() {
            let opts = QueryOptions::default().at((round * 100) as f64 + i as f64);
            handles.push((false, i, oltp_session.submit(q.clone(), opts)));
        }
        for (k, q) in olap_specs.iter().enumerate() {
            let opts =
                QueryOptions::default().at((round * 100) as f64 + 50.0 + k as f64).weighted(4.0);
            handles.push((true, k, olap_session.submit(q.clone(), opts)));
        }
    }
    let submitted = handles.len();
    for (is_olap, idx, handle) in handles {
        let out = handle.join().expect("concurrent query");
        let solo = if is_olap { &olap_solo[idx] } else { &oltp_solo[idx] };
        assert_eq!(out.rows, solo.rows, "concurrent result differs from solo");
        assert!(out.plan_cached, "solo baseline warmed the plan cache");
    }
    assert!(svc.peak_concurrency() <= mpl, "MPL gate violated");
    assert_eq!(svc.reserved(), 0.0, "workspace reservations leaked");

    // Deadline abort: a quarter of the solo demand can never finish. Run
    // alone, so the abort point (and hence the cancellation latency) is a
    // deterministic position on the query's own cost clock.
    let doomed = olap_session
        .submit(olap_specs[0].clone(), QueryOptions::with_deadline(olap_solo[0].cost * 0.25));
    assert_eq!(
        doomed.join().unwrap_err(),
        rqp::common::RqpError::DeadlineExceeded,
        "past-deadline query must abort typed"
    );
    assert_eq!(svc.reserved(), 0.0, "aborted query released its reservation");
    let cancel_latency =
        svc.completions().iter().filter_map(|c| c.cancel_latency).fold(0.0, f64::max);

    // Cancelled while queued: pause the gate so the cancel deterministically
    // lands before admission.
    svc.pause_admission();
    let queued = olap_session.submit(olap_specs[0].clone(), QueryOptions::default());
    while svc.queue_depth() != 1 {
        std::thread::yield_now();
    }
    queued.cancel();
    assert!(queued.join().unwrap_err().is_cancellation());
    svc.resume_admission();

    // --- The sweep: MPL × arrival period over the mixed trace, replayed in
    // virtual time (real-thread latencies race; the replay is exact). ---
    let n_txn = if fast { 60 } else { 150 };
    let oltp_units: Vec<f64> = oltp_solo.iter().map(|o| o.cost / unit).collect();
    let olap_units: Vec<f64> = olap_solo.iter().map(|o| o.cost / unit).collect();
    let make_jobs = |period: f64| -> Vec<Job> {
        let mut jobs: Vec<Job> = (0..n_txn)
            .map(|i| Job {
                id: i,
                arrival: i as f64 * period,
                demand: oltp_units[i % oltp_units.len()],
                priority: 0,
                weight: 1.0,
            })
            .collect();
        for (k, &d) in olap_units.iter().enumerate() {
            jobs.push(Job {
                id: 10_000 + k,
                arrival: 5.0 + k as f64 * period * 20.0,
                demand: d,
                priority: 2,
                weight: 4.0,
            });
        }
        jobs
    };
    let mpls = [1usize, 2, 4, 8];
    let periods = [2.0, 6.0];
    h.config("sweep_mpls", mpls.len());
    h.config("sweep_periods", periods.len());
    h.config("oltp_jobs", n_txn);
    let mut table =
        ReportTable::new(&["mpl", "arrival period", "p50", "p99", "tail amp", "wait p99"]);
    let mut worst_amp = 1.0f64;
    let mut worst_wait = 0.0f64;
    let mut env_pairs = Vec::new();
    let mut gaps = Vec::new();
    for &m in &mpls {
        for &period in &periods {
            let jobs = make_jobs(period);
            let sim = WorkloadManager::new(m, 1.0).simulate(&jobs);
            let arrivals: HashMap<usize, f64> = jobs.iter().map(|j| (j.id, j.arrival)).collect();
            let mut resp: Vec<f64> = sim.jobs.iter().map(|j| j.response).collect();
            let mut waits: Vec<f64> =
                sim.jobs.iter().map(|j| (j.start - arrivals[&j.id]).max(0.0)).collect();
            let mut solo: Vec<f64> = jobs.iter().map(|j| j.demand).collect();
            resp.sort_by(f64::total_cmp);
            waits.sort_by(f64::total_cmp);
            solo.sort_by(f64::total_cmp);
            let p50 = percentile(&resp, 50.0);
            let p99 = percentile(&resp, 99.0);
            let solo_p99 = percentile(&solo, 99.0);
            let amp = p99 / solo_p99;
            let w99 = percentile(&waits, 99.0);
            worst_amp = worst_amp.max(amp);
            worst_wait = worst_wait.max(w99);
            env_pairs.push((p99, solo_p99));
            gaps.push(p99 - solo_p99);
            table.row(&[
                format!("{m}"),
                format!("{period}"),
                format!("{p50:.1}"),
                format!("{p99:.1}"),
                format!("{amp:.2}x"),
                format!("{w99:.1}"),
            ]);
        }
    }
    h.env_costs(&env_pairs);
    h.perf_gaps(&gaps);
    h.gauge(samples::TAIL_AMPLIFICATION, worst_amp);
    h.gauge(samples::ADMISSION_WAIT, worst_wait);

    format!(
        "A06 — concurrent service ({li} lineitem rows, {submitted} concurrent \
         queries, {n_txn} OLTP + {} OLAP jobs per sweep cell; demands in \
         mean-OLTP units, unit = {unit:.1} cost)\n\n\
         behavioral leg: all concurrent results bit-identical to solo; \
         MPL gate held; deadline abort released every reservation \
         (cancellation latency {cancel_latency:.1} cost units past the \
         deadline); queued cancellation left the gate clean.\n\n{table}\n\
         Expected shape: MPL 1 serializes (long admission waits, tail \
         blows up under dense arrivals); past the saturation MPL the tail \
         stops improving — the good operating point is the knee, which is \
         what the admission gate pins the service to.\n",
        olap_units.len()
    )
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}
