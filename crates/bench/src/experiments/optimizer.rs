//! E07, E09, E10, E20, E21: optimizer-level robustness.

use super::harness::{self, Harness};
use rqp::exec::ExecContext;
use rqp::expr::col;
use rqp::metrics::{smoothness, CostContour, ReportTable};
use rqp::opt::plandiagram::{AnorexicReduction, PlanDiagram};
use rqp::opt::rio::{RioAnalysis, RioRobustness, UncertaintyLevel};
use rqp::opt::robust::{robust_plan, scaled_scenarios, RobustMode};
use rqp::opt::{plan, CostModel, PlannerConfig};
use rqp::physical::{stats_refresh_experiment, RefreshConfig};
use rqp::stats::{StatsEstimator, TableStatsRegistry};
use rqp::workload::star::StarParams;
use rqp::workload::{tpch::TpchParams, StarDb, TpchDb};
use rqp::QuerySpec;
use std::rc::Rc;

/// E07 — the selectivity sweep: P(q) per plan family and the smoothness
/// metric S(Q).
pub fn e07_smoothness(fast: bool) -> String {
    harness::run("e07_smoothness", fast, e07_body)
}

fn e07_body(h: &mut Harness) -> String {
    let li = if h.fast() { 4000 } else { 20_000 };
    let db = TpchDb::build(
        TpchParams { lineitem_rows: li, ..Default::default() },
        h.note_seed("db", 7),
    );
    let reg = Rc::new(TableStatsRegistry::analyze_catalog(&db.catalog, 32));
    let est = StatsEstimator::new(Rc::clone(&reg));
    let sweep: Vec<f64> = [0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 0.6, 1.0].to_vec();

    let run_plan = |p: &rqp::PhysicalPlan| -> f64 {
        let ctx = ExecContext::unbounded();
        p.build(&db.catalog, &ctx, None).expect("build").run();
        ctx.clock.now()
    };

    let mut t = ReportTable::new(&[
        "selectivity", "forced scan", "forced index", "optimizer choice", "chosen plan",
    ]);
    let mut scan_costs = Vec::new();
    let mut index_costs = Vec::new();
    let mut chosen_costs = Vec::new();
    for &sel in &sweep {
        let spec = db.range_query(sel);
        // Forced scan: planner with indexes disabled.
        let scan_plan = plan(
            &spec,
            &db.catalog,
            &est,
            PlannerConfig { use_indexes: false, ..Default::default() },
        )
        .expect("scan plan");
        let scan_cost = run_plan(&scan_plan);
        // Forced index: hand-built index scan over the range.
        let width = ((rqp::workload::tpch::DATE_DOMAIN as f64) * sel).round() as i64;
        let index_plan = rqp::PhysicalPlan::Aggregate {
            input: Box::new(rqp::PhysicalPlan::IndexScan {
                table: "lineitem".into(),
                index: "ix_lineitem_shipdate".into(),
                column: "shipdate".into(),
                lo: Some(rqp::Value::Int(0)),
                hi: Some(rqp::Value::Int((width - 1).max(0))),
                range_filter: col("lineitem.shipdate").between(0i64, (width - 1).max(0)),
                residual: None,
                est_rows: 0.0,
                est_cost: 0.0,
            }),
            group_by: vec![],
            aggs: vec![rqp::AggSpec::count_star("n")],
            est_rows: 1.0,
            est_cost: 0.0,
        };
        let index_cost = run_plan(&index_plan);
        // The optimizer's pick.
        let chosen = plan(&spec, &db.catalog, &est, PlannerConfig::default()).expect("plan");
        let chosen_cost = run_plan(&chosen);
        scan_costs.push(scan_cost);
        index_costs.push(index_cost);
        chosen_costs.push(chosen_cost);
        t.row(&[
            format!("{sel}"),
            format!("{scan_cost:.0}"),
            format!("{index_cost:.0}"),
            format!("{chosen_cost:.0}"),
            if chosen.fingerprint().contains("ixscan") { "index".into() } else { "scan".into() },
        ]);
    }
    // P(q) = measured − per-point optimum; S(Q) = CV of the gaps.
    let gaps = |costs: &[f64]| -> Vec<f64> {
        costs
            .iter()
            .zip(scan_costs.iter().zip(&index_costs))
            .map(|(&c, (&s, &i))| c - s.min(i) + 1.0)
            .collect()
    };
    let s_scan = smoothness(&gaps(&scan_costs));
    let s_index = smoothness(&gaps(&index_costs));
    let s_chosen = smoothness(&gaps(&chosen_costs));
    // The optimizer's own P(q) series is the experiment's headline sample
    // set: the scoreboard recomputes S(Q) from it.
    h.config("sweep_points", sweep.len());
    h.perf_gaps(&gaps(&chosen_costs));
    h.env_costs(
        &chosen_costs
            .iter()
            .zip(scan_costs.iter().zip(&index_costs))
            .map(|(&c, (&s, &i))| (c, s.min(i)))
            .collect::<Vec<_>>(),
    );
    h.gauge("smoothness.forced_scan", s_scan);
    h.gauge("smoothness.forced_index", s_index);
    h.gauge("smoothness.optimizer", s_chosen);
    // One contour over all three series → a shared shading scale, so the
    // index cliff is visible against the flat scan.
    let surface = CostContour::new(vec![
        chosen_costs.clone(),
        index_costs.clone(),
        scan_costs.clone(),
    ]);
    let shaded = surface.render();
    let mut lines = shaded.lines();
    let scan_line = lines.next().unwrap_or_default().to_owned();
    let index_line = lines.next().unwrap_or_default().to_owned();
    let chosen_line = lines.next().unwrap_or_default().to_owned();
    let legend = lines.next().unwrap_or_default().to_owned();
    format!(
        "E07 — selectivity sweep, P(q) and smoothness S(Q)\n\n{t}\n\
         cost heat over the sweep (shared log scale):\n\
           forced scan   [{scan_line}]\n\
           forced index  [{index_line}]\n\
           optimizer     [{chosen_line}]\n\
         {legend}\n\
         S(Q): forced scan {s_scan:.2} | forced index {s_index:.2} | \
         optimizer choice {s_chosen:.2}\n\
         Expected shape: the index plan falls off a cliff past the crossover \
         (large S); the scan is flat but never cheap; the optimizer's switch \
         keeps P(q) small across the sweep.\n",
    )
}

/// E09 — Babcock–Chaudhuri robust plan selection: expected vs percentile
/// costing under selectivity uncertainty.
pub fn e09_robust_opt(fast: bool) -> String {
    harness::run("e09_robust_opt", fast, e09_body)
}

fn e09_body(h: &mut Harness) -> String {
    let li = if h.fast() { 4000 } else { 20_000 };
    let db = TpchDb::build(
        TpchParams { lineitem_rows: li, ..Default::default() },
        h.note_seed("db", 9),
    );
    let reg = Rc::new(TableStatsRegistry::analyze_catalog(&db.catalog, 32));
    let est = StatsEstimator::new(Rc::clone(&reg));
    // A highly selective filter puts index-nested-loop on the table at the
    // point estimate; if the estimate is off by 100×+, INL is a disaster.
    let spec = QuerySpec::new()
        .join("lineitem", "orderkey", "orders", "orderkey")
        .filter("lineitem", col("lineitem.shipdate").le(rqp::expr::lit(2i64)));
    // Uncertainty: the filter might be 1×…500× less selective than estimated.
    let factors = [1.0, 5.0, 25.0, 100.0, 500.0];
    let scenarios = scaled_scenarios(est.clone(), "lineitem", &factors);

    let mut t = ReportTable::new(&["mode", "plan", "cost@point", "mean cost", "worst cost"]);
    let cm = CostModel::default();
    let mut worsts = Vec::new();
    for (name, mode) in [
        ("classic (point)", RobustMode::Point),
        ("least expected cost", RobustMode::LeastExpectedCost),
        ("80th percentile", RobustMode::Percentile(0.8)),
        ("worst case (p100)", RobustMode::Percentile(1.0)),
    ] {
        let choice =
            robust_plan(&spec, &db.catalog, &scenarios, PlannerConfig::default(), mode)
                .expect("robust");
        let costs: Vec<f64> = scenarios
            .iter()
            .map(|s| choice.plan.reestimate(s.as_ref(), &cm).1)
            .collect();
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        let worst = costs.iter().cloned().fold(0.0, f64::max);
        worsts.push(worst);
        t.row(&[
            name.into(),
            short(&choice.plan.fingerprint()),
            format!("{:.0}", costs[0]),
            format!("{mean:.0}"),
            format!("{worst:.0}"),
        ]);
    }
    // Each mode's worst-case cost vs the best achievable worst case.
    let best_worst = worsts.iter().cloned().fold(f64::INFINITY, f64::min);
    h.env_costs(&worsts.iter().map(|w| (*w, best_worst)).collect::<Vec<_>>());
    h.config("scenarios", scenarios.len());
    format!(
        "E09 — robust plan selection under selectivity uncertainty \
         (error factors {factors:?})\n\n{t}\n\
         Expected shape: percentile costing gives up a little at the point \
         estimate to cap the worst case; the classic choice is cheapest if \
         the estimate is right and worst if it is not.\n",
    )
}

/// E10 — plan diagrams and anorexic reduction.
pub fn e10_plan_diagram(fast: bool) -> String {
    harness::run("e10_plan_diagram", fast, e10_body)
}

fn e10_body(h: &mut Harness) -> String {
    let fact_rows = if h.fast() { 4000 } else { 16_000 };
    let db = StarDb::build(StarParams { fact_rows, ..Default::default() }, h.note_seed("db", 10));
    let reg = Rc::new(TableStatsRegistry::analyze_catalog(&db.catalog, 16));
    let est = StatsEstimator::new(reg);
    let g = if h.fast() { 8 } else { 12 };
    let grid: Vec<f64> = (1..=g)
        .map(|i| (i as f64 / g as f64).powi(3).max(1e-4))
        .collect();
    let d = PlanDiagram::generate(
        &db.diagram_query(),
        &db.catalog,
        &est,
        PlannerConfig::default(),
        "fact",
        "d1",
        &grid,
    )
    .expect("diagram");
    let mut t = ReportTable::new(&["lambda", "plans before", "plans after", "max inflation"]);
    for lambda in [0.0, 0.1, 0.2, 0.5, 1.0] {
        let red = AnorexicReduction::reduce(&d, lambda);
        if (lambda - 0.2).abs() < 1e-9 {
            h.gauge("diagram.plans_before", d.plan_count() as f64);
            h.gauge("diagram.plans_after_l02", red.plan_count() as f64);
            h.gauge("diagram.max_inflation_l02", red.max_inflation);
        }
        t.row(&[
            format!("{lambda}"),
            format!("{}", d.plan_count()),
            format!("{}", red.plan_count()),
            format!("{:.3}", red.max_inflation),
        ]);
    }
    // Optimal-cost surface: the per-point minimum over all plans — the
    // "cost diagram" companion picture (Graefe/Kuno/Wiener-style contour).
    let gl = grid.len();
    let opt_surface: Vec<Vec<f64>> = (0..gl)
        .map(|y| {
            (0..gl)
                .map(|x| d.costs[d.assignment[y][x]][y][x])
                .collect()
        })
        .collect();
    let contour = CostContour::new(opt_surface);
    h.config("grid", grid.len());
    h.gauge("diagram.max_cliff", contour.max_cliff());
    format!(
        "E10 — plan diagram ({0}x{0} selectivity grid) and anorexic reduction\n\n\
         diagram (letters = distinct plans, origin bottom-left):\n{1}\n\
         optimal-cost contour of the same grid:\n{2}\n{t}\n\
         Expected shape: a handful of plans already; λ = 0.2 collapses the \
         diagram to very few plans at ≤ 20% cost inflation (Harish et al.); \
         the contour shows the cost growing smoothly with both selectivities \
         (max adjacent-cell cliff {3:.2}x — plan switches keep it smooth).\n",
        grid.len(),
        d.render(),
        contour.render(),
        contour.max_cliff(),
    )
}

/// E20 — Rio: uncertainty buckets → bounding boxes → robust or switchable.
pub fn e20_rio(fast: bool) -> String {
    harness::run("e20_rio", fast, e20_body)
}

fn e20_body(h: &mut Harness) -> String {
    let li = if h.fast() { 4000 } else { 16_000 };
    let db = TpchDb::build(
        TpchParams { lineitem_rows: li, ..Default::default() },
        h.note_seed("db", 20),
    );
    let reg = Rc::new(TableStatsRegistry::analyze_catalog(&db.catalog, 32));
    let est = StatsEstimator::new(Rc::clone(&reg));
    let spec = QuerySpec::new()
        .join("lineitem", "orderkey", "orders", "orderkey")
        .filter("lineitem", col("lineitem.quantity").le(rqp::expr::lit(3i64)));
    let mut t = ReportTable::new(&[
        "uncertainty", "box factor", "verdict", "corner plans", "chosen worst-corner",
        "point-plan worst-corner",
    ]);
    let mut env_pairs = Vec::new();
    for level in UncertaintyLevel::all() {
        let a = RioAnalysis::analyze(
            &spec,
            &db.catalog,
            est.clone(),
            PlannerConfig::default(),
            "lineitem",
            level,
        )
        .expect("rio");
        let worst = |c: (f64, f64, f64)| c.0.max(c.1).max(c.2);
        let chosen_worst = worst(a.chosen_corner_costs);
        env_pairs.push((chosen_worst, chosen_worst.min(worst(a.point_corner_costs))));
        t.row(&[
            format!("{level:?}"),
            format!("{:.1}", level.box_factor()),
            match a.robustness {
                RioRobustness::Robust => "robust".into(),
                RioRobustness::Switchable => "SWITCHABLE".into(),
            },
            format!("{}", a.corner_fingerprints.len()),
            format!("{:.0}", worst(a.chosen_corner_costs)),
            format!("{:.0}", worst(a.point_corner_costs)),
        ]);
    }
    h.env_costs(&env_pairs);
    format!(
        "E20 — Rio proactive re-optimization: bounding-box analysis per \
         uncertainty level\n\n{t}\n\
         Expected shape: low uncertainty → one corner plan (provably robust \
         in the box); high uncertainty → switchable, and the Rio choice caps \
         the worst corner below the point plan's.\n",
    )
}

/// E21 — the statistics-refresh "automatic disaster", with and without plan
/// pinning.
pub fn e21_stats_refresh(fast: bool) -> String {
    harness::run("e21_stats_refresh", fast, e21_body)
}

fn e21_body(h: &mut Harness) -> String {
    let fast = h.fast();
    let li = if fast { 3000 } else { 8000 };
    let db = TpchDb::build(
        TpchParams { lineitem_rows: li, ..Default::default() },
        h.note_seed("db", 21),
    );
    // Queries parked near the scan/index crossover — the fragile zone.
    let workload: Vec<QuerySpec> = (0..4)
        .map(|i| {
            QuerySpec::new().table("lineitem").filter(
                "lineitem",
                col("lineitem.shipdate").between(i * 250, i * 250 + 14),
            )
        })
        .collect();
    let epochs = if fast { 8 } else { 15 };
    let base = RefreshConfig {
        epochs,
        insert_fraction: 0.01,
        sample_size: 50,
        buckets: 4,
        seed: h.note_seed("refresh", 2121),
        ..Default::default()
    };
    let unpinned =
        stats_refresh_experiment(&db.catalog, "lineitem", &workload, base).expect("unpinned");
    let pinned = stats_refresh_experiment(
        &db.catalog,
        "lineitem",
        &workload,
        RefreshConfig { pin_plans: true, ..base },
    )
    .expect("pinned");
    let mut t = ReportTable::new(&[
        "policy", "total plan flips", "distinct plans", "worst flip regression",
    ]);
    for (name, r) in [("re-optimize each refresh", &unpinned), ("plan pinning + verify", &pinned)]
    {
        let distinct: usize = r.per_query.iter().map(|s| s.distinct_plans()).sum();
        t.row(&[
            name.into(),
            format!("{}", r.total_flips()),
            format!("{distinct}"),
            format!("{:.2}x", r.worst_regression()),
        ]);
    }
    h.config("epochs", epochs);
    h.gauge("refresh.flips_unpinned", unpinned.total_flips() as f64);
    h.gauge("refresh.flips_pinned", pinned.total_flips() as f64);
    h.gauge("refresh.worst_regression_unpinned", unpinned.worst_regression());
    h.gauge("refresh.worst_regression_pinned", pinned.worst_regression());
    format!(
        "E21 — 'automatic disaster': tiny inserts + sampled stats refresh \
         ({epochs} epochs, 4 crossover queries)\n\n{t}\n\
         Expected shape: naive re-optimization flips plans as each fresh \
         sample jitters the estimate across the crossover; pinning with a \
         verified replacement margin suppresses most of the churn.\n",
    )
}

fn short(fp: &str) -> String {
    if fp.len() > 40 {
        format!("{}…", &fp[..40])
    } else {
        fp.to_owned()
    }
}
