//! A01–A03: ablations over the design choices `DESIGN.md` calls out.

use super::harness::{self, Harness};
use rand::Rng;
use rqp::adaptive::pop::{run_standard, run_with_pop, EstimatorWrapper, PopConfig};
use rqp::exec::{collect, EddyFilterOp, ExecContext, Operator, RoutingPolicy};
use rqp::expr::{col, lit};
use rqp::metrics::ReportTable;
use rqp::opt::PlannerConfig;
use rqp::stats::{LyingEstimator, TableStatsRegistry};
use rqp::storage::AdaptiveMergeIndex;
use rqp::workload::{tpch::TpchParams, TpchDb};
use rqp::{DataType, Row, Schema, Value};

/// A01 — POP θ sensitivity: validity-range tightness vs overhead/recovery.
pub fn a01_pop_theta(fast: bool) -> String {
    harness::run("a01_pop_theta", fast, |h| {
        let li = if h.fast() { 3000 } else { 10_000 };
        let db = TpchDb::build(
            TpchParams { lineitem_rows: li, ..Default::default() },
            h.note_seed("db", 101),
        );
        let registry = TableStatsRegistry::analyze_catalog(&db.catalog, 32);
        // A moderately wrong estimate (12×): tight thetas catch it, loose ones
        // ride it out.
        let wrap: Box<EstimatorWrapper<'_>> = Box::new(|e| {
            Box::new(LyingEstimator::new(e).with_table_factor("lineitem", 1.0 / 12.0))
        });
        let spec = db.q3(1, 1200);
        let cfg = PlannerConfig::default();
        let ctx = ExecContext::unbounded();
        let (_, std_cost) =
            run_standard(&spec, &db.catalog, &registry, wrap.as_ref(), cfg, &ctx).expect("std");
        let thetas = [1.5, 2.0, 5.0, 20.0, 100.0];
        h.config("thetas", thetas.len());
        let mut t = ReportTable::new(&["theta", "reopts", "POP cost", "vs standard"]);
        let mut gaps = Vec::new();
        let mut pairs = Vec::new();
        let mut best = f64::INFINITY;
        for (i, theta) in thetas.into_iter().enumerate() {
            // The last (loosest) θ runs on the harness context so one full
            // CHECK-instrumented trace lands in the report.
            let ctx = if i + 1 == thetas.len() { h.ctx().clone() } else { ExecContext::unbounded() };
            let start = ctx.clock.now();
            let report = run_with_pop(
                &spec,
                &db.catalog,
                &registry,
                wrap.as_ref(),
                cfg,
                PopConfig { theta, max_reopts: 3 },
                &ctx,
            )
            .expect("pop");
            let cost = ctx.clock.now() - start;
            best = best.min(cost);
            gaps.push((cost - std_cost).abs());
            pairs.push((cost, std_cost.min(cost)));
            t.row(&[
                format!("{theta}"),
                format!("{}", report.reoptimizations()),
                format!("{:.0}", report.total_cost),
                format!("{:.2}x", report.total_cost / std_cost),
            ]);
        }
        h.perf_gaps(&gaps);
        h.env_costs(&pairs);
        h.m3(std_cost, best);
        format!(
            "A01 — POP validity-threshold ablation (12x underestimate; standard \
             cost {std_cost:.0})\n\n{t}\n\
             Expected shape: θ below the injected error catches and repairs the \
             plan; θ above it degenerates to standard execution plus CHECK \
             overhead. The knee sits at the error magnitude — validity ranges \
             are only as useful as they are honest about estimation accuracy.\n",
        )
    })
}

/// A02 — adaptive-merge run-size ablation: build cost vs convergence.
pub fn a02_amerge_runsize(fast: bool) -> String {
    harness::run("a02_amerge_runsize", fast, a02_body)
}

fn a02_body(h: &mut Harness) -> String {
    let n = if h.fast() { 30_000usize } else { 150_000 };
    let mut rng = h.seeded("amerge-keys", 102);
    let keys: Vec<i64> = (0..n).map(|_| rng.gen_range(0..n as i64)).collect();
    let queries: Vec<(i64, i64)> = (0..20)
        .map(|_| {
            let lo = rng.gen_range(0..(n as i64 * 9 / 10));
            (lo, lo + (n as i64 / 100))
        })
        .collect();
    let mut t = ReportTable::new(&[
        "run size", "runs", "build compares", "q0 moved", "q19 moved", "total moved",
    ]);
    let sqrt_n = (n as f64).sqrt().ceil() as usize;
    let mut build_costs = Vec::new();
    for (label, run_size) in [
        ("√n", sqrt_n),
        ("n/100", n / 100),
        ("n/10", n / 10),
        ("n (eager sort)", n),
    ] {
        let mut am = AdaptiveMergeIndex::new(&keys, run_size);
        let build = am.initial_sort_comparisons();
        let runs = n.div_ceil(run_size);
        let mut first = 0usize;
        let mut last = 0usize;
        let mut total = 0usize;
        for (i, &(lo, hi)) in queries.iter().enumerate() {
            let (_, st) = am.query(lo, hi);
            if i == 0 {
                first = st.moved;
            }
            last = st.moved;
            total += st.moved;
        }
        build_costs.push(build as f64 + total as f64);
        t.row(&[
            label.into(),
            format!("{runs}"),
            format!("{build}"),
            format!("{first}"),
            format!("{last}"),
            format!("{total}"),
        ]);
    }
    h.config("rows", n);
    // Per-configuration total work (build comparisons + key moves): the
    // sweep's performance profile, folded into smoothness by the scoreboard.
    let floor = build_costs.iter().cloned().fold(f64::INFINITY, f64::min);
    h.perf_gaps(&build_costs.iter().map(|c| c - floor).collect::<Vec<_>>());
    h.env_costs(&build_costs.iter().map(|c| (*c, floor)).collect::<Vec<_>>());
    format!(
        "A02 — adaptive-merge run-size ablation ({n} rows, 20 1% queries)\n\n{t}\n\
         Expected shape: bigger runs cost more comparisons up front but the \
         per-query merge work is identical (each key range moves once); the \
         run count controls only probe overhead. The design's √n default \
         balances build cost against probes-per-query.\n",
    )
}

/// A03 — eddy lottery decay: adaptation speed vs stability.
pub fn a03_eddy_decay(fast: bool) -> String {
    harness::run("a03_eddy_decay", fast, a03_body)
}

fn a03_body(h: &mut Harness) -> String {
    let n: i64 = if h.fast() { 20_000 } else { 100_000 };
    let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            if i < n / 2 {
                vec![Value::Int(i % 40), Value::Int(200 + i % 800)]
            } else {
                vec![Value::Int(200 + i % 800), Value::Int(i % 40)]
            }
        })
        .collect();
    struct VecOp {
        schema: Schema,
        rows: std::vec::IntoIter<Row>,
    }
    impl Operator for VecOp {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn next(&mut self) -> Option<Row> {
            self.rows.next()
        }
    }
    let preds = vec![col("a").lt(lit(100i64)), col("b").lt(lit(100i64))];
    let decays = [0.9, 0.99, 0.999, 1.0];
    let lottery_seed = h.note_seed("eddy-lottery", 103);
    h.config("decays", decays.len());
    let mut t = ReportTable::new(&["decay", "evaluations", "per tuple"]);
    let mut evals = Vec::new();
    for (i, decay) in decays.into_iter().enumerate() {
        // The first (fastest-forgetting) decay runs on the harness context so
        // its `eddy.reroute` events land in the run report.
        let ctx = if i == 0 { h.ctx().clone() } else { ExecContext::unbounded() };
        let src = Box::new(VecOp { schema: schema.clone(), rows: rows.clone().into_iter() });
        let mut eddy = EddyFilterOp::new(
            src,
            &preds,
            RoutingPolicy::Lottery { decay },
            lottery_seed,
            ctx,
        )
        .expect("eddy");
        let _ = collect(&mut eddy);
        evals.push(eddy.evaluations as f64);
        t.row(&[
            format!("{decay}"),
            format!("{}", eddy.evaluations),
            format!("{:.3}", eddy.evaluations as f64 / n as f64),
        ]);
    }
    let floor = evals.iter().cloned().fold(f64::INFINITY, f64::min);
    h.perf_gaps(&evals.iter().map(|e| e - floor).collect::<Vec<_>>());
    h.env_costs(&evals.iter().map(|e| (*e, floor)).collect::<Vec<_>>());
    format!(
        "A03 — eddy lottery-decay ablation (selectivity flip at tuple {})\n\n{t}\n\
         Expected shape: decay < 1 forgets the stale phase and re-adapts \
         after the flip; decay = 1.0 (infinite memory) averages the two \
         phases and re-adapts slowly (more evaluations). Very small decay \
         adds exploration jitter without further benefit.\n",
        n / 2,
    )
}
