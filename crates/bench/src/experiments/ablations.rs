//! A01–A04 and A09: ablations over the design choices `DESIGN.md` calls out.

use super::harness::{self, Harness};
use rand::Rng;
use rqp::adaptive::pop::{run_standard, run_with_pop, EstimatorWrapper, PopConfig};
use rqp::common::{CostClock, CostModelParams, StringDict};
use rqp::exec::exchange::{pipeline, ExchangeOp, Partitioning};
use rqp::exec::{
    collect, AggFunc, AggSpec, BatchFilterOp, BatchHashAggOp, BatchHashJoinOp, BatchRowsOp,
    BatchScanOp, BoxBatchOp, BoxOp, EddyFilterOp, ExecContext, FilterOp, HashAggOp, HashJoinOp,
    Operator, RoutingPolicy, TableScanOp,
};
use rqp::expr::{col, lit};
use rqp::metrics::{smoothness, ReportTable};
use rqp::opt::PlannerConfig;
use rqp::stats::{LyingEstimator, TableStatsRegistry};
use rqp::storage::AdaptiveMergeIndex;
use rqp::telemetry::scoreboard::samples;
use rqp::workload::{tpch::TpchParams, TpchDb};
use rqp::{DataType, Row, Schema, Table, Value};
use std::sync::Arc;

/// A01 — POP θ sensitivity: validity-range tightness vs overhead/recovery.
pub fn a01_pop_theta(fast: bool) -> String {
    harness::run("a01_pop_theta", fast, |h| {
        let li = if h.fast() { 3000 } else { 10_000 };
        let db = TpchDb::build(
            TpchParams { lineitem_rows: li, ..Default::default() },
            h.note_seed("db", 101),
        );
        let registry = TableStatsRegistry::analyze_catalog(&db.catalog, 32);
        // A moderately wrong estimate (12×): tight thetas catch it, loose ones
        // ride it out.
        let wrap: Box<EstimatorWrapper<'_>> = Box::new(|e| {
            Box::new(LyingEstimator::new(e).with_table_factor("lineitem", 1.0 / 12.0))
        });
        let spec = db.q3(1, 1200);
        let cfg = PlannerConfig::default();
        let ctx = ExecContext::unbounded();
        let (_, std_cost) =
            run_standard(&spec, &db.catalog, &registry, wrap.as_ref(), cfg, &ctx).expect("std");
        let thetas = [1.5, 2.0, 5.0, 20.0, 100.0];
        h.config("thetas", thetas.len());
        let mut t = ReportTable::new(&["theta", "reopts", "POP cost", "vs standard"]);
        let mut gaps = Vec::new();
        let mut pairs = Vec::new();
        let mut best = f64::INFINITY;
        for (i, theta) in thetas.into_iter().enumerate() {
            // The last (loosest) θ runs on the harness context so one full
            // CHECK-instrumented trace lands in the report.
            let ctx = if i + 1 == thetas.len() { h.ctx().clone() } else { ExecContext::unbounded() };
            let start = ctx.clock.now();
            let report = run_with_pop(
                &spec,
                &db.catalog,
                &registry,
                wrap.as_ref(),
                cfg,
                PopConfig { theta, max_reopts: 3 },
                &ctx,
            )
            .expect("pop");
            let cost = ctx.clock.now() - start;
            best = best.min(cost);
            gaps.push((cost - std_cost).abs());
            pairs.push((cost, std_cost.min(cost)));
            t.row(&[
                format!("{theta}"),
                format!("{}", report.reoptimizations()),
                format!("{:.0}", report.total_cost),
                format!("{:.2}x", report.total_cost / std_cost),
            ]);
        }
        h.perf_gaps(&gaps);
        h.env_costs(&pairs);
        h.m3(std_cost, best);
        format!(
            "A01 — POP validity-threshold ablation (12x underestimate; standard \
             cost {std_cost:.0})\n\n{t}\n\
             Expected shape: θ below the injected error catches and repairs the \
             plan; θ above it degenerates to standard execution plus CHECK \
             overhead. The knee sits at the error magnitude — validity ranges \
             are only as useful as they are honest about estimation accuracy.\n",
        )
    })
}

/// A02 — adaptive-merge run-size ablation: build cost vs convergence.
pub fn a02_amerge_runsize(fast: bool) -> String {
    harness::run("a02_amerge_runsize", fast, a02_body)
}

fn a02_body(h: &mut Harness) -> String {
    let n = if h.fast() { 30_000usize } else { 150_000 };
    let mut rng = h.seeded("amerge-keys", 102);
    let keys: Vec<i64> = (0..n).map(|_| rng.gen_range(0..n as i64)).collect();
    let queries: Vec<(i64, i64)> = (0..20)
        .map(|_| {
            let lo = rng.gen_range(0..(n as i64 * 9 / 10));
            (lo, lo + (n as i64 / 100))
        })
        .collect();
    let mut t = ReportTable::new(&[
        "run size", "runs", "build compares", "q0 moved", "q19 moved", "total moved",
    ]);
    let sqrt_n = (n as f64).sqrt().ceil() as usize;
    let mut build_costs = Vec::new();
    for (label, run_size) in [
        ("√n", sqrt_n),
        ("n/100", n / 100),
        ("n/10", n / 10),
        ("n (eager sort)", n),
    ] {
        let mut am = AdaptiveMergeIndex::new(&keys, run_size);
        let build = am.initial_sort_comparisons();
        let runs = n.div_ceil(run_size);
        let mut first = 0usize;
        let mut last = 0usize;
        let mut total = 0usize;
        for (i, &(lo, hi)) in queries.iter().enumerate() {
            let (_, st) = am.query(lo, hi);
            if i == 0 {
                first = st.moved;
            }
            last = st.moved;
            total += st.moved;
        }
        build_costs.push(build as f64 + total as f64);
        t.row(&[
            label.into(),
            format!("{runs}"),
            format!("{build}"),
            format!("{first}"),
            format!("{last}"),
            format!("{total}"),
        ]);
    }
    h.config("rows", n);
    // Per-configuration total work (build comparisons + key moves): the
    // sweep's performance profile, folded into smoothness by the scoreboard.
    let floor = build_costs.iter().cloned().fold(f64::INFINITY, f64::min);
    h.perf_gaps(&build_costs.iter().map(|c| c - floor).collect::<Vec<_>>());
    h.env_costs(&build_costs.iter().map(|c| (*c, floor)).collect::<Vec<_>>());
    format!(
        "A02 — adaptive-merge run-size ablation ({n} rows, 20 1% queries)\n\n{t}\n\
         Expected shape: bigger runs cost more comparisons up front but the \
         per-query merge work is identical (each key range moves once); the \
         run count controls only probe overhead. The design's √n default \
         balances build cost against probes-per-query.\n",
    )
}

/// A04 — parallel scaling: exchange worker count × injected partition skew.
pub fn a04_parallel_scaling(fast: bool) -> String {
    harness::run("a04_parallel_scaling", fast, a04_body)
}

fn a04_body(h: &mut Harness) -> String {
    let n: i64 = if h.fast() { 20_000 } else { 100_000 };
    let schema = Schema::from_pairs(&[("id", DataType::Int), ("key", DataType::Int)]);
    let mut t = Table::new("events", schema);
    let mut rng = h.seeded("rows", 104);
    for i in 0..n {
        t.append(vec![Value::Int(i), Value::Int(rng.gen_range(0..1_000_000i64))]);
    }
    let table = Arc::new(t);
    let worker_counts = [1usize, 2, 4, 8];
    let skews = [0.0, 0.5, 0.9];
    h.config("rows", n);
    h.config("worker_counts", worker_counts.len());
    h.config("skews", skews.len());

    // Each config runs the same plan — scan, hash-repartition on `key` with
    // the injected skew, per-worker filter, gather — and reads the gather's
    // imbalance gauges. "Elapsed" in cost-clock terms is the critical path:
    // the slowest worker's shard cost.
    let mut t_out =
        ReportTable::new(&["workers", "skew", "critical path", "speedup", "imbalance"]);
    let mut elapsed = Vec::new();
    let mut ideals = Vec::new();
    let mut rows_out = Vec::new();
    let mut zero_skew_shortfalls = Vec::new();
    let mut headline_elapsed = f64::NAN;
    let mut headline_speedup = f64::NAN;
    let mut worst_imbalance = 1.0f64;
    for &skew in &skews {
        for &workers in &worker_counts {
            // The headline config (most workers, no skew) runs on the
            // harness context so its per-worker spans land in the report.
            let headline = workers == *worker_counts.last().unwrap() && skew == 0.0;
            let ctx = if headline { h.ctx().clone() } else { ExecContext::unbounded() };
            let scan = Box::new(TableScanOp::new(Arc::clone(&table), ctx.clone()));
            let pred = col("events.key").lt(lit(500_000i64));
            let build = pipeline(move |op, wctx| {
                Box::new(FilterOp::new(op, &pred, wctx.clone()).expect("filter"))
            });
            let spec = Partitioning::Hash { keys: vec![1], skew };
            let mut ex = ExchangeOp::repartition(scan, spec, workers, build, ctx.clone())
                .expect("exchange");
            rows_out.push(collect(&mut ex).len());
            let critical = ctx.metrics.gauge("exchange.critical_path").get();
            let total = ctx.metrics.gauge("exchange.total_work").get();
            let speedup = ctx.metrics.gauge("exchange.speedup").get();
            let imbalance = ctx.metrics.gauge("exchange.skew").get();
            elapsed.push(critical);
            ideals.push(total / workers as f64);
            worst_imbalance = worst_imbalance.max(imbalance);
            if skew == 0.0 {
                zero_skew_shortfalls.push(workers as f64 - speedup);
            }
            if headline {
                headline_elapsed = critical;
                headline_speedup = speedup;
            }
            t_out.row(&[
                format!("{workers}"),
                format!("{skew}"),
                format!("{critical:.0}"),
                format!("{speedup:.2}x"),
                format!("{imbalance:.2}"),
            ]);
        }
    }
    // Parallelism must not change the answer: every config returns the same
    // row count.
    assert!(rows_out.windows(2).all(|w| w[0] == w[1]), "row counts diverged: {rows_out:?}");

    // Paper samples: elapsed-time gaps over the sweep (smoothness), per-config
    // (elapsed, ideal) pairs (variability), and the headline-vs-best runtimes.
    let floor = elapsed.iter().copied().fold(f64::INFINITY, f64::min);
    h.perf_gaps(&elapsed.iter().map(|e| e - floor).collect::<Vec<_>>());
    h.env_costs(&elapsed.iter().copied().zip(ideals).collect::<Vec<_>>());
    h.m3(headline_elapsed, floor);
    // How smoothly speedup approaches linear as workers grow (zero skew):
    // the CV of per-count shortfalls from ideal. Low = scaling degrades
    // predictably; high = a cliff at some worker count.
    h.gauge("parallel.speedup_smoothness", smoothness(&zero_skew_shortfalls));
    h.gauge(samples::PARALLEL_SPEEDUP, headline_speedup);
    h.gauge(samples::PARALLEL_SKEW, worst_imbalance);
    format!(
        "A04 — parallel scaling ({n} rows, hash repartition on `key`, filter per worker)\n\n\
         {t_out}\n\
         Expected shape: at zero skew the critical path shrinks near-linearly \
         with workers (imbalance ≈ 1). Injected skew routes a fixed fraction \
         of rows to worker 0, so the critical path — and therefore speedup — \
         degrades smoothly toward serial as skew grows, while total work stays \
         constant: the robustness story is *graceful* degradation, measured by \
         the imbalance factor and the speedup-smoothness gauge.\n",
    )
}

/// A09 — batch-vs-scalar wall-clock speedup on the filter/join/agg sweep.
pub fn a09_batch_speedup(fast: bool) -> String {
    harness::run("a09_batch_speedup", fast, a09_body)
}

/// Ceiling on the reported [`samples::BATCH_SPEEDUP`] gauge. The scoreboard
/// folds that gauge as a *minimum* and gates CI at `baseline - slack`, so
/// committing a capped baseline pins the floor at the 2x acceptance bar
/// (2.5 - 0.5 slack) — a fast machine regenerating artifacts cannot ratchet
/// the floor past what CI hardware reproduces.
const A09_SPEEDUP_CAP: f64 = 2.5;

/// One timed pipeline variant: returns its rows plus the context whose clock
/// charged it, so twins can be checked for row and cost parity.
type A09Run = Box<dyn Fn() -> (Vec<Row>, ExecContext)>;

/// A private context with dyadic cost weights, so twin charges compare
/// bit-for-bit (the same trick the batch acceptance tests use).
fn a09_ctx() -> ExecContext {
    let params = CostModelParams {
        rows_per_page: 128.0,
        seq_page: 1.0,
        rand_page: 4.0,
        cpu_tuple: 1.0 / 256.0,
        cpu_compare: 1.0 / 512.0,
        hash_build: 1.0 / 64.0,
        hash_probe: 1.0 / 128.0,
        spill_page: 2.5,
    };
    ExecContext::new(CostClock::new(params), f64::INFINITY)
}

/// One canonical run (kept for the parity check), then `reps` timed runs,
/// reporting the best — wall clock, since charged costs are identical by
/// construction.
fn a09_time(reps: usize, run: &dyn Fn() -> (Vec<Row>, ExecContext)) -> (f64, Vec<Row>, ExecContext) {
    let (rows, ctx) = run();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = std::time::Instant::now();
        let _ = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, rows, ctx)
}

fn a09_body(h: &mut Harness) -> String {
    let n: i64 = if h.fast() { 30_000 } else { 150_000 };
    let reps = if h.fast() { 3 } else { 5 };
    h.config("rows", n);
    h.config("reps", reps);

    // A string-heavy fact table: the dictionary-coded `cat` column is where
    // row-at-a-time execution pays for String comparisons and clones.
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("amt", DataType::Float),
        ("cat", DataType::Str),
    ]);
    let mut t = Table::new("s", schema);
    let mut rng = h.seeded("rows", 109);
    for i in 0..n {
        t.append(vec![
            Value::Int(i),
            // Dyadic amounts, so aggregate sums fold associatively.
            Value::Float(rng.gen_range(0..4_000i64) as f64 * 0.25),
            Value::Str(format!("cat{:02}", rng.gen_range(0..48u32))),
        ]);
    }
    let sales = Arc::new(t);
    // A selective dimension (6 of 48 categories), so the join, like the
    // filter, qualifies a minority of probe rows — the regime vectorized
    // execution is built for: the batch path only materializes survivors.
    let dim_schema = Schema::from_pairs(&[("cat", DataType::Str), ("tax", DataType::Float)]);
    let mut d = Table::new("d", dim_schema);
    for i in 0..6i64 {
        d.append(vec![Value::Str(format!("cat{i:02}")), Value::Float(i as f64 * 0.125)]);
    }
    let dim = Arc::new(d);

    let pred = col("s.cat").eq(lit("cat07"));
    let aggs =
        || [AggSpec::count_star("n"), AggSpec::on(AggFunc::Sum, "s.amt", "revenue")];

    let scalar_filter: A09Run = {
        let (t, p) = (Arc::clone(&sales), pred.clone());
        Box::new(move || {
            let c = a09_ctx();
            let scan: BoxOp = Box::new(TableScanOp::new(Arc::clone(&t), c.clone()));
            let mut f = FilterOp::new(scan, &p, c.clone()).expect("filter");
            (collect(&mut f), c)
        })
    };
    let batch_filter: A09Run = {
        let (t, p) = (Arc::clone(&sales), pred.clone());
        Box::new(move || {
            let c = a09_ctx();
            let scan: BoxBatchOp = Box::new(BatchScanOp::new(Arc::clone(&t), c.clone()));
            let f: BoxBatchOp = Box::new(BatchFilterOp::new(scan, &p, c.clone()).expect("filter"));
            let mut rows = BatchRowsOp::boxed(f, c.clone());
            (collect(rows.as_mut()), c)
        })
    };
    let scalar_join: A09Run = {
        let (t, d) = (Arc::clone(&sales), Arc::clone(&dim));
        Box::new(move || {
            let c = a09_ctx();
            let left: BoxOp = Box::new(TableScanOp::new(Arc::clone(&t), c.clone()));
            let right: BoxOp = Box::new(TableScanOp::new(Arc::clone(&d), c.clone()));
            let mut j = HashJoinOp::new(left, right, &["s.cat"], &["d.cat"], c.clone())
                .expect("join");
            (collect(&mut j), c)
        })
    };
    let batch_join: A09Run = {
        let (t, d) = (Arc::clone(&sales), Arc::clone(&dim));
        Box::new(move || {
            let c = a09_ctx();
            let dict = Arc::new(StringDict::new());
            let left: BoxBatchOp = Box::new(BatchScanOp::with_dict(
                Arc::clone(&t),
                0,
                t.nrows(),
                Arc::clone(&dict),
                c.clone(),
            ));
            let right: BoxBatchOp =
                Box::new(BatchScanOp::with_dict(Arc::clone(&d), 0, d.nrows(), dict, c.clone()));
            let j: BoxBatchOp =
                Box::new(BatchHashJoinOp::new(left, right, "s.cat", "d.cat", c.clone())
                    .expect("join"));
            let mut rows = BatchRowsOp::boxed(j, c.clone());
            (collect(rows.as_mut()), c)
        })
    };
    let scalar_agg: A09Run = {
        let t = Arc::clone(&sales);
        Box::new(move || {
            let c = a09_ctx();
            let scan: BoxOp = Box::new(TableScanOp::new(Arc::clone(&t), c.clone()));
            let mut a = HashAggOp::new(scan, &["s.cat"], &aggs(), c.clone()).expect("agg");
            (collect(&mut a), c)
        })
    };
    let batch_agg: A09Run = {
        let t = Arc::clone(&sales);
        Box::new(move || {
            let c = a09_ctx();
            let scan: BoxBatchOp = Box::new(BatchScanOp::new(Arc::clone(&t), c.clone()));
            let mut a = BatchHashAggOp::new(scan, &["s.cat"], &aggs(), c.clone()).expect("agg");
            (collect(&mut a), c)
        })
    };
    let pipelines = [
        ("filter", scalar_filter, batch_filter),
        ("join", scalar_join, batch_join),
        ("agg", scalar_agg, batch_agg),
    ];

    let mut t_out = ReportTable::new(&["pipeline", "rows", "scalar ms", "batch ms", "speedup"]);
    let mut charged = Vec::new();
    let mut speedups = Vec::new();
    for (name, scalar_run, batch_run) in &pipelines {
        let (s_best, s_rows, s_ctx) = a09_time(reps, scalar_run.as_ref());
        let (b_best, b_rows, b_ctx) = a09_time(reps, batch_run.as_ref());
        // The speedup only counts if the twins stay twins: identical rows,
        // identical charged-cost bits.
        assert_eq!(s_rows, b_rows, "{name}: twin row streams diverge");
        let (sb, bb) = (s_ctx.clock.breakdown(), b_ctx.clock.breakdown());
        assert_eq!(sb.total().to_bits(), bb.total().to_bits(), "{name}: twin charges diverge");
        let speedup = s_best / b_best;
        speedups.push(speedup);
        charged.push(sb.total());
        t_out.row(&[
            (*name).into(),
            format!("{}", s_rows.len()),
            format!("{:.2}", s_best * 1e3),
            format!("{:.2}", b_best * 1e3),
            format!("{speedup:.2}x"),
        ]);
        h.gauge(&format!("batch.speedup_{name}"), speedup);
    }

    // One full batch join runs on the harness context so its operator spans
    // (and deterministic charged costs) land in the run report.
    {
        let c = h.ctx().clone();
        let dict = Arc::new(StringDict::new());
        let left: BoxBatchOp = Box::new(BatchScanOp::with_dict(
            Arc::clone(&sales),
            0,
            sales.nrows(),
            Arc::clone(&dict),
            c.clone(),
        ));
        let right: BoxBatchOp =
            Box::new(BatchScanOp::with_dict(Arc::clone(&dim), 0, dim.nrows(), dict, c.clone()));
        let j: BoxBatchOp = Box::new(
            BatchHashJoinOp::new(left, right, "s.cat", "d.cat", c.clone()).expect("join"),
        );
        let mut rows = BatchRowsOp::boxed(j, c.clone());
        let _ = collect(rows.as_mut());
    }

    // Paper samples stay deterministic: charged-cost gaps across the sweep
    // (smoothness) and per-pipeline (chosen, ideal) pairs — twins charge
    // identically, so env divergence is zero and the wall-clock win is told
    // entirely by the speedup gauge.
    let floor = charged.iter().copied().fold(f64::INFINITY, f64::min);
    h.perf_gaps(&charged.iter().map(|c| c - floor).collect::<Vec<_>>());
    h.env_costs(&charged.iter().map(|c| (*c, *c)).collect::<Vec<_>>());
    let raw = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    h.gauge(samples::BATCH_SPEEDUP, raw.min(A09_SPEEDUP_CAP));

    format!(
        "A09 — batch-vs-scalar speedup ({n} rows, best of {reps} runs; worst \
         pipeline {raw:.2}x, gauge capped at {A09_SPEEDUP_CAP})\n\n{t_out}\n\
         Expected shape: every pipeline clears 2x — the batch twins charge the \
         same cost-clock totals (asserted bit-for-bit above) but replace \
         per-row virtual dispatch, `Row` materialization and String compares \
         with tight loops over typed columns and u32 dictionary codes. The \
         filter and join qualify a minority of rows, so the batch path \
         materializes only survivors while the scalar path builds every \
         scanned row; the aggregate gains from u32 group codes replacing \
         String keys. Speedups shrink toward 1x as output cardinality \
         approaches input cardinality (both paths then pay the same per-row \
         materialization), which is why the sweep pins selective shapes.\n",
    )
}

/// A03 — eddy lottery decay: adaptation speed vs stability.
pub fn a03_eddy_decay(fast: bool) -> String {
    harness::run("a03_eddy_decay", fast, a03_body)
}

fn a03_body(h: &mut Harness) -> String {
    let n: i64 = if h.fast() { 20_000 } else { 100_000 };
    let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            if i < n / 2 {
                vec![Value::Int(i % 40), Value::Int(200 + i % 800)]
            } else {
                vec![Value::Int(200 + i % 800), Value::Int(i % 40)]
            }
        })
        .collect();
    struct VecOp {
        schema: Schema,
        rows: std::vec::IntoIter<Row>,
    }
    impl Operator for VecOp {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn next(&mut self) -> Option<Row> {
            self.rows.next()
        }
    }
    let preds = vec![col("a").lt(lit(100i64)), col("b").lt(lit(100i64))];
    let decays = [0.9, 0.99, 0.999, 1.0];
    let lottery_seed = h.note_seed("eddy-lottery", 103);
    h.config("decays", decays.len());
    let mut t = ReportTable::new(&["decay", "evaluations", "per tuple"]);
    let mut evals = Vec::new();
    for (i, decay) in decays.into_iter().enumerate() {
        // The first (fastest-forgetting) decay runs on the harness context so
        // its `eddy.reroute` events land in the run report.
        let ctx = if i == 0 { h.ctx().clone() } else { ExecContext::unbounded() };
        let src = Box::new(VecOp { schema: schema.clone(), rows: rows.clone().into_iter() });
        let mut eddy = EddyFilterOp::new(
            src,
            &preds,
            RoutingPolicy::Lottery { decay },
            lottery_seed,
            ctx,
        )
        .expect("eddy");
        let _ = collect(&mut eddy);
        evals.push(eddy.evaluations as f64);
        t.row(&[
            format!("{decay}"),
            format!("{}", eddy.evaluations),
            format!("{:.3}", eddy.evaluations as f64 / n as f64),
        ]);
    }
    let floor = evals.iter().cloned().fold(f64::INFINITY, f64::min);
    h.perf_gaps(&evals.iter().map(|e| e - floor).collect::<Vec<_>>());
    h.env_costs(&evals.iter().map(|e| (*e, floor)).collect::<Vec<_>>());
    format!(
        "A03 — eddy lottery-decay ablation (selectivity flip at tuple {})\n\n{t}\n\
         Expected shape: decay < 1 forgets the stale phase and re-adapts \
         after the flip; decay = 1.0 (infinite memory) averages the two \
         phases and re-adapts slowly (more evaluations). Very small decay \
         adds exploration jitter without further benefit.\n",
        n / 2,
    )
}
