//! E12–E15: physical design and resource/workload management.

use super::harness::{self, Harness};
use rqp::exec::ExecContext;
use rqp::expr::col;
use rqp::metrics::{ReportTable, Summary};
use rqp::opt::{plan, PlannerConfig};
use rqp::physical::advisor::{advise, AdvisorConfig};
use rqp::physical::evaluate_advice;
use rqp::stats::{StatsEstimator, TableStatsRegistry};
use rqp::workload::manager::{fluctuating_memory_test_with, fluctuating_parallelism_test};
use rqp::workload::{tpch::TpchParams, Job, OltpSimulator, TpchDb, WorkloadManager};
use rqp::QuerySpec;
use std::rc::Rc;

/// E12 — index-advisor robustness under workload drift: plain vs
/// robustness-aware advisor.
pub fn e12_advisor(fast: bool) -> String {
    harness::run("e12_advisor", fast, e12_body)
}

fn e12_body(h: &mut Harness) -> String {
    let li = if h.fast() { 3000 } else { 10_000 };
    let db = TpchDb::build(
        TpchParams { lineitem_rows: li, with_indexes: false, ..Default::default() },
        h.note_seed("db", 12),
    );
    let reg = TableStatsRegistry::analyze_catalog(&db.catalog, 16);
    let est = StatsEstimator::new(Rc::new(reg.clone()));

    let narrow = |lo0: i64| -> Vec<QuerySpec> {
        (0..4)
            .map(|i| {
                QuerySpec::new().table("lineitem").filter(
                    "lineitem",
                    col("lineitem.shipdate").between(lo0 + i * 60, lo0 + i * 60 + 3),
                )
            })
            .collect()
    };
    let training = narrow(100);
    // W1: same pattern, shifted constants. W2: wider ranges. W3: different
    // column entirely.
    let w1 = narrow(1200);
    let w2: Vec<QuerySpec> = (0..4)
        .map(|i| {
            QuerySpec::new().table("lineitem").filter(
                "lineitem",
                col("lineitem.shipdate").between(i * 300, i * 300 + 1200),
            )
        })
        .collect();
    let w3: Vec<QuerySpec> = (0..4)
        .map(|i| {
            QuerySpec::new().table("lineitem").filter(
                "lineitem",
                col("lineitem.quantity").between(i * 2, i * 2 + 1),
            )
        })
        .collect();
    let drifted = vec![w1, w2, w3];

    let mut t = ReportTable::new(&[
        "advisor", "indexes", "T0", "T1 (shifted)", "T2 (widened)", "T3 (other col)",
        "max |Ti−T0|/T0",
    ]);
    let mut env_pairs = Vec::new();
    for (name, cfg) in [
        ("classic", AdvisorConfig::default()),
        ("robust (Risk+Generality)", AdvisorConfig::robust(3)),
    ] {
        let advice = advise(&db.catalog, &reg, &training, cfg).expect("advise");
        let report =
            evaluate_advice(&db.catalog, &est, &advice, &training, &drifted).expect("evaluate");
        // Each drifted workload is an environment; the training-time cost is
        // the ideal the advisor promised.
        env_pairs.extend(report.drifted.iter().map(|&ti| (ti.max(report.t0), report.t0)));
        t.row(&[
            name.into(),
            format!(
                "{:?}",
                advice
                    .indexes
                    .iter()
                    .map(|c| format!("{}.{}", c.table, c.column))
                    .collect::<Vec<_>>()
            ),
            format!("{:.0}", report.t0),
            format!("{:.0}", report.drifted[0]),
            format!("{:.0}", report.drifted[1]),
            format!("{:.0}", report.drifted[2]),
            format!("{:.2}", report.max_relative_difference()),
        ]);
    }
    h.env_costs(&env_pairs);
    format!(
        "E12 — advisor robustness: tune on W0, evaluate on drifted W1..W3\n\n{t}\n\
         Expected shape: pattern-preserving drift (T1) stays near T0; \
         hostile drifts (T2, T3) define the robustness parameter; the \
         risk-aware advisor should never be more fragile than the classic one.\n",
    )
}

/// E13 — FMT: fluctuating memory between the memUBL/memLBL baselines.
pub fn e13_fmt(fast: bool) -> String {
    harness::run("e13_fmt", fast, e13_body)
}

fn e13_body(h: &mut Harness) -> String {
    let fast = h.fast();
    let li = if fast { 3000 } else { 10_000 };
    // No indexes: index scans read base pages directly (they are not paged),
    // so an index plan chosen at one memory level would bypass the pool's
    // refault charges and break the FMT ordering. With table scans only,
    // every access is pool-accounted and cost stays monotone in memory.
    let db = TpchDb::build(
        TpchParams { lineitem_rows: li, with_indexes: false, ..Default::default() },
        h.note_seed("db", 13),
    );
    // The whole test runs behind a page budget of half of lineitem: every
    // scan pins through the buffer pool on data larger than memory, which
    // is exactly the regime the FMT baselines are about. Before every
    // measured run a fresh (cold) pool is attached, so memUBL, memLBL, and
    // the schedule all start from identical residency: first touches are
    // free cold loads, and only plans that *rescan* evicted pages — the
    // memory-starved ones — pay refault charges. The FMT bound stays a
    // statement about memory, not pool history.
    let rpp = rqp::common::CostModelParams::default().rows_per_page;
    let data_pages = (li as f64 / rpp).ceil() as usize;
    let page_budget = (data_pages / 2).max(4);
    h.config("page_budget_pages", page_budget);
    let reset_pool = || {
        db.catalog.attach_pool(&rqp::storage::BufferPool::new(page_budget));
    };
    let reg = Rc::new(TableStatsRegistry::analyze_catalog(&db.catalog, 16));
    let est = StatsEstimator::new(reg);
    let mut rng = h.seeded("analytic-mix", 13);
    let specs = db.analytic_mix(if fast { 6 } else { 12 }, &mut rng);

    let mut t = ReportTable::new(&["schedule", "total cost", "position (0=UBL best, 1=LBL)"]);
    let schedules: Vec<(&str, Vec<f64>)> = vec![
        ("step-down (50k→5k→500→150)", vec![50_000.0, 5_000.0, 500.0, 150.0]),
        ("oscillating (150↔50k)", vec![150.0, 50_000.0]),
        ("random-ish", vec![200.0, 20_000.0, 800.0, 50_000.0, 150.0]),
    ];
    let mut header = String::new();
    let mut env_pairs = Vec::new();
    for (name, schedule) in &schedules {
        let report = fluctuating_memory_test_with(
            &db.catalog,
            &est,
            &specs,
            schedule,
            1e9,
            150.0,
            &reset_pool,
        )
        .expect("fmt");
        if header.is_empty() {
            header = format!(
                "memUBL (all memory): {:.0}   memLBL (min memory): {:.0}",
                report.mem_ubl_cost, report.mem_lbl_cost
            );
        }
        assert!(
            report.within_bounds(),
            "robustness bound violated: ubl {} <= sched {} <= lbl {} for {name}",
            report.mem_ubl_cost,
            report.scheduled_cost(),
            report.mem_lbl_cost
        );
        // Each memory schedule is an environment; memUBL is the ideal.
        env_pairs.push((report.scheduled_cost(), report.mem_ubl_cost));
        t.row(&[
            (*name).into(),
            format!("{:.0}", report.scheduled_cost()),
            format!("{:.2}", report.position()),
        ]);
    }
    h.env_costs(&env_pairs);
    h.config("queries", specs.len());
    format!(
        "E13 — FMT: fluctuating memory test ({} queries)\n\n{header}\n\n{t}\n\
         Expected shape: every schedule lands between the baselines — the \
         engine degrades smoothly with memory, no cliff outside [UBL, LBL].\n",
        specs.len()
    )
}

/// E14 — FPT: a competing query steals processing share from Qi.
pub fn e14_fpt(fast: bool) -> String {
    harness::run("e14_fpt", fast, e14_body)
}

fn e14_body(h: &mut Harness) -> String {
    let li = if h.fast() { 3000 } else { 10_000 };
    let db = TpchDb::build(
        TpchParams { lineitem_rows: li, ..Default::default() },
        h.note_seed("db", 14),
    );
    // Demands are measured behind a page budget of half of lineitem, so
    // both queries really execute on data larger than memory (refaults
    // charged on the cost clock) before contention is simulated.
    let data_pages = (li as f64
        / rqp::common::CostModelParams::default().rows_per_page)
        .ceil() as usize;
    let page_budget = (data_pages / 2).max(4);
    let pool = rqp::storage::BufferPool::new(page_budget);
    db.catalog.attach_pool(&pool);
    h.config("page_budget_pages", page_budget);
    let reg = Rc::new(TableStatsRegistry::analyze_catalog(&db.catalog, 16));
    let est = StatsEstimator::new(reg);
    // Qi and Qm demands measured by really executing.
    let demand = |spec: &QuerySpec| -> f64 {
        let p = plan(spec, &db.catalog, &est, PlannerConfig::default()).expect("plan");
        let ctx = ExecContext::unbounded();
        p.build(&db.catalog, &ctx, None).expect("build").run();
        ctx.clock.now()
    };
    let qi = demand(&db.q3(1, 1200));
    let qm = demand(&db.q5(0, 24, 100));
    let weights = [0.5, 1.0, 2.0, 4.0, 8.0];
    let report = fluctuating_parallelism_test(qi, qm, qi * 0.002, &weights, 10.0);
    let mut t = ReportTable::new(&["Qm weight (processes)", "Qi response", "slowdown vs solo"]);
    for ((w, resp), slow) in report.contended.iter().zip(report.slowdowns()) {
        t.row(&[format!("{w}"), format!("{resp:.1}"), format!("{slow:.2}x")]);
    }
    // Each contention level is an environment; solo response is the ideal.
    h.env_costs(
        &report
            .contended
            .iter()
            .map(|(_, resp)| (*resp, report.solo_response))
            .collect::<Vec<_>>(),
    );
    h.perf_gaps(
        &report
            .contended
            .iter()
            .map(|(_, resp)| resp - report.solo_response)
            .collect::<Vec<_>>(),
    );
    format!(
        "E14 — FPT: fluctuating degree of parallelism (Qi demand {qi:.0}, \
         Qm demand {qm:.0})\n\nsolo response: {:.1}\n\n{t}\n\
         Expected shape: slowdown grows smoothly (hyperbolically) with the \
         competitor's share — no collapse, which is the robustness claim.\n",
        report.solo_response
    )
}

/// E15 — mixed OLTP/OLAP (TPC-CH-like) with and without workload management.
pub fn e15_mixed(fast: bool) -> String {
    harness::run("e15_mixed", fast, e15_body)
}

fn e15_body(h: &mut Harness) -> String {
    let fast = h.fast();
    let li = if fast { 4000 } else { 16_000 };
    let db = TpchDb::build(
        TpchParams { lineitem_rows: li, ..Default::default() },
        h.note_seed("db", 15),
    );
    let est = StatsEstimator::new(Rc::new(TableStatsRegistry::analyze_catalog(
        &db.catalog,
        16,
    )));
    let mut oltp = OltpSimulator::new(
        db.catalog.clone(),
        ExecContext::unbounded(),
        h.note_seed("oltp", 15),
    );
    let txn_demand = oltp.run_stream(if fast { 40 } else { 100 });
    let mut rng = h.seeded("analytic-mix", 15);
    let olap_demands: Vec<f64> = db
        .analytic_mix(4, &mut rng)
        .iter()
        .map(|q| {
            let p = plan(q, &db.catalog, &est, PlannerConfig::default()).expect("plan");
            let ctx = ExecContext::unbounded();
            p.build(&db.catalog, &ctx, None).expect("build").run();
            ctx.clock.now()
        })
        .collect();

    let capacity = 4.0;
    let n_txn = if fast { 100 } else { 300 };
    let make_jobs = |txn_prio: u8, olap_prio: u8| -> Vec<Job> {
        let mut jobs: Vec<Job> = (0..n_txn)
            .map(|i| Job {
                id: i,
                arrival: i as f64 * 3.0,
                demand: txn_demand,
                priority: txn_prio,
                weight: 1.0,
            })
            .collect();
        for (k, &d) in olap_demands.iter().enumerate() {
            jobs.push(Job {
                id: 10_000 + k,
                arrival: 15.0 + k as f64 * 120.0,
                demand: d,
                priority: olap_prio,
                weight: 8.0,
            });
        }
        jobs
    };
    let mut t = ReportTable::new(&[
        "policy", "txn mean", "txn p-max", "olap mean", "makespan",
    ]);
    let mut rows_out: Vec<(String, f64)> = Vec::new();
    for (name, mpl, tp, op) in [
        ("free-for-all", 64usize, 1u8, 1u8),
        ("MPL gate (2)", 2, 1, 1),
        ("MPL + txn priority", 2, 0, 2),
    ] {
        let out = WorkloadManager::new(mpl, capacity).simulate(&make_jobs(tp, op));
        let txn: Vec<f64> = out
            .jobs
            .iter()
            .filter(|j| j.id < 10_000)
            .map(|j| j.response)
            .collect();
        let olap: Vec<f64> = out
            .jobs
            .iter()
            .filter(|j| j.id >= 10_000)
            .map(|j| j.response)
            .collect();
        let ts = Summary::of(&txn);
        rows_out.push((name.to_owned(), ts.mean));
        t.row(&[
            name.into(),
            format!("{:.1}", ts.mean),
            format!("{:.1}", ts.max),
            format!("{:.1}", Summary::of(&olap).mean),
            format!("{:.1}", out.makespan),
        ]);
    }
    // Each management policy is an environment for transaction latency; the
    // best policy's mean is the ideal.
    let best_mean = rows_out.iter().map(|(_, m)| *m).fold(f64::INFINITY, f64::min);
    h.env_costs(&rows_out.iter().map(|(_, m)| (*m, best_mean)).collect::<Vec<_>>());
    format!(
        "E15 — mixed OLTP/OLAP workload (txn demand {txn_demand:.1}, OLAP \
         demands {:?})\n\n{t}\n\
         Expected shape: transaction latency collapses under unmanaged \
         analytic competition and is restored by the MPL gate + priorities \
         at modest OLAP cost.\n",
        olap_demands.iter().map(|d| d.round()).collect::<Vec<_>>()
    )
}

/// A10 — paged degradation: page-budget fraction × page-fault-rate sweep
/// over the buffer pool.
pub fn a10_paged_degradation(fast: bool) -> String {
    harness::run("a10_paged_degradation", fast, a10_body)
}

fn a10_body(h: &mut Harness) -> String {
    use rand::Rng;
    use rqp::common::chaos::{ChaosConfig, ChaosPolicy};
    use rqp::common::rng::child_seed;
    use rqp::common::CostModelParams;
    use rqp::exec::exchange::{pipeline, ExchangeOp, Partitioning};
    use rqp::exec::sort::SortOrder;
    use rqp::exec::{collect, SortOp, TableScanOp};
    use rqp::storage::BufferPool;
    use rqp::telemetry::scoreboard::samples;
    use rqp::{DataType, Schema, Table, Value};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    let n: i64 = if h.fast() { 8_000 } else { 30_000 };
    let schema = Schema::from_pairs(&[("id", DataType::Int), ("key", DataType::Int)]);
    let mut t = Table::new("paged", schema);
    let mut rng = h.seeded("rows", 110);
    for i in 0..n {
        t.append(vec![Value::Int(i), Value::Int(rng.gen_range(0..1_000_000i64))]);
    }
    let table = Arc::new(t);
    let data_pages =
        (n as f64 / CostModelParams::default().rows_per_page).ceil() as usize;

    let fractions = [1.0, 0.5, 0.25];
    let fault_rates = [0.0, 0.1, 0.3];
    let workers = 4usize;
    let queries = if h.fast() { 4 } else { 6 };
    let base_seed = h.note_seed("chaos", 1110);
    h.config("rows", n);
    h.config("data_pages", data_pages as i64);
    h.config("workers", workers);
    h.config("fractions", fractions.len());
    h.config("fault_rates", fault_rates.len());
    h.config("queries_per_cell", queries);

    // One query: a paged scan (every page read goes through the pool, where
    // chaos injects transient page-I/O faults), hash repartition, one sort
    // per worker, gather. Returns the query's cost, or None if it died —
    // page retries exhausted or the page budget exhausted, both of which
    // must surface as typed errors, never a raw panic.
    let run_query = |policy: ChaosPolicy, headline: Option<&ExecContext>| {
        let ctx = headline.cloned().unwrap_or_else(ExecContext::unbounded);
        let ctx = ctx.with_chaos(policy);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let scan = Box::new(TableScanOp::new(Arc::clone(&table), ctx.clone()));
            let build = pipeline(|op, wctx| {
                Box::new(
                    SortOp::new(op, &[("paged.key", SortOrder::Asc)], wctx.clone())
                        .expect("sort"),
                )
            });
            let spec = Partitioning::Hash { keys: vec![1], skew: 0.0 };
            ExchangeOp::repartition(scan, spec, workers, build, ctx.clone())
                .map(|mut ex| collect(&mut ex).len())
        }));
        match result {
            Ok(Ok(rows)) => {
                assert_eq!(rows as i64, n, "completed query must not lose rows");
                Some(ctx.clock.now())
            }
            // A typed error (budget exhausted, page retries exhausted) is a
            // failed-but-graceful query; count it against completion.
            Ok(Err(_)) => None,
            Err(payload) => {
                if payload.downcast_ref::<rqp::common::RqpError>().is_none() {
                    std::panic::resume_unwind(payload);
                }
                None
            }
        }
    };

    let mut t_out = ReportTable::new(&[
        "page budget", "fault rate", "mean cost", "refaults", "io retries", "completed",
    ]);
    let mut mean_costs = vec![vec![f64::NAN; fractions.len()]; fault_rates.len()];
    let mut completed_all = 0usize;
    let mut total_all = 0usize;
    let mut headline_cost = f64::NAN;
    for (ri, &rate) in fault_rates.iter().enumerate() {
        for (fi, &fraction) in fractions.iter().enumerate() {
            let budget = ((data_pages as f64 * fraction).round() as usize).max(1);
            // A fresh pool per cell: attach_pool replaces the table's pool,
            // so cells never inherit residency (or stats) from each other.
            let pool = BufferPool::new(budget);
            table.attach_pool(&pool);
            let mut completed = 0usize;
            let mut costs = Vec::new();
            for q in 0..queries {
                // Per-query chaos streams, fully determined by the base
                // seed: completion is a real fraction, not all-or-nothing.
                let seed = child_seed(base_seed, &format!("r{ri}f{fi}q{q}"));
                let policy = if rate > 0.0 {
                    ChaosPolicy::new(ChaosConfig {
                        seed,
                        page_fault_rate: rate,
                        page_max_retries: 8,
                        ..ChaosConfig::off()
                    })
                } else {
                    ChaosPolicy::off()
                };
                // The headline cell (tightest budget, worst faults, first
                // query) runs on the harness context so a pager-annotated
                // trace lands in the report.
                let headline =
                    ri + 1 == fault_rates.len() && fi + 1 == fractions.len() && q == 0;
                let cost = run_query(policy, if headline { Some(h.ctx()) } else { None });
                total_all += 1;
                if let Some(c) = cost {
                    completed += 1;
                    completed_all += 1;
                    costs.push(c);
                    if headline {
                        headline_cost = c;
                    }
                }
            }
            assert_eq!(pool.pins(), 0, "every cell must end with all pins released");
            let stats = pool.stats();
            let mean = costs.iter().sum::<f64>() / costs.len().max(1) as f64;
            mean_costs[ri][fi] = mean;
            t_out.row(&[
                format!("{budget} ({fraction}x)"),
                format!("{rate}"),
                format!("{mean:.0}"),
                format!("{}", stats.refaults),
                format!("{}", stats.io_retries),
                format!("{completed}/{queries}"),
            ]);
        }
    }

    // Degradation smoothness: the worst mean-cost ratio between *adjacent*
    // page-budget fractions at any fault rate. A robust pager halves its
    // budget and pays incrementally (refaults charge one random page each);
    // a cliff means some budget suddenly falls off the in-memory path.
    let mut cliff = 1.0f64;
    for row in &mean_costs {
        for w in row.windows(2) {
            if w[0].is_finite() && w[1].is_finite() && w[0] > 0.0 {
                cliff = cliff.max(w[1] / w[0]);
            }
        }
    }
    let completion = completed_all as f64 / total_all.max(1) as f64;
    assert!(
        cliff <= 2.5,
        "paged degradation cliff {cliff:.2}x exceeds the 2.5x smoothness bound"
    );
    assert_eq!(
        completed_all, total_all,
        "every query must complete: transient page faults are retried and \
         the page budget is never exhausted by a single scan"
    );

    // Paper samples: per-cell mean costs as a sweep (smoothness), the
    // fault-free cost at the same budget as each cell's ideal (variability),
    // and the headline worst-cell cost vs the sweep's floor (M3).
    let floor = mean_costs
        .iter()
        .flatten()
        .copied()
        .filter(|c| c.is_finite())
        .fold(f64::INFINITY, f64::min);
    let gaps: Vec<f64> = mean_costs.iter().flatten().map(|c| c - floor).collect();
    h.perf_gaps(&gaps);
    let pairs: Vec<(f64, f64)> = mean_costs
        .iter()
        .flat_map(|row| row.iter().zip(&mean_costs[0]).map(|(&c, &ideal)| (c, ideal)))
        .collect();
    h.env_costs(&pairs);
    h.m3(headline_cost, floor);
    h.gauge(samples::PAGED_CLIFF, cliff);
    h.gauge(samples::PAGED_COMPLETION, completion);
    format!(
        "A10 — paged degradation ({n} rows = {data_pages} pages, {workers} \
         workers, {queries} queries/cell, paged scan + hash repartition + \
         per-worker sort)\n\n{t_out}\n\
         degradation cliff: {cliff:.2}x (bound 2.5)   completion: \
         {completion:.3} (floor 1.0)\n\n\
         Expected shape: shrinking the page budget below the data size \
         costs one random-page charge per refault — cost grows smoothly, \
         no cliff — and injected page-I/O faults cost a charged re-read \
         per retry but never the query: the pool degrades gracefully on \
         both axes at once.\n",
    )
}

/// A05 — resource robustness: memory-fraction × fault-rate chaos sweep.
pub fn a05_resource_robustness(fast: bool) -> String {
    harness::run("a05_resource_robustness", fast, a05_body)
}

fn a05_body(h: &mut Harness) -> String {
    use rand::Rng;
    use rqp::common::chaos::{ChaosConfig, ChaosPolicy};
    use rqp::common::rng::child_seed;
    use rqp::exec::exchange::{pipeline, ExchangeOp, Partitioning};
    use rqp::exec::sort::SortOrder;
    use rqp::exec::{collect, SortOp, TableScanOp};
    use rqp::telemetry::scoreboard::samples;
    use rqp::{DataType, Schema, Table, Value};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    let n: i64 = if h.fast() { 8_000 } else { 30_000 };
    let schema = Schema::from_pairs(&[("id", DataType::Int), ("key", DataType::Int)]);
    let mut t = Table::new("chaos", schema);
    let mut rng = h.seeded("rows", 105);
    for i in 0..n {
        t.append(vec![Value::Int(i), Value::Int(rng.gen_range(0..1_000_000i64))]);
    }
    let table = Arc::new(t);

    let fractions = [1.0, 0.5, 0.25, 0.125, 0.0625];
    let fault_rates = [0.0, 0.1, 0.3];
    let workers = 4usize;
    let queries = if h.fast() { 4 } else { 8 };
    let base_seed = h.note_seed("chaos", 1105);
    h.config("rows", n);
    h.config("workers", workers);
    h.config("fractions", fractions.len());
    h.config("fault_rates", fault_rates.len());
    h.config("queries_per_cell", queries);

    // One query: scan (where scan faults and memory shocks inject, on the
    // coordinator so the budget trajectory is schedule-independent), hash
    // repartition, one memory-hungry sort per worker (where panics and
    // stalls inject), gather. Returns the query's cost, or None if it died
    // beyond recovery (worker retries or scan retries exhausted).
    let run_query = |budget: f64, policy: ChaosPolicy, headline: Option<&ExecContext>| {
        let ctx = headline
            .cloned()
            .unwrap_or_else(ExecContext::unbounded);
        ctx.memory.set_budget(budget);
        let ctx = ctx.with_chaos(policy);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let scan = Box::new(TableScanOp::new(Arc::clone(&table), ctx.clone()));
            let build = pipeline(|op, wctx| {
                Box::new(
                    SortOp::new(op, &[("chaos.key", SortOrder::Asc)], wctx.clone())
                        .expect("sort"),
                )
            });
            let spec = Partitioning::Hash { keys: vec![1], skew: 0.0 };
            ExchangeOp::repartition(scan, spec, workers, build, ctx.clone())
                .map(|mut ex| collect(&mut ex).len())
        }));
        match result {
            Ok(Ok(rows)) => {
                assert_eq!(rows as i64, n, "completed query must not lose rows");
                Some(ctx.clock.now())
            }
            // A typed error (worker retries exhausted) is a failed-but-
            // graceful query; count it against the recovery rate.
            Ok(Err(_)) => None,
            Err(payload) => {
                // Only chaos-injected panics (scan retries exhausted carry a
                // typed RqpError payload) may be swallowed as query loss.
                if payload.downcast_ref::<rqp::common::RqpError>().is_none() {
                    std::panic::resume_unwind(payload);
                }
                None
            }
        }
    };

    let chaos_cfg = |rate: f64, seed: u64| ChaosConfig {
        seed,
        scan_fault_rate: rate * 0.5,
        scan_max_retries: 8,
        shock_rate: rate * 0.1,
        worker_panic_rate: rate,
        worker_stall_rate: rate,
        worker_stall_pages: 16.0,
        worker_max_retries: 4,
        ..ChaosConfig::off()
    };

    let mut t_out = ReportTable::new(&["memory", "fault rate", "mean cost", "completed"]);
    let mut mean_costs = vec![vec![f64::NAN; fractions.len()]; fault_rates.len()];
    let mut injected_total = 0usize;
    let mut injected_completed = 0usize;
    let mut headline_cost = f64::NAN;
    for (ri, &rate) in fault_rates.iter().enumerate() {
        for (fi, &fraction) in fractions.iter().enumerate() {
            let budget = n as f64 * fraction;
            let mut completed = 0usize;
            let mut costs = Vec::new();
            for q in 0..queries {
                // Per-query chaos streams: each query sees its own fault
                // outcomes, so the completion rate is a real fraction, not
                // all-or-nothing — yet fully determined by the base seed.
                let seed = child_seed(base_seed, &format!("r{ri}f{fi}q{q}"));
                let policy = if rate > 0.0 {
                    ChaosPolicy::new(chaos_cfg(rate, seed))
                } else {
                    ChaosPolicy::off()
                };
                // The headline cell (least memory, worst faults, first
                // query) runs on the harness context so a chaos-annotated
                // trace lands in the report.
                let headline = ri + 1 == fault_rates.len() && fi + 1 == fractions.len() && q == 0;
                let cost = run_query(budget, policy, if headline { Some(h.ctx()) } else { None });
                if rate > 0.0 {
                    injected_total += 1;
                }
                if let Some(c) = cost {
                    completed += 1;
                    costs.push(c);
                    if rate > 0.0 {
                        injected_completed += 1;
                    }
                    if headline {
                        headline_cost = c;
                    }
                }
            }
            let mean = costs.iter().sum::<f64>() / costs.len().max(1) as f64;
            mean_costs[ri][fi] = mean;
            t_out.row(&[
                format!("{fraction}x"),
                format!("{rate}"),
                format!("{mean:.0}"),
                format!("{completed}/{queries}"),
            ]);
        }
    }

    // Degradation smoothness: the worst cost ratio between *adjacent* memory
    // fractions at any fault rate. A robust engine halves its memory and
    // pays incrementally (spill grows smoothly); a cliff means some fraction
    // suddenly falls off the in-memory path.
    let mut cliff = 1.0f64;
    for row in &mean_costs {
        for w in row.windows(2) {
            if w[0].is_finite() && w[1].is_finite() && w[0] > 0.0 {
                cliff = cliff.max(w[1] / w[0]);
            }
        }
    }
    let recovery = injected_completed as f64 / injected_total.max(1) as f64;
    assert!(
        cliff <= 2.0,
        "degradation cliff {cliff:.2}x exceeds the 2x smoothness bound"
    );
    assert!(
        recovery >= 0.95,
        "recovery rate {recovery:.3} below the 0.95 floor"
    );

    // Paper samples: per-cell mean costs as a sweep (smoothness), fault-free
    // cost at the same memory as each cell's ideal (variability), and the
    // headline worst-cell cost vs the sweep's floor (M3).
    let floor = mean_costs
        .iter()
        .flatten()
        .copied()
        .filter(|c| c.is_finite())
        .fold(f64::INFINITY, f64::min);
    let gaps: Vec<f64> = mean_costs.iter().flatten().map(|c| c - floor).collect();
    h.perf_gaps(&gaps);
    let pairs: Vec<(f64, f64)> = mean_costs
        .iter()
        .flat_map(|row| row.iter().zip(&mean_costs[0]).map(|(&c, &ideal)| (c, ideal)))
        .collect();
    h.env_costs(&pairs);
    h.m3(headline_cost, floor);
    h.gauge(samples::DEGRADATION_CLIFF, cliff);
    h.gauge(samples::RECOVERY_RATE, recovery);
    format!(
        "A05 — resource robustness ({n} rows, {workers} workers, {queries} \
         queries/cell, hash repartition + per-worker sort)\n\n{t_out}\n\
         degradation cliff: {cliff:.2}x (bound 2.0)   recovery rate: \
         {recovery:.3} (floor 0.95)\n\n\
         Expected shape: cost grows smoothly as memory shrinks (sorts shed \
         workspace and spill incrementally instead of falling off a cliff), \
         and injected faults — transient scan errors, memory shocks, worker \
         panics and stalls — cost retries and backoff but almost never the \
         query: the engine degrades gracefully on both axes at once.\n",
    )
}
