//! The experiments, grouped by theme. The `eNN_*` naming follows the
//! per-experiment index in `DESIGN.md`.

pub mod ablations;
pub mod benchmarks;
pub mod estimation;
pub mod execution;
pub mod harness;
pub mod observer;
pub mod optimizer;
pub mod pop;
pub mod resources;
pub mod service;
pub mod streaming;
pub mod wire;

pub use ablations::{
    a01_pop_theta, a02_amerge_runsize, a03_eddy_decay, a04_parallel_scaling, a09_batch_speedup,
};
pub use benchmarks::{e04_tractor_pull, e05_extrinsic, e06_equivalence};
pub use estimation::{e08_card_metrics, e19_leo, e22_blackhat};
pub use observer::a08_live_observer;
pub use execution::{e11_cracking, e16_agreedy, e17_eddy, e18_gjoin};
pub use optimizer::{e07_smoothness, e09_robust_opt, e10_plan_diagram, e20_rio, e21_stats_refresh};
pub use pop::{e01_pop_aggregate, e02_pop_ratio, e03_pop_scatter};
pub use resources::{
    a05_resource_robustness, a10_paged_degradation, e12_advisor, e13_fmt, e14_fpt, e15_mixed,
};
pub use service::a06_concurrent_service;
pub use streaming::a11_continuous_queries;
pub use wire::a07_wire_service;
