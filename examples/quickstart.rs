//! Quickstart: build a database, load data, run queries, inspect plans.
//!
//! ```sh
//! cargo run --release -p rqp --example quickstart
//! ```

use rqp::expr::{col, lit};
use rqp::{AggFunc, AggSpec, Database, DataType, ExecutionMode, QuerySpec, Schema, Table, Value};

fn main() {
    // 1. Create tables and load rows.
    let mut db = Database::new();

    let mut orders = Table::new(
        "orders",
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("customer", DataType::Int),
            ("total", DataType::Float),
        ]),
    );
    for i in 0..10_000i64 {
        orders.append(vec![
            Value::Int(i),
            Value::Int(i % 500),
            Value::Float((i % 97) as f64 * 10.0),
        ]);
    }
    db.add_table(orders);

    let mut customers = Table::new(
        "customers",
        Schema::from_pairs(&[("id", DataType::Int), ("region", DataType::Int)]),
    );
    for i in 0..500i64 {
        customers.append(vec![Value::Int(i), Value::Int(i % 7)]);
    }
    db.add_table(customers);

    // 2. Index + statistics.
    db.create_index("ix_orders_id", "orders", "id").unwrap();
    db.create_index("ix_customers_id", "customers", "id").unwrap();
    db.analyze();

    // 3. A join + aggregation query, via the fluent QuerySpec builder:
    //    SELECT customers.region, count(*), sum(orders.total)
    //    FROM orders JOIN customers ON orders.customer = customers.id
    //    WHERE orders.total > 500 GROUP BY customers.region ORDER BY region
    let query = QuerySpec::new()
        .join("orders", "customer", "customers", "id")
        .filter("orders", col("orders.total").gt(lit(500.0)))
        .aggregate(
            &["customers.region"],
            vec![
                AggSpec::count_star("n"),
                AggSpec::on(AggFunc::Sum, "orders.total", "revenue"),
            ],
        )
        .order(&["customers.region"]);

    // 4. EXPLAIN shows the chosen physical plan with estimates.
    println!("=== EXPLAIN ===\n{}", db.explain(&query).unwrap());

    // 5. Execute.
    let result = db.execute(&query).unwrap();
    println!("=== RESULT ({} groups, cost {:.1}) ===", result.rows.len(), result.cost);
    for row in &result.rows {
        println!(
            "region {} | n = {} | revenue = {}",
            row[0], row[1], row[2]
        );
    }

    // 6. The same query under every robustness mode — identical answers,
    //    different machinery.
    for (name, mode) in [
        ("static", ExecutionMode::Static),
        ("robust", ExecutionMode::robust()),
        ("pop", ExecutionMode::pop()),
        ("leo", ExecutionMode::Leo),
    ] {
        let r = db.execute_mode(&query, mode).unwrap();
        println!(
            "mode {name:<7} cost {:>9.1}  plan {}",
            r.cost,
            &r.plan[..r.plan.len().min(60)]
        );
    }
}
