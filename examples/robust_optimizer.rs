//! What happens when cardinality estimates are badly wrong — and what each
//! robustness mechanism buys back.
//!
//! We inject a 500× selectivity underestimate on the fact table (the
//! seminar's canonical failure) and compare:
//!
//! * the classic optimizer trusting the bad estimate,
//! * Babcock–Chaudhuri robust (90th percentile) plan choice,
//! * POP (progressive optimization with CHECK operators),
//! * the oracle (true cardinalities — the unachievable ideal).
//!
//! ```sh
//! cargo run --release -p rqp --example robust_optimizer
//! ```

use rqp::adaptive::pop::{run_standard, run_with_pop, EstimatorWrapper, PopConfig};
use rqp::exec::ExecContext;
use rqp::expr::{col, lit};
use rqp::metrics::ReportTable;
use rqp::opt::robust::{robust_plan, RobustMode};
use rqp::opt::{plan, PlannerConfig};
use rqp::stats::{CardEstimator, LyingEstimator, OracleEstimator, StatsEstimator, TableStatsRegistry};
use rqp::workload::{tpch::TpchParams, TpchDb};
use rqp::QuerySpec;
use std::rc::Rc;

fn main() {
    let db = TpchDb::build(TpchParams { lineitem_rows: 20_000, ..Default::default() }, 7);
    let registry = TableStatsRegistry::analyze_catalog(&db.catalog, 32);
    let base = StatsEstimator::new(Rc::new(registry.clone()));

    // The query: join lineitem → orders with a lineitem filter whose
    // selectivity the optimizer believes to be 500× smaller than it is.
    let spec = QuerySpec::new()
        .join("lineitem", "orderkey", "orders", "orderkey")
        .filter("lineitem", col("lineitem.quantity").le(lit(25i64)));
    let lie = 1.0 / 500.0;

    let wrap: Box<EstimatorWrapper<'_>> = Box::new(move |e| {
        Box::new(LyingEstimator::new(e).with_table_factor("lineitem", lie))
    });
    let cfg = PlannerConfig::default();

    let mut table = ReportTable::new(&["strategy", "cost", "reopts", "plan"]);

    // 1. Classic optimizer, lied to.
    let ctx = ExecContext::unbounded();
    let (rows_std, cost_std) =
        run_standard(&spec, &db.catalog, &registry, wrap.as_ref(), cfg, &ctx).unwrap();
    let lied = wrap(Box::new(base.clone()));
    let std_plan = plan(&spec, &db.catalog, lied.as_ref(), cfg).unwrap();
    table.row(&[
        "classic (bad estimate)".into(),
        format!("{cost_std:.0}"),
        "0".into(),
        short(&std_plan.fingerprint()),
    ]);

    // 2. Robust percentile choice, hedging against exactly this error class.
    let mut scenarios: Vec<Box<dyn CardEstimator>> = vec![wrap(Box::new(base.clone()))];
    for f in [20.0, 500.0] {
        scenarios.push(Box::new(
            LyingEstimator::new(wrap(Box::new(base.clone())))
                .with_table_factor("lineitem", f),
        ));
    }
    let choice =
        robust_plan(&spec, &db.catalog, &scenarios, cfg, RobustMode::Percentile(0.9)).unwrap();
    let ctx = ExecContext::unbounded();
    let rows_robust = choice.plan.build(&db.catalog, &ctx, None).unwrap().run();
    table.row(&[
        "robust p90".into(),
        format!("{:.0}", ctx.clock.now()),
        "0".into(),
        short(&choice.plan.fingerprint()),
    ]);

    // 3. POP: start from the bad plan, CHECK catches the violation mid-query.
    let ctx = ExecContext::unbounded();
    let report = run_with_pop(
        &spec,
        &db.catalog,
        &registry,
        wrap.as_ref(),
        cfg,
        PopConfig::default(),
        &ctx,
    )
    .unwrap();
    table.row(&[
        "POP".into(),
        format!("{:.0}", report.total_cost),
        format!("{}", report.reoptimizations()),
        short(&report.rounds.last().unwrap().plan_fingerprint),
    ]);

    // 4. The oracle: what a perfect estimator would have done.
    let oracle = OracleEstimator::new(Rc::new(db.catalog.clone()));
    let ideal = plan(&spec, &db.catalog, &oracle, cfg).unwrap();
    let ctx = ExecContext::unbounded();
    let rows_ideal = ideal.build(&db.catalog, &ctx, None).unwrap().run();
    table.row(&[
        "oracle (true cards)".into(),
        format!("{:.0}", ctx.clock.now()),
        "0".into(),
        short(&ideal.fingerprint()),
    ]);

    assert_eq!(rows_std.len(), rows_robust.len());
    assert_eq!(rows_std.len(), report.rows.len());
    assert_eq!(rows_std.len(), rows_ideal.len());

    println!(
        "Query returns {} rows; optimizer believed the lineitem filter was \
         500× more selective than it is.\n\n{table}",
        rows_std.len()
    );
    println!(
        "Robust choice and POP should land near the oracle; the classic \
         optimizer pays for trusting its estimate."
    );
}

fn short(fp: &str) -> String {
    if fp.len() > 48 {
        format!("{}…", &fp[..48])
    } else {
        fp.to_owned()
    }
}
