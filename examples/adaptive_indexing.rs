//! Adaptive indexing: database cracking vs adaptive merging vs the
//! scan/full-index extremes.
//!
//! Reproduces the seminar's adaptive-indexing story (Idreos/Kersten/Manegold
//! cracking; Graefe/Kuno adaptive merging): with no idle time and an unknown
//! workload, an index can be built *as a side effect of queries*. Watch the
//! per-query cost converge.
//!
//! ```sh
//! cargo run --release -p rqp --example adaptive_indexing
//! ```

use rqp::common::rng::seeded;
use rqp::exec::{AMergeScanOp, CrackerScanOp, ExecContext, IndexScanOp, Operator, TableScanOp};
use rqp::metrics::ReportTable;
use rqp::{Catalog, DataType, Schema, Table, Value};
use rand::Rng;

const ROWS: usize = 200_000;
const QUERIES: usize = 20;
const RANGE: i64 = 2_000; // ~1% selectivity

fn drain(op: &mut dyn Operator) -> usize {
    let mut n = 0;
    while op.next().is_some() {
        n += 1;
    }
    n
}

fn main() {
    // One integer column, randomly permuted.
    let mut rng = seeded(2024);
    let mut catalog = Catalog::new();
    let mut t = Table::new("t", Schema::from_pairs(&[("k", DataType::Int)]));
    for _ in 0..ROWS {
        t.append(vec![Value::Int(rng.gen_range(0..ROWS as i64))]);
    }
    catalog.add_table(t);
    catalog.create_cracker("t", "k").unwrap();
    catalog.create_amerge("t", "k", 0).unwrap();

    // The "eager index" contender pays its build cost up front: we charge a
    // full sort's worth of comparisons on a dedicated clock.
    let eager_ctx = ExecContext::unbounded();
    eager_ctx
        .clock
        .charge_compares(ROWS as f64 * (ROWS as f64).log2());
    catalog.create_index("ix_t_k", "t", "k").unwrap();

    let scan_ctx = ExecContext::unbounded();
    let crack_ctx = ExecContext::unbounded();
    let amerge_ctx = ExecContext::unbounded();

    let mut table = ReportTable::new(&[
        "query", "scan", "crack", "amerge", "eager-index", "crack pieces",
    ]);
    let mut prev = [0.0f64; 4];
    for q in 0..QUERIES {
        let lo = rng.gen_range(0..(ROWS as i64 - RANGE));
        let hi = lo + RANGE - 1;

        let mut scan = TableScanOp::new(catalog.table("t").unwrap(), scan_ctx.clone());
        drain(&mut scan); // full scan each time (filtering omitted: same cost)

        let mut crack = CrackerScanOp::new(
            catalog.cracker("t", "k").unwrap(),
            catalog.table("t").unwrap(),
            lo,
            hi,
            crack_ctx.clone(),
        );
        let crack_rows = drain(&mut crack);

        let mut amerge = AMergeScanOp::new(
            catalog.amerge("t", "k").unwrap(),
            catalog.table("t").unwrap(),
            lo,
            hi,
            amerge_ctx.clone(),
        );
        let amerge_rows = drain(&mut amerge);
        assert_eq!(crack_rows, amerge_rows, "all access paths agree");

        let mut ix = IndexScanOp::new(
            catalog.index("ix_t_k").unwrap(),
            catalog.table("t").unwrap(),
            Some(Value::Int(lo)),
            Some(Value::Int(hi)),
            eager_ctx.clone(),
        );
        drain(&mut ix);

        let now = [
            scan_ctx.clock.now(),
            crack_ctx.clock.now(),
            amerge_ctx.clock.now(),
            eager_ctx.clock.now(),
        ];
        let pieces = catalog.cracker("t", "k").unwrap().borrow().pieces();
        table.row(&[
            format!("{q}"),
            format!("{:.0}", now[0] - prev[0]),
            format!("{:.0}", now[1] - prev[1]),
            format!("{:.0}", now[2] - prev[2]),
            format!("{:.0}", now[3] - prev[3]),
            format!("{pieces}"),
        ]);
        prev = now;
    }
    println!("Per-query cost (cost units); eager-index includes its up-front build in query 0 totals below\n{table}");
    println!(
        "cumulative: scan {:.0} | crack {:.0} | amerge {:.0} | eager index (incl. build) {:.0}",
        scan_ctx.clock.now(),
        crack_ctx.clock.now(),
        amerge_ctx.clock.now(),
        eager_ctx.clock.now(),
    );
    println!(
        "\nThe adaptive methods start near the scan and converge toward the \
         index,\nwithout ever paying the full build for ranges nobody queries."
    );
}
