//! Mixed OLTP + OLAP workload (TPC-CH-style) under a workload manager.
//!
//! The seminar's hybrid-workload break-out: order-entry transactions and
//! analytic queries share one database. We measure OLTP latency and OLAP
//! response with and without an MPL-gated, priority-aware workload manager —
//! the manager protects transaction latency from analytic monsters.
//!
//! ```sh
//! cargo run --release -p rqp --example mixed_workload
//! ```

use rqp::common::rng::seeded;
use rqp::exec::ExecContext;
use rqp::metrics::{ReportTable, Summary};
use rqp::opt::{plan, PlannerConfig};
use rqp::stats::{StatsEstimator, TableStatsRegistry};
use rqp::workload::{tpch::TpchParams, Job, OltpSimulator, TpchDb, WorkloadManager};
use std::rc::Rc;

fn main() {
    let db = TpchDb::build(TpchParams { lineitem_rows: 20_000, ..Default::default() }, 99);
    let est = StatsEstimator::new(Rc::new(TableStatsRegistry::analyze_catalog(
        &db.catalog,
        16,
    )));

    // --- Measure service demands (cost units) by really executing. ---
    // OLTP: mean new-order/payment cost.
    let mut oltp = OltpSimulator::new(db.catalog.clone(), ExecContext::unbounded(), 4);
    let txn_demand = oltp.run_stream(100);

    // OLAP: four analytic queries.
    let mut rng = seeded(17);
    let olap_specs = db.analytic_mix(4, &mut rng);
    let olap_demands: Vec<f64> = olap_specs
        .iter()
        .map(|q| {
            let p = plan(q, &db.catalog, &est, PlannerConfig::default()).unwrap();
            let ctx = ExecContext::unbounded();
            p.build(&db.catalog, &ctx, None).unwrap().run();
            ctx.clock.now()
        })
        .collect();

    println!(
        "service demands: OLTP txn ≈ {txn_demand:.1} units, OLAP queries {:?}",
        olap_demands.iter().map(|d| d.round()).collect::<Vec<_>>()
    );

    // --- Build the mixed job trace: 200 transactions + the OLAP queries. ---
    // Capacity is sized so the OLAP queries genuinely contend with the
    // transaction stream (each analytic query occupies the machine for tens
    // of transaction inter-arrival times).
    let capacity = 4.0;
    let make_jobs = |txn_priority: u8, olap_priority: u8| -> Vec<Job> {
        let mut jobs = Vec::new();
        for i in 0..200 {
            jobs.push(Job {
                id: i,
                arrival: i as f64 * 3.0,
                demand: txn_demand,
                priority: txn_priority,
                weight: 1.0,
            });
        }
        for (k, &d) in olap_demands.iter().enumerate() {
            jobs.push(Job {
                id: 1000 + k,
                arrival: 20.0 + k as f64 * 100.0,
                demand: d,
                priority: olap_priority,
                weight: 8.0,
            });
        }
        jobs
    };

    let mut table = ReportTable::new(&[
        "policy",
        "txn mean resp",
        "txn max resp",
        "olap mean resp",
        "makespan",
    ]);
    for (name, mpl, txn_prio, olap_prio) in [
        ("free-for-all (mpl=64)", 64usize, 1u8, 1u8),
        ("mpl gate (mpl=2)", 2, 1, 1),
        ("mpl + txn priority", 2, 0, 2),
    ] {
        let mgr = WorkloadManager::new(mpl, capacity);
        let out = mgr.simulate(&make_jobs(txn_prio, olap_prio));
        let txn: Vec<f64> = out
            .jobs
            .iter()
            .filter(|j| j.id < 1000)
            .map(|j| j.response)
            .collect();
        let olap: Vec<f64> = out
            .jobs
            .iter()
            .filter(|j| j.id >= 1000)
            .map(|j| j.response)
            .collect();
        let ts = Summary::of(&txn);
        let os = Summary::of(&olap);
        table.row(&[
            name.into(),
            format!("{:.1}", ts.mean),
            format!("{:.1}", ts.max),
            format!("{:.1}", os.mean),
            format!("{:.1}", out.makespan),
        ]);
    }
    println!("\n{table}");
    println!(
        "Without management, analytic monsters crush transaction latency; \
         the MPL gate + priorities restore it at modest OLAP cost."
    );
}
