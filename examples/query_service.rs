//! The concurrent query service: sessions, deadlines, cancellation.
//!
//! Stands up an [`rqp::server::QueryService`] over a TPC-H-like catalog and
//! walks the three things a *service* adds on top of single-query
//! execution: concurrent sessions racing through the MPL gate while sharing
//! one workspace budget, a deadline that aborts a query mid-flight, and an
//! explicit cancellation — then prints the deterministic schedule report.
//!
//! ```sh
//! cargo run --release -p rqp --example query_service
//! ```

use rqp::server::{QueryOptions, QueryService, ServiceConfig};
use rqp::workload::{tpch::TpchParams, TpchDb};

fn main() {
    let db = TpchDb::build(TpchParams { lineitem_rows: 10_000, ..Default::default() }, 7);
    let svc = QueryService::new(
        &db.catalog,
        ServiceConfig { mpl: 2, memory_rows: 20_000.0, ..Default::default() },
    );

    // --- Solo baseline: warms the plan cache and sets the yardstick. ---
    let q = db.q3(1, 400);
    let solo = svc.run_solo(&q).unwrap();
    println!(
        "solo: {} rows in {:.0} cost units (plan {})",
        solo.rows.len(),
        solo.cost,
        solo.fingerprint
    );

    // --- Two sessions, five queries, MPL 2: the gate queues the rest. ---
    let analytics = svc.session(1);
    let dashboard = svc.session(0); // higher priority
    let handles: Vec<_> = (0..5)
        .map(|i| {
            let session = if i % 2 == 0 { &analytics } else { &dashboard };
            session.submit(q.clone(), QueryOptions::default().at(i as f64 * 50.0))
        })
        .collect();
    for h in handles {
        let out = h.join().unwrap();
        assert_eq!(out.rows, solo.rows, "concurrent results are bit-identical to solo");
    }
    println!(
        "concurrent: 5/5 queries identical to solo; peak concurrency {} (mpl {}), \
         plan cache {} hits / {} drift invalidations",
        svc.peak_concurrency(),
        svc.config().mpl,
        svc.plan_cache().hits(),
        svc.plan_cache().invalidations()
    );

    // --- A deadline too tight to finish: typed abort, workspace returned. ---
    let doomed = analytics.submit(q.clone(), QueryOptions::with_deadline(solo.cost / 10.0));
    let err = doomed.join().unwrap_err();
    println!("deadline query: aborted with `{err}`; reserved workspace now {}", svc.reserved());

    // --- Explicit cancellation. Pausing the gate first makes the cancel
    // deterministic: the victim is still queued when the token trips. ---
    svc.pause_admission();
    let victim = analytics.submit(q.clone(), QueryOptions::default());
    while svc.queue_depth() != 1 {
        std::thread::yield_now();
    }
    victim.cancel();
    let err = victim.join().unwrap_err();
    svc.resume_admission();
    println!("cancelled query: aborted with `{err}`");

    // --- The deterministic report over everything that ran. ---
    let r = svc.schedule_report();
    println!(
        "\nreport: {} queries ({} completed, {} deadline-aborted, {} cancelled)\n\
         latency p50/p99 {:.0}/{:.0}, tail amplification {:.2}x, \
         admission wait p99 {:.0}, worst cancel latency {:.0}",
        r.queries,
        r.completed,
        r.deadline_aborted,
        r.cancelled,
        r.latency_p50,
        r.latency_p99,
        r.tail_amplification,
        r.admission_wait_p99,
        r.cancel_latency_max
    );
}
