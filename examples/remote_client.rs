//! The TCP wire protocol: a remote session against a live wire server.
//!
//! Stands up a [`rqp_net::WireServer`] over a TPC-H-like catalog on an
//! ephemeral localhost port, then drives it the way an external process
//! would: connect + HELLO, run queries (submit, credit-granting fetch),
//! observe a typed failure crossing the wire with its stable code, cancel a
//! queued query, and say GOODBYE — while the server's wire statistics
//! confirm nothing leaked.
//!
//! ```sh
//! cargo run --release -p rqp-net --example remote_client
//! ```

use rqp_net::{rows_checksum, WireClient, WireQueryOptions, WireServer};
use rqp_server::{QueryService, ServiceConfig};
use rqp_workload::{tpch::TpchParams, TpchDb};
use std::sync::Arc;

fn main() {
    let db = TpchDb::build(TpchParams { lineitem_rows: 10_000, ..Default::default() }, 7);
    let svc = Arc::new(QueryService::new(
        &db.catalog,
        ServiceConfig { mpl: 2, memory_rows: 20_000.0, drift_threshold: 1e9, ..Default::default() },
    ));

    // --- A real TCP server on an ephemeral port. ---
    let server = WireServer::start(Arc::clone(&svc), "127.0.0.1:0").unwrap();
    let addr = format!("127.0.0.1:{}", server.port());
    println!("wire server listening on {addr}");

    // --- Solo baseline, then the same query over the wire. ---
    let q = db.q3(1, 400);
    let solo = svc.run_solo(&q).unwrap();
    let mut client = WireClient::connect(&addr, 0).unwrap();
    println!("session {} open", client.session());
    let out = client.run(&q, WireQueryOptions::default()).unwrap().unwrap();
    assert_eq!(out.rows, solo.rows, "remote rows are bit-identical to solo");
    println!(
        "remote query {}: {} rows in {:.0} cost units, checksum {:016x} (matches solo)",
        out.query,
        out.rows.len(),
        out.cost,
        rows_checksum(&out.rows)
    );

    // --- A deadline too tight to finish: the typed abort crosses the wire
    // with a stable numeric code, not a string to be parsed. ---
    let failure = client
        .run(&q, WireQueryOptions { deadline: Some(solo.cost / 10.0), ..Default::default() })
        .unwrap()
        .unwrap_err();
    println!(
        "deadline query: code {} ({}) — {}",
        failure.code,
        failure.name().unwrap_or("?"),
        failure.message
    );

    // --- Cancel a queued query from the client side. Pausing the gate
    // makes it deterministic: the CANCEL lands while the query waits, and
    // the cancelled waiter leaves the queue before the gate reopens. ---
    svc.pause_admission();
    let queued = client.submit(&q, WireQueryOptions::default()).unwrap();
    while svc.queue_depth() != 1 {
        std::thread::yield_now();
    }
    client.cancel(queued).unwrap();
    while svc.queue_depth() != 0 {
        std::thread::yield_now();
    }
    svc.resume_admission();
    let failure = client.fetch(queued).unwrap().unwrap_err();
    println!("cancelled query {queued}: code {} ({})", failure.code, failure.name().unwrap_or("?"));

    client.goodbye().unwrap();
    let stats = server.stats();
    println!(
        "\nwire stats: {} connection(s), {} closed, {} protocol errors, \
         peak {} buffered page(s); service holds {} reserved rows",
        stats.connections,
        stats.closed,
        stats.protocol_errors,
        stats.peak_buffered_pages,
        svc.reserved()
    );
}
