//! Acceptance tests for standing subscriptions: the maintained view must be
//! **bit-identical** to re-running the spec from scratch after every drained
//! churn interleaving — under whatever `RQP_THREADS`, `RQP_BATCH` and
//! `RQP_CHAOS_SEED` the CI matrix sets (chaos inflates propagation cost with
//! retry charges; it must never change the maintained rows) — and every
//! teardown path (explicit unsubscribe, deadline abort, token cancel,
//! service shutdown) must leave the registry empty, the broker at zero
//! reservations and the pool at zero pins.
//!
//! Compiled under `rqp-bench` so it can drive the query service and the
//! stream crate in one place (the wire-disconnect teardown leg lives in
//! `tests/net.rs` next to the rest of the wire suite).

use rqp::common::rng::{child_seed, seeded};
use rqp::server::{QueryService, ServiceConfig, SubscribeOptions};
use rqp::stream::canonicalize;
use rqp::workload::{tpch::TpchParams, TpchDb};
use rqp::{QuerySpec, Row, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// A service over a small TPC-H-like snapshot. Drift invalidation is off so
/// cold re-runs always execute the cached physical plan (the comparison is
/// about maintained state, not replanning).
fn service(li: usize, page_budget: Option<usize>) -> (TpchDb, QueryService) {
    let db = TpchDb::build(TpchParams { lineitem_rows: li, ..Default::default() }, 4242);
    let svc = QueryService::new(
        &db.catalog,
        ServiceConfig { mpl: 4, drift_threshold: 1e9, page_budget, ..ServiceConfig::default() },
    );
    (db, svc)
}

/// The standing-query menu: grouped aggregate, 3-way join + aggregate,
/// global aggregate, filter + projection — ORDER BY/LIMIT stripped.
fn menu(db: &TpchDb) -> Vec<QuerySpec> {
    let wide = QuerySpec::new()
        .table("lineitem")
        .filter(
            "lineitem",
            rqp::expr::col("lineitem.shipdate").lt(rqp::expr::lit(1_200i64)),
        )
        .project(&["lineitem.orderkey", "lineitem.quantity", "lineitem.extendedprice"]);
    let mut specs = vec![db.q1(30), db.q3(1, 400), db.q6(100, 0.05, 30)];
    for s in &mut specs {
        s.order_by.clear();
        s.limit = None;
    }
    specs.push(wide);
    specs
}

/// A fresh lineitem row; float columns dyadic so retractable sums stay
/// exact no matter how the interleaving slices them.
fn fresh_row(rng: &mut StdRng) -> Row {
    let k = rng.gen_range(0..1_000_000i64);
    vec![
        Value::Int(k % 200),
        Value::Int(k % 20),
        Value::Int(k % 10),
        Value::Int(1 + k % 50),
        Value::Float(1_000.0 + (k % 100) as f64 * 0.25),
        Value::Float((k % 5) as f64 * 0.015_625),
        Value::Int(k % 2_400),
        Value::Int(k % 3),
    ]
}

/// The core property: for random append/poll interleavings — batches of
/// random size, polls draining random record counts, some subscriptions
/// left lagging for whole rounds — every fully-drained view equals a cold
/// re-run, bit for bit.
#[test]
fn maintained_views_match_cold_reruns_under_random_churn() {
    let (db, svc) = service(800, None);
    let specs = menu(&db);
    let subs: Vec<(u64, &QuerySpec)> = specs
        .iter()
        .map(|s| (svc.subscribe(s, SubscribeOptions::default()).expect("subscribe"), s))
        .collect();
    for case in 0..6u64 {
        let mut rng = seeded(child_seed(0x57ea + case, "churn"));
        for _ in 0..4 {
            let rows: Vec<Row> = (0..rng.gen_range(1..40)).map(|_| fresh_row(&mut rng)).collect();
            svc.append_rows("lineitem", rows).expect("append");
            // Random partial drains: each subscription advances by a random
            // number of records (possibly zero — it just lags).
            for &(id, _) in &subs {
                let max = rng.gen_range(0..30usize);
                if max > 0 {
                    svc.poll_subscription(id, max).expect("partial poll");
                }
            }
        }
        // Checkpoint: drain fully, then every view must equal a cold rerun.
        for &(id, spec) in &subs {
            let (_, lag) = svc.poll_subscription(id, 0).expect("drain");
            assert_eq!(lag, 0, "a full drain leaves no lag");
            let view = svc.subscriptions().get(id).expect("live").view();
            let cold = canonicalize(svc.run_solo(spec).expect("cold rerun").rows);
            assert_eq!(view, cold, "case {case}: maintained view diverged from cold rerun");
        }
    }
    assert_eq!(svc.shutdown_subscriptions(), subs.len());
    assert_eq!(svc.subscriptions().count(), 0);
    assert!(svc.reserved().abs() < 1e-6, "grants returned on shutdown");
}

/// Epoch sequencing and lag accounting are exact: `append_rows` returns the
/// changelog length, a poll bounded to `k` records advances the cursor by
/// exactly `k`, and the delta packets compose to the full delta.
#[test]
fn partial_polls_account_lag_exactly() {
    let (db, svc) = service(400, None);
    let spec = &menu(&db)[3]; // filter + projection: one delta row per match
    let id = svc.subscribe(spec, SubscribeOptions::default()).expect("subscribe");
    let view0 = svc.subscriptions().get(id).expect("live").view();
    let before = svc.changelog().len();
    let mut rng = seeded(0xacc);
    let epoch = svc
        .append_rows("lineitem", (0..25).map(|_| fresh_row(&mut rng)).collect())
        .expect("append");
    assert_eq!(epoch, before + 25, "append returns the post-append epoch");
    let mut remaining = 25u64;
    let mut drained = Vec::new();
    for k in [10u64, 10, 10] {
        let (packet, lag) = svc.poll_subscription(id, k as usize).expect("poll");
        remaining = remaining.saturating_sub(k);
        assert_eq!(lag, remaining, "lag decreases by exactly the drained records");
        assert!(packet.retracted.is_empty(), "insert-only churn never retracts");
        drained.extend(packet.inserted);
    }
    let view = svc.subscriptions().get(id).expect("live").view();
    let cold = canonicalize(svc.run_solo(spec).expect("cold").rows);
    assert_eq!(view, cold);
    // The partial packets compose to the full delta: initial view plus
    // every drained insert is exactly the final view.
    let mut composed = view0;
    composed.extend(drained);
    assert_eq!(canonicalize(composed), view);
    assert!(svc.unsubscribe(id));
    assert!(!svc.unsubscribe(id), "double unsubscribe reports false");
}

/// A subscription registered with a propagation-cost deadline is torn down
/// by the first poll that charges past it — typed error, empty registry, no
/// grants, no pins.
#[test]
fn deadline_abort_tears_down_subscription() {
    let (db, svc) = service(600, Some(64));
    let spec = &menu(&db)[1]; // the join: polls charge real probe work
    let id = svc
        .subscribe(spec, SubscribeOptions::with_deadline(1e-9))
        .expect("a tiny deadline still registers: the initial load is pre-deadline");
    let mut rng = seeded(0xdead);
    svc.append_rows("lineitem", (0..8).map(|_| fresh_row(&mut rng)).collect()).expect("append");
    let err = svc.poll_subscription(id, 0).expect_err("deadline must trip");
    assert_eq!(err, rqp::common::RqpError::DeadlineExceeded);
    assert!(svc.subscriptions().get(id).is_none(), "deadline abort removed the subscription");
    assert_eq!(svc.subscriptions().count(), 0);
    assert!(svc.reserved().abs() < 1e-6, "deadline abort returned the grant");
    assert_eq!(svc.pager().expect("paged service").pins(), 0, "no pins survive the abort");
}

/// Cancelling a subscription's token makes the next poll fail typed and
/// tear it down, exactly like a cancelled query.
#[test]
fn cancelled_token_tears_down_on_next_poll() {
    let (db, svc) = service(400, None);
    let id = svc.subscribe(&menu(&db)[0], SubscribeOptions::default()).expect("subscribe");
    svc.subscriptions().get(id).expect("live").token().cancel();
    let err = svc.poll_subscription(id, 0).expect_err("cancelled poll");
    assert!(err.is_cancellation(), "got {err:?}");
    assert_eq!(svc.subscriptions().count(), 0);
    assert!(svc.reserved().abs() < 1e-6);
}

/// Service shutdown tears down every subscription at once: registry empty,
/// all grants returned, pool at zero pins, and the teardown counter in the
/// metrics matches.
#[test]
fn shutdown_tears_down_every_subscription() {
    let (db, svc) = service(600, Some(64));
    let specs = menu(&db);
    let ids: Vec<u64> = (0..8)
        .map(|i| {
            svc.subscribe(&specs[i % specs.len()], SubscribeOptions::default()).expect("subscribe")
        })
        .collect();
    let mut rng = seeded(0x5d0);
    svc.append_rows("lineitem", (0..16).map(|_| fresh_row(&mut rng)).collect()).expect("append");
    for &id in &ids {
        svc.poll_subscription(id, 0).expect("poll");
    }
    assert!(svc.reserved() > 0.0, "live subscriptions hold broker grants");
    assert_eq!(svc.shutdown_subscriptions(), ids.len());
    assert_eq!(svc.subscriptions().count(), 0, "registry empty after shutdown");
    assert!(svc.reserved().abs() < 1e-6, "every grant returned");
    assert_eq!(svc.pager().expect("paged service").pins(), 0, "no pins survive shutdown");
    for &id in &ids {
        let err = svc.poll_subscription(id, 0).expect_err("dead id");
        assert!(matches!(err, rqp::common::RqpError::Invalid(_)), "got {err:?}");
    }
}
