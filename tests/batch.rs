//! Acceptance tests for batch-at-a-time execution: every batch plan must be
//! **row-identical** to its scalar twin and — under dyadic cost parameters —
//! **bit-identical** in its charged cost breakdown, at 1/2/8 workers, under
//! repartitioning and under chaos injection. Also the mixed-type key
//! regression: hash joins and hash repartitions over Int/Float keys must
//! agree with a nested-loop oracle on both execution paths (the
//! hash/equality divergence this PR fixed).
//!
//! Compiled under `rqp-bench` so it can drive the whole stack through the
//! `rqp` facade.

use rqp::common::expr::{col, lit};
use rqp::common::{ChaosConfig, ChaosPolicy, CostClock, CostModelParams, StringDict};
use rqp::exec::{
    batch_pipeline, collect, pipeline, AggFunc, AggSpec, BatchFilterOp, BatchHashAggOp,
    BatchHashJoinOp, BatchProjectOp, BatchRowsOp, BatchScanOp, BnlJoinOp, BoxBatchOp, BoxOp,
    ExchangeOp, ExecContext, FilterOp, HashAggOp, HashJoinOp, Operator, Partitioning, ProjectOp,
    TableScanOp,
};
use rqp::{DataType, Row, Schema, Table, Value};
use std::sync::Arc;

/// Cost weights that are all dyadic rationals, so per-row charges sum
/// associatively and totals compare bit-for-bit however the work is batched
/// or sharded (the same trick `rqp-exec`'s exchange tests use).
fn dyadic_params() -> CostModelParams {
    CostModelParams {
        rows_per_page: 128.0,
        seq_page: 1.0,
        rand_page: 4.0,
        cpu_tuple: 1.0 / 256.0,
        cpu_compare: 1.0 / 512.0,
        hash_build: 1.0 / 64.0,
        hash_probe: 1.0 / 128.0,
        spill_page: 2.5,
    }
}

fn ctx() -> ExecContext {
    ExecContext::new(CostClock::new(dyadic_params()), f64::INFINITY)
}

/// Orders: id Int, amt Float (dyadic values), cat Str (7 distinct).
fn orders(n: usize) -> Arc<Table> {
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("amt", DataType::Float),
        ("cat", DataType::Str),
    ]);
    let mut t = Table::new("o", schema);
    for i in 0..n as i64 {
        t.append(vec![
            Value::Int(i),
            Value::Float((i % 100) as f64 * 0.25),
            Value::Str(format!("cat{}", i % 7)),
        ]);
    }
    Arc::new(t)
}

/// Categories: cat Str (5 of the 7 order categories), tax Float.
fn cats() -> Arc<Table> {
    let schema = Schema::from_pairs(&[("cat", DataType::Str), ("tax", DataType::Float)]);
    let mut t = Table::new("c", schema);
    for i in 0..5i64 {
        t.append(vec![Value::Str(format!("cat{i}")), Value::Float(i as f64 * 0.125)]);
    }
    Arc::new(t)
}

/// Left side of the mixed-type join: k is an **Int** column.
fn mixed_left(n: usize) -> Arc<Table> {
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
    let mut t = Table::new("l", schema);
    for i in 0..n as i64 {
        t.append(vec![Value::Int(i % 16), Value::Int(i)]);
    }
    Arc::new(t)
}

/// Right side of the mixed-type join: k is a **Float** column, half of whose
/// values are whole numbers (which must join with the Int side, since
/// `Int(5) == Float(5.0)` under `total_cmp`) and half `x + 0.5` (which must
/// join with nothing).
fn mixed_right(n: usize) -> Arc<Table> {
    let schema = Schema::from_pairs(&[("k", DataType::Float), ("w", DataType::Int)]);
    let mut t = Table::new("r", schema);
    for i in 0..n as i64 {
        let k = if i % 2 == 0 { (i % 16) as f64 } else { (i % 16) as f64 + 0.5 };
        t.append(vec![Value::Float(k), Value::Int(i + 1000)]);
    }
    Arc::new(t)
}

fn assert_rows_and_bits(
    label: &str,
    (rows_a, ctx_a): &(Vec<Row>, ExecContext),
    (rows_b, ctx_b): &(Vec<Row>, ExecContext),
) {
    assert_eq!(rows_a, rows_b, "{label}: row streams diverge");
    let (a, b) = (ctx_a.clock.breakdown(), ctx_b.clock.breakdown());
    assert_eq!(a.seq_io.to_bits(), b.seq_io.to_bits(), "{label}: seq_io");
    assert_eq!(a.rand_io.to_bits(), b.rand_io.to_bits(), "{label}: rand_io");
    assert_eq!(a.cpu.to_bits(), b.cpu.to_bits(), "{label}: cpu");
    assert_eq!(a.spill.to_bits(), b.spill.to_bits(), "{label}: spill");
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

// ---------------------------------------------------------------------------
// Single-worker twins: scan / filter / project / join / agg
// ---------------------------------------------------------------------------

#[test]
fn scan_filter_project_twins_are_bit_identical() {
    let t = orders(3_000);
    let pred = col("o.id").lt(lit(2_100i64));

    let scalar = {
        let c = ctx();
        let scan: BoxOp = Box::new(TableScanOp::new(Arc::clone(&t), c.clone()));
        let filt: BoxOp = Box::new(FilterOp::new(scan, &pred, c.clone()).unwrap());
        let mut proj = ProjectOp::columns(filt, &["o.cat", "o.amt"], c.clone()).unwrap();
        (collect(&mut proj), c)
    };
    let batch = {
        let c = ctx();
        let scan: BoxBatchOp = Box::new(BatchScanOp::new(Arc::clone(&t), c.clone()));
        let filt: BoxBatchOp = Box::new(BatchFilterOp::new(scan, &pred, c.clone()).unwrap());
        let proj: BoxBatchOp =
            Box::new(BatchProjectOp::columns(filt, &["o.cat", "o.amt"], c.clone()).unwrap());
        let mut rows = BatchRowsOp::boxed(proj, c.clone());
        (collect(rows.as_mut()), c)
    };
    assert_eq!(scalar.0.len(), 2_100);
    assert_rows_and_bits("scan+filter+project", &scalar, &batch);
}

#[test]
fn string_filter_twins_agree_on_every_simple_predicate() {
    // One batch per comparison shape over the dictionary-encoded column —
    // the per-code verdict cache must agree with scalar total_cmp exactly.
    let t = orders(1_500);
    let preds = [
        col("o.cat").eq(lit("cat3")),
        col("o.cat").eq(lit("missing")),
        col("o.cat").lt(lit("cat4")),
        col("o.cat").ge(lit("cat2")),
        col("o.cat").between("cat1", "cat5"),
        col("o.cat").eq(lit(3i64)), // numeric literal vs string column
    ];
    for pred in &preds {
        let scalar = {
            let c = ctx();
            let scan: BoxOp = Box::new(TableScanOp::new(Arc::clone(&t), c.clone()));
            let mut f = FilterOp::new(scan, pred, c.clone()).unwrap();
            (collect(&mut f), c)
        };
        let batch = {
            let c = ctx();
            let scan: BoxBatchOp = Box::new(BatchScanOp::new(Arc::clone(&t), c.clone()));
            let f: BoxBatchOp = Box::new(BatchFilterOp::new(scan, pred, c.clone()).unwrap());
            let mut rows = BatchRowsOp::boxed(f, c.clone());
            (collect(rows.as_mut()), c)
        };
        assert_rows_and_bits(&format!("str filter {pred}"), &scalar, &batch);
    }
}

#[test]
fn hash_join_twins_are_bit_identical_including_emission_order() {
    let t = orders(2_000);
    let c_tab = cats();

    let scalar = {
        let c = ctx();
        let left: BoxOp = Box::new(TableScanOp::new(Arc::clone(&t), c.clone()));
        let right: BoxOp = Box::new(TableScanOp::new(Arc::clone(&c_tab), c.clone()));
        let mut j = HashJoinOp::new(left, right, &["o.cat"], &["c.cat"], c.clone()).unwrap();
        (collect(&mut j), c)
    };
    let batch = {
        let c = ctx();
        let dict = Arc::new(StringDict::new());
        let left: BoxBatchOp = Box::new(BatchScanOp::with_dict(
            Arc::clone(&t),
            0,
            t.nrows(),
            Arc::clone(&dict),
            c.clone(),
        ));
        let right: BoxBatchOp = Box::new(BatchScanOp::with_dict(
            Arc::clone(&c_tab),
            0,
            c_tab.nrows(),
            dict,
            c.clone(),
        ));
        let j: BoxBatchOp =
            Box::new(BatchHashJoinOp::new(left, right, "o.cat", "c.cat", c.clone()).unwrap());
        let mut rows = BatchRowsOp::boxed(j, c.clone());
        (collect(rows.as_mut()), c)
    };
    // cat5/cat6 orders match nothing; each other order matches exactly once.
    assert!(!scalar.0.is_empty());
    assert_rows_and_bits("hash join", &scalar, &batch);
}

#[test]
fn hash_agg_twins_are_bit_identical() {
    let t = orders(2_000);
    let aggs = [
        AggSpec::count_star("n"),
        AggSpec::on(AggFunc::Sum, "o.amt", "s"),
        AggSpec::on(AggFunc::Avg, "o.amt", "a"),
        AggSpec::on(AggFunc::Min, "o.amt", "lo"),
        AggSpec::on(AggFunc::Max, "o.amt", "hi"),
    ];
    for group in [&["o.cat"][..], &[][..]] {
        let scalar = {
            let c = ctx();
            let scan: BoxOp = Box::new(TableScanOp::new(Arc::clone(&t), c.clone()));
            let mut a = HashAggOp::new(scan, group, &aggs, c.clone()).unwrap();
            (collect(&mut a), c)
        };
        let batch = {
            let c = ctx();
            let scan: BoxBatchOp = Box::new(BatchScanOp::new(Arc::clone(&t), c.clone()));
            let mut a = BatchHashAggOp::new(scan, group, &aggs, c.clone()).unwrap();
            (collect(&mut a), c)
        };
        assert_rows_and_bits(&format!("hash agg group={group:?}"), &scalar, &batch);
    }
}

#[test]
fn degenerate_inputs_match_scalar() {
    let empty = {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("cat", DataType::Str)]);
        Arc::new(Table::new("e", schema))
    };
    // Empty scan.
    let scalar = {
        let c = ctx();
        let mut s = TableScanOp::new(Arc::clone(&empty), c.clone());
        (collect(&mut s), c)
    };
    let batch = {
        let c = ctx();
        let s: BoxBatchOp = Box::new(BatchScanOp::new(Arc::clone(&empty), c.clone()));
        let mut rows = BatchRowsOp::boxed(s, c.clone());
        (collect(rows.as_mut()), c)
    };
    assert_rows_and_bits("empty scan", &scalar, &batch);

    // Global aggregate over an empty input: one row, matching scalar.
    let aggs = [AggSpec::count_star("n")];
    let scalar = {
        let c = ctx();
        let scan: BoxOp = Box::new(TableScanOp::new(Arc::clone(&empty), c.clone()));
        let mut a = HashAggOp::new(scan, &[], &aggs, c.clone()).unwrap();
        (collect(&mut a), c)
    };
    let batch = {
        let c = ctx();
        let scan: BoxBatchOp = Box::new(BatchScanOp::new(Arc::clone(&empty), c.clone()));
        let mut a = BatchHashAggOp::new(scan, &[], &aggs, c.clone()).unwrap();
        (collect(&mut a), c)
    };
    assert_eq!(scalar.0, vec![vec![Value::Int(0)]]);
    assert_rows_and_bits("empty global agg", &scalar, &batch);
}

// ---------------------------------------------------------------------------
// Parallel twins: 1/2/8 workers, scan-side pipelines and repartitioning
// ---------------------------------------------------------------------------

#[test]
fn parallel_batch_scan_matches_scalar_at_1_2_and_8_workers() {
    let t = orders(3_000);
    let pred = col("o.id").lt(lit(2_500i64));

    let scalar_run = |workers: usize| {
        let c = ctx();
        let p = pred.clone();
        let build = pipeline(move |op, wctx| {
            Box::new(FilterOp::new(op, &p, wctx.clone()).unwrap()) as BoxOp
        });
        let mut ex = ExchangeOp::parallel_scan_with(Arc::clone(&t), workers, build, c.clone());
        (collect(&mut ex), c)
    };
    let batch_run = |workers: usize| {
        let c = ctx();
        let p = pred.clone();
        let build = batch_pipeline(move |op, wctx| {
            Box::new(BatchFilterOp::new(op, &p, wctx.clone()).unwrap()) as BoxBatchOp
        });
        let mut ex =
            ExchangeOp::try_parallel_batch_scan(Arc::clone(&t), workers, build, c.clone())
                .unwrap();
        (collect(&mut ex), c)
    };

    let baseline = scalar_run(1);
    for workers in [1usize, 2, 8] {
        assert_rows_and_bits(
            &format!("scalar vs batch at {workers} workers"),
            &scalar_run(workers),
            &batch_run(workers),
        );
        assert_rows_and_bits(
            &format!("batch at {workers} workers vs 1-worker scalar"),
            &baseline,
            &batch_run(workers),
        );
    }
}

#[test]
fn repartition_twins_are_bit_identical_for_hash_and_range_specs() {
    let t = orders(2_000);
    let pred = col("o.id").ge(lit(100i64));
    // Qualified scan schema: o.id=0, o.amt=1, o.cat=2. Hash on each column
    // type plus a numeric range spec — batch routing must reproduce scalar
    // routing byte for byte across Int, Float and dictionary-coded keys.
    let specs = [
        Partitioning::Hash { keys: vec![0], skew: 0.0 },
        Partitioning::Hash { keys: vec![1], skew: 0.0 },
        Partitioning::Hash { keys: vec![2], skew: 0.0 },
        Partitioning::Hash { keys: vec![0, 2], skew: 0.25 },
        Partitioning::Range { key: 1, skew: 0.0 },
    ];
    for spec in &specs {
        for workers in [1usize, 2, 8] {
            let scalar = {
                let c = ctx();
                let scan: BoxOp = Box::new(TableScanOp::new(Arc::clone(&t), c.clone()));
                let p = pred.clone();
                let build = pipeline(move |op, wctx| {
                    Box::new(FilterOp::new(op, &p, wctx.clone()).unwrap()) as BoxOp
                });
                let mut ex =
                    ExchangeOp::repartition(scan, spec.clone(), workers, build, c.clone())
                        .unwrap();
                (collect(&mut ex), c)
            };
            let batch = {
                let c = ctx();
                let scan: BoxBatchOp = Box::new(BatchScanOp::new(Arc::clone(&t), c.clone()));
                let p = pred.clone();
                let build = batch_pipeline(move |op, wctx| {
                    Box::new(BatchFilterOp::new(op, &p, wctx.clone()).unwrap()) as BoxBatchOp
                });
                let mut ex = ExchangeOp::repartition_batches(
                    scan,
                    spec.clone(),
                    workers,
                    build,
                    c.clone(),
                )
                .unwrap();
                (collect(&mut ex), c)
            };
            assert_rows_and_bits(&format!("repartition {spec:?} x{workers}"), &scalar, &batch);
        }
    }
}

// ---------------------------------------------------------------------------
// The mixed-type key regression (the bug this PR fixed)
// ---------------------------------------------------------------------------

#[test]
fn mixed_type_key_join_matches_nested_loop_oracle_on_both_paths() {
    let l = mixed_left(400);
    let r = mixed_right(300);

    let oracle = {
        let c = ctx();
        let left: BoxOp = Box::new(TableScanOp::new(Arc::clone(&l), c.clone()));
        let right: BoxOp = Box::new(TableScanOp::new(Arc::clone(&r), c.clone()));
        let pred = col("l.k").eq(col("r.k"));
        let mut j = BnlJoinOp::new(left, right, Some(&pred), c.clone()).unwrap();
        sorted(collect(&mut j))
    };
    assert!(!oracle.is_empty(), "whole-number Float keys must match Int keys");

    let scalar = {
        let c = ctx();
        let left: BoxOp = Box::new(TableScanOp::new(Arc::clone(&l), c.clone()));
        let right: BoxOp = Box::new(TableScanOp::new(Arc::clone(&r), c.clone()));
        let mut j = HashJoinOp::new(left, right, &["l.k"], &["r.k"], c.clone()).unwrap();
        (collect(&mut j), c)
    };
    let batch = {
        let c = ctx();
        let dict = Arc::new(StringDict::new());
        let left: BoxBatchOp = Box::new(BatchScanOp::with_dict(
            Arc::clone(&l),
            0,
            l.nrows(),
            Arc::clone(&dict),
            c.clone(),
        ));
        let right: BoxBatchOp = Box::new(BatchScanOp::with_dict(
            Arc::clone(&r),
            0,
            r.nrows(),
            dict,
            c.clone(),
        ));
        let j: BoxBatchOp =
            Box::new(BatchHashJoinOp::new(left, right, "l.k", "r.k", c.clone()).unwrap());
        let mut rows = BatchRowsOp::boxed(j, c.clone());
        (collect(rows.as_mut()), c)
    };
    assert_eq!(sorted(scalar.0.clone()), oracle, "scalar hash join vs oracle");
    assert_eq!(sorted(batch.0.clone()), oracle, "batch hash join vs oracle");
    assert_rows_and_bits("mixed-key join twins", &scalar, &batch);
}

/// Literal row source whose key column mixes `Int` and `Float` values —
/// the shape that used to hash-split equal keys across partitions.
struct MixedRowsOp {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
}

impl Operator for MixedRowsOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn next(&mut self) -> Option<Row> {
        self.rows.next()
    }
}

fn mixed_rows(n: i64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            let k = if i % 2 == 0 { Value::Int(i % 8) } else { Value::Float((i % 8) as f64) };
            vec![k, Value::Int(i)]
        })
        .collect()
}

#[test]
fn mixed_type_keys_repartition_and_join_identically_at_1_2_and_8_workers() {
    // Repartition a stream whose key column mixes Int(k) and Float(k), then
    // hash-join each partition against a build side keyed by the same mixed
    // values. Correct only if hash_value agrees with total_cmp equality:
    // before the fix, Int(3) and Float(3.0) routed to different partitions
    // and the partition-local joins lost matches.
    let rows_schema = Schema::from_pairs(&[("m.k", DataType::Int), ("m.v", DataType::Int)]);
    let build_side = mixed_rows(64);

    let oracle = {
        let c = ctx();
        let left: BoxOp = Box::new(MixedRowsOp {
            schema: rows_schema.clone(),
            rows: mixed_rows(500).into_iter(),
        });
        let right: BoxOp = Box::new(MixedRowsOp {
            schema: Schema::from_pairs(&[("b.k", DataType::Int), ("b.v", DataType::Int)]),
            rows: build_side.clone().into_iter(),
        });
        let pred = col("m.k").eq(col("b.k"));
        let mut j = BnlJoinOp::new(left, right, Some(&pred), c.clone()).unwrap();
        sorted(collect(&mut j))
    };
    assert!(!oracle.is_empty());

    let mut per_workers = Vec::new();
    for workers in [1usize, 2, 8] {
        let c = ctx();
        let input: BoxOp = Box::new(MixedRowsOp {
            schema: rows_schema.clone(),
            rows: mixed_rows(500).into_iter(),
        });
        let bs = build_side.clone();
        let build = pipeline(move |op, wctx| {
            let right: BoxOp = Box::new(MixedRowsOp {
                schema: Schema::from_pairs(&[("b.k", DataType::Int), ("b.v", DataType::Int)]),
                rows: bs.clone().into_iter(),
            });
            Box::new(HashJoinOp::new(op, right, &["m.k"], &["b.k"], wctx.clone()).unwrap())
                as BoxOp
        });
        let spec = Partitioning::Hash { keys: vec![0], skew: 0.0 };
        let mut ex = ExchangeOp::repartition(input, spec, workers, build, c.clone()).unwrap();
        let got = sorted(collect(&mut ex));
        assert_eq!(got, oracle, "repartitioned join diverged at {workers} workers");
        per_workers.push(got);
    }
    assert!(per_workers.windows(2).all(|w| w[0] == w[1]));
}

// ---------------------------------------------------------------------------
// Chaos injection
// ---------------------------------------------------------------------------

fn chaos_scan_cfg() -> ChaosConfig {
    ChaosConfig {
        scan_fault_rate: 0.2,
        scan_max_retries: 16,
        shock_rate: 0.0,
        worker_panic_rate: 0.0,
        worker_stall_rate: 0.0,
        ..ChaosConfig::standard(99)
    }
}

#[test]
fn chaos_scan_faults_hit_batch_and_scalar_identically() {
    // The fault schedule is a pure function of (table, page, attempt), and
    // the batch scan walks the same page boundaries in the same order — so
    // retries, retry charges and rows must all agree exactly.
    let t = orders(2_000);
    let scalar = {
        let c = ctx().with_chaos(ChaosPolicy::new(chaos_scan_cfg()));
        let mut s = TableScanOp::new(Arc::clone(&t), c.clone());
        (collect(&mut s), c)
    };
    let batch = {
        let c = ctx().with_chaos(ChaosPolicy::new(chaos_scan_cfg()));
        let s: BoxBatchOp = Box::new(BatchScanOp::new(Arc::clone(&t), c.clone()));
        let mut rows = BatchRowsOp::boxed(s, c.clone());
        (collect(rows.as_mut()), c)
    };
    assert_rows_and_bits("chaos scan", &scalar, &batch);
    let retries = scalar.1.metrics.counter("chaos.scan_retries").get();
    assert!(retries >= 1, "seed must inject at least one transient fault");
    assert_eq!(retries, batch.1.metrics.counter("chaos.scan_retries").get());
}

#[test]
fn chaos_parallel_batch_scan_matches_scalar_exchange() {
    let t = orders(2_100);
    let run = |batch: bool| {
        let c = ctx().with_chaos(ChaosPolicy::new(chaos_scan_cfg()));
        let rows = if batch {
            let build = batch_pipeline(|op, _| op);
            let mut ex =
                ExchangeOp::try_parallel_batch_scan(Arc::clone(&t), 4, build, c.clone()).unwrap();
            collect(&mut ex)
        } else {
            let mut ex = ExchangeOp::parallel_scan(Arc::clone(&t), 4, c.clone());
            collect(&mut ex)
        };
        (rows, c)
    };
    assert_rows_and_bits("chaos exchange", &run(false), &run(true));
}

#[test]
fn batch_workers_recover_from_injected_panics() {
    let cfg = ChaosConfig {
        worker_panic_rate: 0.5,
        worker_max_retries: 8,
        worker_stall_rate: 0.0,
        scan_fault_rate: 0.0,
        shock_rate: 0.0,
        ..ChaosConfig::standard(42)
    };
    let t = orders(1_050);
    let c = ctx().with_chaos(ChaosPolicy::new(cfg));
    let build = batch_pipeline(|op, _| op);
    let mut ex = ExchangeOp::try_parallel_batch_scan(Arc::clone(&t), 4, build, c.clone())
        .expect("panicked workers must recover within the retry bound");
    let out = collect(&mut ex);
    let expected: Vec<Row> = t.iter_rows().collect();
    assert_eq!(out, expected, "recovery must not lose or reorder rows");
}

// ---------------------------------------------------------------------------
// Planner gating: RQP_BATCH switches the physical TableScan pipeline
// ---------------------------------------------------------------------------

#[test]
fn rqp_batch_env_gates_the_physical_scan_pipeline() {
    use rqp::opt::PhysicalPlan;
    use rqp::Catalog;

    let mut catalog = Catalog::new();
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("amt", DataType::Float),
        ("cat", DataType::Str),
    ]);
    let mut t = Table::new("o", schema);
    for i in 0..1_000i64 {
        t.append(vec![
            Value::Int(i),
            Value::Float(i as f64 * 0.5),
            Value::Str(format!("cat{}", i % 7)),
        ]);
    }
    catalog.add_table(t);

    let plan = |filter| PhysicalPlan::TableScan {
        table: "o".into(),
        filter,
        est_rows: 0.0,
        est_cost: 0.0,
    };
    let run = |filter: Option<rqp::Expr>| {
        let c = ctx();
        let rows = plan(filter).build(&catalog, &c, None).unwrap().run();
        let kinds: Vec<String> =
            c.tracer.snapshot().iter().map(|s| s.kind.clone()).collect();
        (rows, kinds, c)
    };

    let simple = Some(col("o.id").lt(lit(600i64)));
    let complex = Some(col("o.id").lt(col("o.amt"))); // no batch form

    // The suite itself runs under RQP_BATCH=1 on the CI batch legs, so pin
    // the gate explicitly for each leg and restore the ambient value after
    // ("0" is not an enabling value, matching the documented default-off).
    let ambient = std::env::var("RQP_BATCH").ok();
    std::env::set_var("RQP_BATCH", "0");
    let scalar = run(simple.clone());
    assert!(scalar.1.iter().all(|k| !k.starts_with("batch")), "gate off must stay scalar");

    std::env::set_var("RQP_BATCH", "1");
    let batch = run(simple);
    let fallback = run(complex.clone());
    std::env::set_var("RQP_BATCH", "0");
    let complex_scalar = run(complex);
    match ambient {
        Some(v) => std::env::set_var("RQP_BATCH", v),
        None => std::env::remove_var("RQP_BATCH"),
    }

    assert_eq!(scalar.0, batch.0, "gated plan must be row-identical");
    assert_eq!(
        scalar.2.clock.breakdown().total().to_bits(),
        batch.2.clock.breakdown().total().to_bits(),
        "gated plan must charge identically"
    );
    assert!(
        batch.1.iter().any(|k| k == "batch_scan"),
        "RQP_BATCH=1 must engage the batch pipeline, got spans {:?}",
        batch.1
    );
    assert_eq!(fallback.0, complex_scalar.0, "non-simple predicates fall back");
    assert!(
        fallback.1.iter().all(|k| !k.starts_with("batch")),
        "fallback must leave no batch spans, got {:?}",
        fallback.1
    );
}
