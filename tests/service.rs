//! Acceptance tests for the concurrent query service (`rqp-server`):
//! the MPL gate, result identity under concurrency, typed deadline aborts
//! that release every workspace grant, cancellation while queued, agreement
//! between the real service and the virtual-time [`WorkloadManager`] on a
//! deterministic trace, and the A06 scoreboard gate.
//!
//! Compiled under `rqp-bench` so it can drive both the service API and the
//! `a06_concurrent_service` experiment end to end.

use rqp::common::RqpError;
use rqp::server::{QueryOptions, QueryService, ServiceConfig};
use rqp::telemetry::scoreboard::{DiffThresholds, Scoreboard};
use rqp::workload::{tpch::TpchParams, Job, TpchDb, WorkloadManager};

fn small_db() -> TpchDb {
    TpchDb::build(TpchParams { lineitem_rows: 4_000, ..Default::default() }, 42)
}

/// A service whose plan cache never invalidates on drift, so repeated
/// submissions of one spec always execute the identical physical plan.
fn service(db: &TpchDb, mpl: usize) -> QueryService {
    QueryService::new(
        &db.catalog,
        ServiceConfig { mpl, memory_rows: 20_000.0, drift_threshold: 1e9, ..Default::default() },
    )
}

#[test]
fn mpl_gate_holds_and_concurrent_results_match_solo() {
    let db = small_db();
    let svc = service(&db, 2);
    let specs = [db.q1(30), db.q3(1, 400), db.q6(100, 0.05, 30)];
    let solo: Vec<_> = specs.iter().map(|q| svc.run_solo(q).expect("solo run")).collect();

    let session = svc.session(0);
    let mut handles = Vec::new();
    for round in 0..2 {
        for (i, q) in specs.iter().enumerate() {
            handles.push((i, session.submit(q.clone(), QueryOptions::default().at(round as f64))));
        }
    }
    for (i, h) in handles {
        let out = h.join().expect("concurrent query failed");
        assert_eq!(out.rows, solo[i].rows, "admitted query diverged from solo execution");
        assert!(out.plan_cached, "second execution should hit the plan cache");
    }
    assert!(svc.peak_concurrency() <= 2, "MPL gate exceeded: {}", svc.peak_concurrency());
    assert!(svc.peak_concurrency() >= 1, "nothing ever ran");
    assert_eq!(svc.reserved(), 0.0, "completed queries must return every grant");
}

#[test]
fn past_deadline_query_aborts_typed_releases_grants_and_spares_others() {
    let db = small_db();
    let svc = service(&db, 2);
    let healthy_spec = db.q3(1, 400);
    let solo = svc.run_solo(&healthy_spec).expect("solo run");

    let session = svc.session(0);
    // The doomed query gets a deadline far below its demand; the healthy one
    // runs beside it and must be untouched by its neighbour's abort.
    let doomed =
        session.submit(db.q5(0, 10, 100), QueryOptions::with_deadline(1.0).reserve(8_000.0));
    let doomed_id = doomed.query();
    let healthy = session.submit(healthy_spec, QueryOptions::default());

    assert_eq!(
        doomed.join().unwrap_err(),
        RqpError::DeadlineExceeded,
        "past-deadline query must abort with the typed error"
    );
    let out = healthy.join().expect("healthy neighbour failed");
    assert_eq!(out.rows, solo.rows, "neighbour's abort corrupted a healthy query");
    assert_eq!(svc.reserved(), 0.0, "aborted query leaked workspace grants");

    let completions = svc.completions();
    let aborted = completions
        .iter()
        .find(|c| c.query == doomed_id)
        .expect("aborted query must still be recorded");
    assert!(aborted.cancel_latency.is_some(), "deadline abort must report its latency");
}

#[test]
fn cancelling_a_queued_query_frees_its_slot() {
    let db = small_db();
    let svc = service(&db, 1);
    let session = svc.session(0);

    svc.pause_admission();
    let queued = session.submit(db.q1(30), QueryOptions::default());
    while svc.queue_depth() != 1 {
        std::thread::yield_now();
    }
    queued.cancel();
    let err = queued.join().unwrap_err();
    assert!(err.is_cancellation(), "expected a cancellation, got {err:?}");
    svc.resume_admission();
    assert_eq!(svc.queue_depth(), 0, "cancelled waiter stayed in the queue");
    assert_eq!(svc.reserved(), 0.0);
}

#[test]
fn service_and_simulator_agree_on_a_deterministic_three_job_trace() {
    let db = small_db();
    let svc = service(&db, 1);
    let specs = [db.q1(30), db.q3(1, 400), db.q6(100, 0.05, 30)];
    // Solo runs pin the demands and warm the plan cache.
    let demands: Vec<f64> =
        specs.iter().map(|q| svc.run_solo(q).expect("solo run").cost).collect();

    // Queue all three behind a paused gate with distinct priorities; with
    // MPL 1 the completion order is then fully determined by the gate.
    svc.pause_admission();
    let priorities = [2u8, 0, 1];
    let handles: Vec<_> = specs
        .iter()
        .zip(priorities)
        .map(|(q, p)| svc.session(p).submit(q.clone(), QueryOptions::default()))
        .collect();
    while svc.queue_depth() != 3 {
        std::thread::yield_now();
    }
    let jobs: Vec<Job> = handles
        .iter()
        .zip(priorities)
        .zip(&demands)
        .map(|((h, priority), &demand)| Job {
            id: h.query() as usize,
            arrival: 0.0,
            demand,
            priority,
            weight: 1.0,
        })
        .collect();
    svc.resume_admission();
    for h in handles {
        assert!(h.join().is_ok());
    }
    let sim = WorkloadManager::new(1, 1.0).simulate(&jobs);
    let mut by_finish: Vec<_> = sim.jobs.clone();
    by_finish.sort_by(|a, b| a.finish.total_cmp(&b.finish));
    let simulated: Vec<u64> = by_finish.iter().map(|j| j.id as u64).collect();

    assert_eq!(
        svc.completion_order(),
        simulated,
        "real service and virtual-time simulator disagree on completion order"
    );
}

#[test]
fn a06_runs_and_scoreboard_v4_gates_the_service_metrics() {
    // Redirect the harness output to a scratch dir; this test is the only
    // one in this binary that touches RQP_EXP_OUTPUT.
    let dir = std::env::temp_dir().join(format!("rqp_a06_gate_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("RQP_EXP_OUTPUT", &dir);
    let summary = rqp_bench::a06_concurrent_service(true);
    std::env::remove_var("RQP_EXP_OUTPUT");
    assert!(summary.contains("A06"), "experiment produced no summary");

    let board = Scoreboard::from_dir(&dir).expect("fold the a06 run report");
    let entry = board.entries.get("a06_concurrent_service").expect("a06 entry");
    assert!(entry.tail_amplification.is_finite() && entry.tail_amplification >= 1.0);
    assert!(entry.admission_wait.is_finite() && entry.admission_wait >= 0.0);

    // The diff gate must trip when either service metric degrades past its
    // threshold relative to this run as baseline.
    let mut worse = board.clone();
    {
        let e = worse.entries.get_mut("a06_concurrent_service").unwrap();
        e.tail_amplification += 1.0;
        e.admission_wait = e.admission_wait * 2.0 + 5.0;
    }
    let regressions = board.diff(&worse, &DiffThresholds::default());
    let metrics: Vec<&str> = regressions.iter().map(|r| r.metric.as_str()).collect();
    assert!(metrics.contains(&"tail_amplification"), "tail amplification gate missing");
    assert!(metrics.contains(&"admission_wait"), "admission wait gate missing");

    // And the clean self-diff must pass.
    assert!(board.diff(&board, &DiffThresholds::default()).is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}
