//! Integration tests of the robustness metrics pipeline: the selectivity
//! sweep (smoothness), extrinsic-variability decomposition, plan diagrams,
//! and the black-hat estimation traps — each wired through the real engine.

use rqp::metrics::{
    cardinality_error_geomean, metric1, smoothness, PlanStability, VariabilityReport,
};
use rqp::opt::plandiagram::{AnorexicReduction, PlanDiagram};
use rqp::opt::{plan, PlannerConfig};
use rqp::stats::{CardEstimator, OracleEstimator, StatsEstimator, TableStatsRegistry};
use rqp::workload::{tpch::TpchParams, BlackHatDb, StarDb, TpchDb};
use rqp::workload::star::StarParams;
use rqp::{Database, ExecContext};
use std::rc::Rc;

#[test]
fn selectivity_sweep_smoothness_ranks_access_paths() {
    // The E07 shape: a forced unclustered-index plan has a wildly varying
    // P(q) across the sweep; the scan is flat; the optimizer's choice should
    // be smooth-ish because it switches at the crossover.
    let db = TpchDb::build(TpchParams { lineitem_rows: 6000, ..Default::default() }, 7);
    let mut database = Database::from_catalog(db.catalog.clone());
    database.analyze();
    let sweep: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();

    let mut chosen_costs = Vec::new();
    for &sel in &sweep {
        let r = database.execute(&db.range_query(sel)).unwrap();
        chosen_costs.push(r.cost);
    }
    // P(q) = |optimal - measured|; treat the optimizer's cost as measured
    // and the per-point minimum of (scan, chosen) as optimal proxy.
    let scan_cost = {
        let r = database.execute(&db.range_query(1.0)).unwrap();
        r.cost
    };
    let gaps: Vec<f64> = chosen_costs
        .iter()
        .map(|&c| (c - c.min(scan_cost)).abs() + 1.0)
        .collect();
    let s = smoothness(&gaps);
    assert!(s < 2.0, "optimizer sweep should not have wild cliffs, S(Q) = {s}");
    // Costs grow monotonically-ish with selectivity.
    assert!(chosen_costs.last().unwrap() >= &chosen_costs[0]);
}

#[test]
fn extrinsic_variability_zero_for_oracle_planning() {
    // Environments = different memory budgets. Planning with true
    // cardinalities per environment == the ideal plan, so extrinsic ≈ 0.
    let db = TpchDb::build(TpchParams { lineitem_rows: 3000, ..Default::default() }, 9);
    let oracle = OracleEstimator::new(Rc::new(db.catalog.clone()));
    let spec = db.q3(1, 1200);
    let mut pairs = Vec::new();
    for mem in [500.0, 5_000.0, f64::INFINITY] {
        let cfg = PlannerConfig { memory_rows: mem, ..Default::default() };
        let p = plan(&spec, &db.catalog, &oracle, cfg).unwrap();
        let ctx = ExecContext::with_memory(mem);
        p.build(&db.catalog, &ctx, None).unwrap().run();
        let cost = ctx.clock.now();
        pairs.push((cost, cost));
    }
    let report = VariabilityReport::from_costs(&pairs);
    assert!(report.extrinsic() < 1e-9);
}

#[test]
fn rigid_plan_shows_extrinsic_variability() {
    // The same fixed plan executed across environments, vs re-planned ideal.
    let db = TpchDb::build(TpchParams { lineitem_rows: 3000, ..Default::default() }, 9);
    let oracle = OracleEstimator::new(Rc::new(db.catalog.clone()));
    let spec = db.q3(1, 1200);
    let rigid = plan(
        &spec,
        &db.catalog,
        &oracle,
        PlannerConfig { memory_rows: f64::INFINITY, ..Default::default() },
    )
    .unwrap();
    let mut pairs = Vec::new();
    for mem in [100.0, 1_000.0, f64::INFINITY] {
        let ctx = ExecContext::with_memory(mem);
        rigid.build(&db.catalog, &ctx, None).unwrap().run();
        let rigid_cost = ctx.clock.now();
        let cfg = PlannerConfig { memory_rows: mem, ..Default::default() };
        let ideal = plan(&spec, &db.catalog, &oracle, cfg).unwrap();
        let ctx = ExecContext::with_memory(mem);
        ideal.build(&db.catalog, &ctx, None).unwrap().run();
        pairs.push((rigid_cost, ctx.clock.now()));
    }
    let report = VariabilityReport::from_costs(&pairs);
    assert!(report.worst_divergence() >= 1.0);
    // The rigid plan can never beat per-environment ideals on average.
    assert!(report.extrinsic() >= 0.0);
}

#[test]
fn plan_diagram_reduction_end_to_end() {
    let star = StarDb::build(StarParams { fact_rows: 8000, ..Default::default() }, 3);
    let reg = Rc::new(TableStatsRegistry::analyze_catalog(&star.catalog, 16));
    let est = StatsEstimator::new(reg);
    let grid: Vec<f64> = (1..=6).map(|i| (i as f64 / 6.0).powi(3).max(1e-4)).collect();
    let d = PlanDiagram::generate(
        &star.diagram_query(),
        &star.catalog,
        &est,
        PlannerConfig::default(),
        "fact",
        "d1",
        &grid,
    )
    .unwrap();
    let red = AnorexicReduction::reduce(&d, 0.2);
    assert!(red.plan_count() <= d.plan_count());
    assert!(red.max_inflation <= 1.2 + 1e-9);
}

#[test]
fn blackhat_traps_quantified_with_metrics() {
    let bh = BlackHatDb::build(4000, 99);
    let est = StatsEstimator::new(Rc::new(TableStatsRegistry::analyze_catalog(
        &bh.catalog,
        32,
    )));
    let mut pairs = Vec::new();
    for trap in bh.traps() {
        if let (Some(t), Some(p)) = (&trap.target_table, &trap.pred) {
            let guess = est.filtered_rows(t, p);
            let truth = bh.true_cardinality(&trap) as f64;
            pairs.push((guess, truth));
        }
    }
    assert!(pairs.len() >= 4);
    // The geometric mean is dragged down by the traps a fine equi-depth
    // histogram defuses (the skew pair); the correlation traps still hurt.
    let c_q = cardinality_error_geomean(&pairs);
    assert!(c_q > 0.1, "the trap suite must hurt: C(Q) = {c_q:.3}");
    let worst = pairs
        .iter()
        .map(|&(e, a)| (a - e).abs() / a.max(1.0))
        .fold(0.0f64, f64::max);
    assert!(worst > 0.85, "the pseudo-key trap must be near-total: {worst:.2}");
    let m1 = metric1(&pairs);
    assert!(m1 > 1.0, "Metric1 = {m1:.2}");
}

#[test]
fn plan_stability_tracks_real_plans() {
    let db = TpchDb::build(TpchParams { lineitem_rows: 2000, ..Default::default() }, 31);
    let mut database = Database::from_catalog(db.catalog.clone());
    database.analyze();
    let mut track = PlanStability::new();
    for sel in [0.001, 0.002, 0.5, 0.6] {
        let r = database.execute(&db.range_query(sel)).unwrap();
        track.record(r.plan, r.cost);
    }
    // Narrow range → index; wide → scan: at least one flip expected.
    assert!(track.distinct_plans() >= 2, "crossover should flip the plan");
    assert!(track.flips() >= 1);
}

#[test]
fn inflated_span_actuals_trip_the_scoreboard_diff_gate() {
    // The regression gate behind `rqp-report diff`: take a healthy run's
    // report, inflate the observed actuals on its spans (a plant whose
    // estimates went stale), and the q-error threshold must fire.
    use rqp::common::CostClock;
    use rqp::telemetry::{DiffThresholds, MetricsRegistry, RunReport, Scoreboard, Tracer};

    let make_report = |actual_rows: u64| -> RunReport {
        let clock = CostClock::default_clock();
        let tracer = Tracer::new();
        let span = tracer.open("scan", &clock);
        span.set_est_rows(100.0);
        clock.charge_seq_rows(actual_rows as f64);
        for _ in 0..actual_rows {
            span.produced(&clock);
        }
        span.close(&clock);
        let mut report = RunReport::new("e01_probe");
        report.cost = clock.breakdown();
        report.spans = tracer.snapshot();
        report.metrics = MetricsRegistry::new().snapshot();
        report
    };

    let baseline = Scoreboard::fold(&[make_report(120)]);
    let healthy = Scoreboard::fold(&[make_report(120)]);
    assert!(
        baseline.diff(&healthy, &DiffThresholds::default()).is_empty(),
        "identical runs must pass the gate"
    );

    let inflated = Scoreboard::fold(&[make_report(50_000)]);
    let regressions = baseline.diff(&inflated, &DiffThresholds::default());
    assert!(
        regressions.iter().any(|r| r.metric == "max_q_error"),
        "100x-inflated actuals must trip the q-error threshold, got {regressions:?}"
    );
}
