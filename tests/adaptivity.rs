//! Integration tests of the adaptive machinery: POP under injected error,
//! LEO convergence across epochs, eddies and A-Greedy under drift, adaptive
//! indexing equivalence.

use rqp::adaptive::pop::{run_standard, run_with_pop, EstimatorWrapper, PopConfig};
use rqp::adaptive::run_with_feedback;
use rqp::exec::{
    collect, AGreedyFilterOp, CrackerScanOp, EddyFilterOp, ExecContext, Operator, RoutingPolicy,
    TableScanOp,
};
use rqp::expr::{col, lit};
use rqp::opt::PlannerConfig;
use rqp::stats::{
    FeedbackEstimator, FeedbackRepo, LyingEstimator, StatsEstimator, TableStatsRegistry,
};
use rqp::workload::{tpch::TpchParams, TpchDb};
use rqp::QuerySpec;
use std::cell::RefCell;
use std::rc::Rc;

fn setup() -> (TpchDb, TableStatsRegistry) {
    let db = TpchDb::build(TpchParams { lineitem_rows: 6000, ..Default::default() }, 606);
    let reg = TableStatsRegistry::analyze_catalog(&db.catalog, 32);
    (db, reg)
}

#[test]
fn pop_recovers_from_underestimates_across_queries() {
    let (db, reg) = setup();
    let wrap: Box<EstimatorWrapper<'_>> = Box::new(|e| {
        Box::new(LyingEstimator::new(e).with_table_factor("lineitem", 0.002))
    });
    let queries = vec![db.q3(0, 1000), db.q5(0, 24, 100)];
    for q in &queries {
        let ctx_std = ExecContext::unbounded();
        let (rows_std, _) =
            run_standard(q, &db.catalog, &reg, wrap.as_ref(), PlannerConfig::default(), &ctx_std)
                .unwrap();
        let ctx_pop = ExecContext::unbounded();
        let report = run_with_pop(
            q,
            &db.catalog,
            &reg,
            wrap.as_ref(),
            PlannerConfig::default(),
            PopConfig::default(),
            &ctx_pop,
        )
        .unwrap();
        assert_eq!(rows_std.len(), report.rows.len(), "POP must not change answers");
    }
}

#[test]
fn leo_qerror_decays() {
    // Under-estimate regime (the common disaster); damped smoothing avoids
    // the correction/re-plan ping-pong LEO is known for under over-estimates.
    let (db, reg) = setup();
    let repo = Rc::new(RefCell::new(FeedbackRepo::new(0.7)));
    let lying = LyingEstimator::new(Box::new(StatsEstimator::new(Rc::new(reg))))
        .with_table_factor("lineitem", 1.0 / 30.0);
    let est = FeedbackEstimator::new(Box::new(lying), Rc::clone(&repo));
    let q = db.q3(1, 1400);
    let ctx = ExecContext::unbounded();
    let mut qerrs = Vec::new();
    for _ in 0..5 {
        let r =
            run_with_feedback(&q, &db.catalog, &est, &repo, PlannerConfig::default(), &ctx)
                .unwrap();
        qerrs.push(r.max_q_error());
    }
    let best_later = qerrs[1..].iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        best_later < qerrs[0] / 3.0,
        "q-error must improve substantially: {qerrs:?}"
    );
    assert!(
        qerrs.last().unwrap() < &qerrs[0],
        "final epoch must beat the cold start: {qerrs:?}"
    );
}

#[test]
fn eddy_and_static_filters_agree_under_drift() {
    let (db, _) = setup();
    let preds = vec![
        col("lineitem.quantity").lt(lit(20i64)),
        col("lineitem.shipdate").lt(lit(800i64)),
        col("lineitem.returnflag").eq(lit(1i64)),
    ];
    let ctx = ExecContext::unbounded();
    let scan = || -> Box<dyn Operator> {
        Box::new(TableScanOp::new(db.catalog.table("lineitem").unwrap(), ctx.clone()))
    };
    let mut eddy = EddyFilterOp::new(
        scan(),
        &preds,
        RoutingPolicy::Lottery { decay: 0.99 },
        5,
        ctx.clone(),
    )
    .unwrap();
    let eddy_rows = collect(&mut eddy);
    let mut agreedy =
        AGreedyFilterOp::new(scan(), &preds, 100, 0.1, 50, 5, ctx.clone()).unwrap();
    let ag_rows = collect(&mut agreedy);
    // Ground truth via a composite filter.
    let truth = db
        .catalog
        .table("lineitem")
        .unwrap()
        .count_where(&rqp::Expr::conjoin(preds))
        .unwrap();
    assert_eq!(eddy_rows.len(), truth);
    assert_eq!(ag_rows.len(), truth);
}

#[test]
fn cracker_converges_and_matches_scan_results() {
    let (db, _) = setup();
    let mut catalog = db.catalog.clone();
    catalog.create_cracker("lineitem", "shipdate").unwrap();
    let ctx = ExecContext::unbounded();
    let mut first_cost = 0.0;
    let mut last_cost = 0.0;
    for i in 0..10 {
        let lo = (i * 137) % 2000;
        let hi = lo + 200;
        let before = ctx.clock.now();
        let mut scan = CrackerScanOp::new(
            catalog.cracker("lineitem", "shipdate").unwrap(),
            catalog.table("lineitem").unwrap(),
            lo,
            hi,
            ctx.clone(),
        );
        let rows = collect(&mut scan);
        let cost = ctx.clock.now() - before;
        if i == 0 {
            first_cost = cost;
        }
        last_cost = cost;
        let truth = catalog
            .table("lineitem")
            .unwrap()
            .count_where(&col("lineitem.shipdate").between(lo, hi))
            .unwrap();
        assert_eq!(rows.len(), truth, "query {i}");
    }
    assert!(
        last_cost < first_cost / 2.0,
        "cracking must converge: first {first_cost:.0}, last {last_cost:.0}"
    );
}

#[test]
fn pop_with_accurate_stats_has_bounded_overhead() {
    let (db, reg) = setup();
    let q = db.q3(2, 1200);
    let wrap: Box<EstimatorWrapper<'_>> = Box::new(|e| e);
    let ctx_std = ExecContext::unbounded();
    let (_, cost_std) =
        run_standard(&q, &db.catalog, &reg, wrap.as_ref(), PlannerConfig::default(), &ctx_std)
            .unwrap();
    let ctx_pop = ExecContext::unbounded();
    let report = run_with_pop(
        &q,
        &db.catalog,
        &reg,
        wrap.as_ref(),
        PlannerConfig::default(),
        PopConfig::default(),
        &ctx_pop,
    )
    .unwrap();
    assert_eq!(report.reoptimizations(), 0);
    // CHECK materialization overhead exists, but must be modest.
    assert!(
        report.total_cost < cost_std * 1.6,
        "POP overhead too high: {} vs {}",
        report.total_cost,
        cost_std
    );
}

#[test]
fn feedback_survives_across_query_shapes() {
    let (db, reg) = setup();
    let repo = Rc::new(RefCell::new(FeedbackRepo::new(1.0)));
    let est = FeedbackEstimator::new(
        Box::new(StatsEstimator::new(Rc::new(reg))),
        Rc::clone(&repo),
    );
    let ctx = ExecContext::unbounded();
    let q1 = QuerySpec::new()
        .table("lineitem")
        .filter("lineitem", col("lineitem.quantity").lt(lit(10i64)));
    run_with_feedback(&q1, &db.catalog, &est, &repo, PlannerConfig::default(), &ctx).unwrap();
    let learned = repo.borrow().len();
    assert!(learned >= 1);
    // A different query adds different signatures, never clobbers.
    let q2 = db.q6(0, 0.05, 30);
    run_with_feedback(&q2, &db.catalog, &est, &repo, PlannerConfig::default(), &ctx).unwrap();
    assert!(repo.borrow().len() >= learned);
}
