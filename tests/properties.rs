//! Randomized property tests over the core invariants:
//!
//! * all join algorithms compute the same multiset;
//! * cracking / adaptive merging / index / scan agree on every range;
//! * expression rewrites preserve semantics on arbitrary rows;
//! * the cracker invariant survives arbitrary query/update interleavings;
//! * sort output is ordered and a permutation of its input;
//! * max-entropy distributions honor their constraints.
//!
//! Each property draws its cases from a seeded in-tree RNG (the workspace is
//! hermetic — no proptest), so every failure is exactly reproducible: the
//! case index is part of the assertion message, and rerunning the test
//! replays the identical inputs.

use rqp::common::rng::{child_seed, seeded};
use rqp::exec::{collect, ExecContext, GJoinOp, HashJoinOp, MergeJoinOp, Operator, SortOp};
use rqp::expr::{col, lit, rewrites};
use rqp::stats::MaxEntSolver;
use rqp::storage::{AdaptiveMergeIndex, CrackerColumn, MultiIndex, Table};
use rqp::{DataType, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Cases per property — matches the proptest budget this file replaced.
const CASES: u64 = 48;

/// The RNG for case `i` of property `label`: independent streams per case so
/// properties can be tightened or reordered without reshuffling inputs.
fn case_rng(label: &str, i: u64) -> StdRng {
    seeded(child_seed(0x5eed ^ i, label))
}

fn int_vec(rng: &mut StdRng, lo: i64, hi: i64, max_len: usize) -> Vec<i64> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Literal row source for operator property tests.
struct RowsOp {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
}

impl RowsOp {
    fn boxed(name: &str, keys: &[i64]) -> Box<dyn Operator> {
        let schema = Schema::from_pairs(&[(
            Box::leak(format!("{name}.k").into_boxed_str()) as &str,
            DataType::Int,
        )]);
        Box::new(RowsOp {
            schema,
            rows: keys
                .iter()
                .map(|&k| vec![Value::Int(k)])
                .collect::<Vec<_>>()
                .into_iter(),
        })
    }
}

impl Operator for RowsOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn next(&mut self) -> Option<Row> {
        self.rows.next()
    }
}

fn multiset(rows: Vec<Row>) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

#[test]
fn join_algorithms_agree() {
    for case in 0..CASES {
        let mut rng = case_rng("join-agree", case);
        let left = int_vec(&mut rng, 0, 20, 60);
        let right = int_vec(&mut rng, 0, 20, 60);
        let ctx = ExecContext::unbounded();
        let hash = {
            let mut j = HashJoinOp::new(
                RowsOp::boxed("l", &left),
                RowsOp::boxed("r", &right),
                &["l.k"],
                &["r.k"],
                ctx.clone(),
            )
            .unwrap();
            multiset(collect(&mut j))
        };
        let merge = {
            let mut ls = left.clone();
            ls.sort_unstable();
            let mut rs = right.clone();
            rs.sort_unstable();
            let mut j = MergeJoinOp::new(
                RowsOp::boxed("l", &ls),
                RowsOp::boxed("r", &rs),
                &["l.k"],
                &["r.k"],
                ctx.clone(),
            )
            .unwrap();
            multiset(collect(&mut j))
        };
        let gjoin = {
            let mut j = GJoinOp::new(
                RowsOp::boxed("l", &left),
                RowsOp::boxed("r", &right),
                &["l.k"],
                &["r.k"],
                false,
                false,
                None,
                ctx,
            )
            .unwrap();
            multiset(collect(&mut j))
        };
        assert_eq!(hash, merge, "case {case}: hash vs merge");
        assert_eq!(hash, gjoin, "case {case}: hash vs gjoin");
        // Sanity: cardinality equals the key-count convolution.
        let expected: usize = (0..20)
            .map(|k| {
                left.iter().filter(|&&x| x == k).count()
                    * right.iter().filter(|&&x| x == k).count()
            })
            .sum();
        assert_eq!(hash.len(), expected, "case {case}: cardinality");
    }
}

#[test]
fn adaptive_indexes_agree_with_filter() {
    for case in 0..CASES {
        let mut rng = case_rng("adaptive-index", case);
        let mut keys = int_vec(&mut rng, -50, 50, 200);
        if keys.is_empty() {
            keys.push(rng.gen_range(-50i64..50));
        }
        let n_ranges = rng.gen_range(1usize..12);
        let mut cracker = CrackerColumn::new(&keys);
        let mut amerge = AdaptiveMergeIndex::new(&keys, 16);
        for _ in 0..n_ranges {
            let lo = rng.gen_range(-60i64..60);
            let hi = lo + rng.gen_range(0i64..30);
            let mut expected: Vec<usize> = keys
                .iter()
                .enumerate()
                .filter(|(_, &k)| k >= lo && k <= hi)
                .map(|(i, _)| i)
                .collect();
            expected.sort_unstable();
            let (mut got_c, _) = cracker.query(lo, hi);
            got_c.sort_unstable();
            assert_eq!(got_c, expected, "case {case}: cracker [{lo},{hi}]");
            assert!(cracker.check_invariant(), "case {case}: cracker invariant");
            let (mut got_a, _) = amerge.query(lo, hi);
            got_a.sort_unstable();
            assert_eq!(got_a, expected, "case {case}: amerge [{lo},{hi}]");
            assert!(amerge.check_invariant(), "case {case}: amerge invariant");
        }
    }
}

#[test]
fn cracker_survives_interleaved_updates() {
    for case in 0..CASES {
        let mut rng = case_rng("cracker-updates", case);
        let mut keys = int_vec(&mut rng, 0, 100, 100);
        if keys.is_empty() {
            keys.push(rng.gen_range(0i64..100));
        }
        let n_ops = rng.gen_range(1usize..20);
        let mut cracker = CrackerColumn::new(&keys);
        // Shadow model: multiset of (key, rowid).
        let mut model: Vec<(i64, usize)> =
            keys.iter().copied().enumerate().map(|(i, k)| (k, i)).collect();
        let mut next_rid = keys.len();
        for _ in 0..n_ops {
            let op = rng.gen_range(0u8..3);
            let a = rng.gen_range(0i64..100);
            let b = rng.gen_range(0i64..20);
            match op {
                0 => {
                    // insert
                    cracker.insert(a, next_rid);
                    model.push((a, next_rid));
                    next_rid += 1;
                }
                1 => {
                    // delete first model entry with key a, if any
                    if let Some(pos) = model.iter().position(|&(k, _)| k == a) {
                        let (k, rid) = model.remove(pos);
                        cracker.delete(k, rid);
                    }
                }
                _ => {
                    let (lo, hi) = (a, a + b);
                    let (mut got, _) = cracker.query(lo, hi);
                    got.sort_unstable();
                    let mut want: Vec<usize> = model
                        .iter()
                        .filter(|&&(k, _)| k >= lo && k <= hi)
                        .map(|&(_, r)| r)
                        .collect();
                    want.sort_unstable();
                    assert_eq!(got, want, "case {case}: query [{lo},{hi}]");
                    assert!(cracker.check_invariant(), "case {case}: invariant");
                }
            }
        }
        // Final full query flushes all pending updates.
        let (mut got, _) = cracker.query(i64::MIN, i64::MAX);
        got.sort_unstable();
        let mut want: Vec<usize> = model.iter().map(|&(_, r)| r).collect();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}: final full query");
    }
}

#[test]
fn multi_index_agrees_with_filter() {
    for case in 0..CASES {
        let mut rng = case_rng("multi-index", case);
        let n_rows = rng.gen_range(1usize..150);
        let rows: Vec<(i64, i64)> = (0..n_rows)
            .map(|_| (rng.gen_range(0i64..8), rng.gen_range(0i64..12)))
            .collect();
        let a_eq = rng.gen_range(0i64..8);
        let b_lo = rng.gen_range(0i64..12);
        let b_hi = b_lo + rng.gen_range(0i64..6);
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for &(a, b) in &rows {
            t.append(vec![Value::Int(a), Value::Int(b)]);
        }
        let ix = MultiIndex::build("ix", &t, &["a", "b"]).unwrap();
        let mut got = ix
            .lookup(&[Value::Int(a_eq)], Some(&Value::Int(b_lo)), Some(&Value::Int(b_hi)))
            .unwrap();
        got.sort_unstable();
        let want: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| a == a_eq && b >= b_lo && b <= b_hi)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, want, "case {case}: range lookup");
        // Pure-prefix lookup is the union over all b.
        let mut all = ix.lookup(&[Value::Int(a_eq)], None, None).unwrap();
        all.sort_unstable();
        let want_all: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, &(a, _))| a == a_eq)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(all, want_all, "case {case}: prefix lookup");
    }
}

#[test]
fn rewrites_preserve_predicate_semantics() {
    for case in 0..CASES {
        let mut rng = case_rng("rewrites", case);
        let mut a_vals = int_vec(&mut rng, -10, 10, 30);
        if a_vals.is_empty() {
            a_vals.push(rng.gen_range(-10i64..10));
        }
        let lo = rng.gen_range(-10i64..5);
        let width = rng.gen_range(0i64..10);
        let n_list = rng.gen_range(1usize..4);
        let in_list: Vec<i64> = (0..n_list).map(|_| rng.gen_range(-10i64..10)).collect();
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let base = col("a")
            .between(lo, lo + width)
            .or(col("a").in_list(in_list.iter().map(|&v| Value::Int(v)).collect()))
            .and(col("a").ne(lit(0i64)).not().not());
        for variant in rewrites::variants(&base) {
            for &v in &a_vals {
                let row = vec![Value::Int(v)];
                assert_eq!(
                    base.eval_bool(&row, &schema).unwrap(),
                    variant.eval_bool(&row, &schema).unwrap(),
                    "case {case}: variant {variant} disagrees at a={v}"
                );
            }
        }
    }
}

#[test]
fn sort_is_ordered_permutation() {
    for case in 0..CASES {
        let mut rng = case_rng("sort-perm", case);
        let keys = int_vec(&mut rng, -1000, 1000, 300);
        let ctx = ExecContext::unbounded();
        let mut s = SortOp::asc(RowsOp::boxed("t", &keys), &["t.k"], ctx).unwrap();
        let out = collect(&mut s);
        assert_eq!(out.len(), keys.len(), "case {case}: length");
        assert!(
            out.windows(2).all(|w| w[0][0] <= w[1][0]),
            "case {case}: ordering"
        );
        let mut sorted_in = keys.clone();
        sorted_in.sort_unstable();
        let got: Vec<i64> = out.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(got, sorted_in, "case {case}: permutation");
    }
}

#[test]
fn maxent_honors_constraints() {
    for case in 0..CASES {
        let mut rng = case_rng("maxent", case);
        let s1 = rng.gen_range(0.05f64..0.95);
        let s2 = rng.gen_range(0.05f64..0.95);
        let mut solver = MaxEntSolver::new(2).unwrap();
        solver.add_constraint(0b01, s1).unwrap();
        solver.add_constraint(0b10, s2).unwrap();
        let d = solver.solve(300, 1e-10);
        assert!(
            (d.selectivity(0b01) - s1).abs() < 1e-4,
            "case {case}: s1 constraint"
        );
        assert!(
            (d.selectivity(0b10) - s2).abs() < 1e-4,
            "case {case}: s2 constraint"
        );
        // Without joint knowledge, ME = independence.
        assert!(
            (d.selectivity(0b11) - s1 * s2).abs() < 1e-3,
            "case {case}: independence"
        );
    }
}

#[test]
fn memory_fluctuation_mid_plan_is_observed() {
    // A deterministic edge probe: changing the governor budget between
    // pipeline stages affects the later stage's spill.
    let mut rng = seeded(8);
    let keys: Vec<i64> = (0..5000).map(|_| rng.gen_range(0..5000)).collect();
    let ctx = ExecContext::with_memory(f64::INFINITY);
    let mut sort = SortOp::asc(RowsOp::boxed("t", &keys), &["t.k"], ctx.clone()).unwrap();
    // Shrink the workspace *before* the sort materializes.
    ctx.memory.set_budget(100.0);
    let out = collect(&mut sort);
    assert_eq!(out.len(), 5000);
    assert!(ctx.clock.breakdown().spill > 0.0, "shrunk budget must be seen");
}

/// A randomized run report: a few estimated spans, paper-metric gauges, and
/// an adaptive event, all drawn from the case RNG.
fn random_report(name: &str, rng: &mut StdRng) -> rqp::telemetry::RunReport {
    use rqp::common::CostClock;
    use rqp::telemetry::{MetricsRegistry, Tracer};
    let clock = CostClock::default_clock();
    let tracer = Tracer::new();
    let reg = MetricsRegistry::new();
    for i in 0..rng.gen_range(1..5usize) {
        let span = tracer.open("scan", &clock);
        span.set_est_rows(rng.gen_range(1.0f64..1000.0));
        clock.charge_seq_rows(rng.gen_range(1.0f64..50.0));
        for _ in 0..rng.gen_range(1..200u64) {
            span.produced(&clock);
        }
        if i == 0 {
            span.record_event(&clock, "pop.violation", "probe");
        }
        span.close(&clock);
    }
    use rqp::telemetry::scoreboard::samples;
    for k in 0..rng.gen_range(2..6usize) {
        reg.gauge(&format!("{}{k:03}", samples::PERF_GAP_PREFIX))
            .set(rng.gen_range(0.0f64..100.0));
        let ideal = rng.gen_range(10.0f64..100.0);
        reg.gauge(&format!("{}{k:03}{}", samples::ENV_PREFIX, samples::ENV_CHOSEN))
            .set(ideal * rng.gen_range(1.0f64..3.0));
        reg.gauge(&format!("{}{k:03}{}", samples::ENV_PREFIX, samples::ENV_IDEAL))
            .set(ideal);
    }
    let mut report = rqp::telemetry::RunReport::new(name);
    report.cost = clock.breakdown();
    report.spans = tracer.snapshot();
    report.metrics = reg.snapshot();
    report
}

#[test]
fn scoreboard_folding_is_order_independent() {
    use rqp::telemetry::Scoreboard;
    for case in 0..CASES {
        let mut rng = case_rng("scoreboard-fold", case);
        let mut reports = Vec::new();
        for e in 0..rng.gen_range(2..5usize) {
            let name = format!("e{e:02}_probe");
            for _ in 0..rng.gen_range(1..4usize) {
                reports.push(random_report(&name, &mut rng));
            }
        }
        let reference = Scoreboard::fold(&reports).to_json().pretty();
        // Fisher–Yates with the case RNG: any permutation must fold to a
        // byte-identical scoreboard.
        for _ in 0..3 {
            for i in (1..reports.len()).rev() {
                let j = rng.gen_range(0..=i);
                reports.swap(i, j);
            }
            let permuted = Scoreboard::fold(&reports).to_json().pretty();
            assert_eq!(permuted, reference, "case {case}: fold must commute");
        }
    }
}
