//! Property-based tests (proptest) over the core invariants:
//!
//! * all join algorithms compute the same multiset;
//! * cracking / adaptive merging / index / scan agree on every range;
//! * expression rewrites preserve semantics on arbitrary rows;
//! * the cracker invariant survives arbitrary query/update interleavings;
//! * sort output is ordered and a permutation of its input;
//! * max-entropy distributions honor their constraints.

use proptest::prelude::*;
use rqp::common::rng::seeded;
use rqp::exec::{collect, ExecContext, GJoinOp, HashJoinOp, MergeJoinOp, Operator, SortOp};
use rqp::expr::{col, lit, rewrites};
use rqp::stats::MaxEntSolver;
use rqp::storage::{AdaptiveMergeIndex, CrackerColumn, MultiIndex, Table};
use rqp::{DataType, Row, Schema, Value};
use rand::Rng;

/// Literal row source for operator property tests.
struct RowsOp {
    schema: Schema,
    rows: std::vec::IntoIter<Row>,
}

impl RowsOp {
    fn boxed(name: &str, keys: &[i64]) -> Box<dyn Operator> {
        let schema = Schema::from_pairs(&[(
            Box::leak(format!("{name}.k").into_boxed_str()) as &str,
            DataType::Int,
        )]);
        Box::new(RowsOp {
            schema,
            rows: keys
                .iter()
                .map(|&k| vec![Value::Int(k)])
                .collect::<Vec<_>>()
                .into_iter(),
        })
    }
}

impl Operator for RowsOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn next(&mut self) -> Option<Row> {
        self.rows.next()
    }
}

fn multiset(rows: Vec<Row>) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn join_algorithms_agree(
        left in prop::collection::vec(0i64..20, 0..60),
        right in prop::collection::vec(0i64..20, 0..60),
    ) {
        let ctx = ExecContext::unbounded();
        let hash = {
            let mut j = HashJoinOp::new(
                RowsOp::boxed("l", &left), RowsOp::boxed("r", &right),
                &["l.k"], &["r.k"], ctx.clone()).unwrap();
            multiset(collect(&mut j))
        };
        let merge = {
            let mut ls = left.clone();
            ls.sort_unstable();
            let mut rs = right.clone();
            rs.sort_unstable();
            let mut j = MergeJoinOp::new(
                RowsOp::boxed("l", &ls), RowsOp::boxed("r", &rs),
                &["l.k"], &["r.k"], ctx.clone()).unwrap();
            multiset(collect(&mut j))
        };
        let gjoin = {
            let mut j = GJoinOp::new(
                RowsOp::boxed("l", &left), RowsOp::boxed("r", &right),
                &["l.k"], &["r.k"], false, false, None, ctx).unwrap();
            multiset(collect(&mut j))
        };
        prop_assert_eq!(&hash, &merge);
        prop_assert_eq!(&hash, &gjoin);
        // Sanity: cardinality equals the key-count convolution.
        let expected: usize = (0..20)
            .map(|k| {
                left.iter().filter(|&&x| x == k).count()
                    * right.iter().filter(|&&x| x == k).count()
            })
            .sum();
        prop_assert_eq!(hash.len(), expected);
    }

    #[test]
    fn adaptive_indexes_agree_with_filter(
        keys in prop::collection::vec(-50i64..50, 1..200),
        ranges in prop::collection::vec((-60i64..60, 0i64..30), 1..12),
    ) {
        let mut cracker = CrackerColumn::new(&keys);
        let mut amerge = AdaptiveMergeIndex::new(&keys, 16);
        for &(lo, width) in &ranges {
            let hi = lo + width;
            let mut expected: Vec<usize> = keys.iter().enumerate()
                .filter(|(_, &k)| k >= lo && k <= hi)
                .map(|(i, _)| i)
                .collect();
            expected.sort_unstable();
            let (mut got_c, _) = cracker.query(lo, hi);
            got_c.sort_unstable();
            prop_assert_eq!(&got_c, &expected);
            prop_assert!(cracker.check_invariant());
            let (mut got_a, _) = amerge.query(lo, hi);
            got_a.sort_unstable();
            prop_assert_eq!(&got_a, &expected);
            prop_assert!(amerge.check_invariant());
        }
    }

    #[test]
    fn cracker_survives_interleaved_updates(
        keys in prop::collection::vec(0i64..100, 1..100),
        ops in prop::collection::vec((0u8..3, 0i64..100, 0i64..20), 1..20),
    ) {
        let mut cracker = CrackerColumn::new(&keys);
        // Shadow model: multiset of (key, rowid).
        let mut model: Vec<(i64, usize)> =
            keys.iter().copied().enumerate().map(|(i, k)| (k, i)).collect();
        let mut next_rid = keys.len();
        for &(op, a, b) in &ops {
            match op {
                0 => {
                    // insert
                    cracker.insert(a, next_rid);
                    model.push((a, next_rid));
                    next_rid += 1;
                }
                1 => {
                    // delete first model entry with key a, if any
                    if let Some(pos) = model.iter().position(|&(k, _)| k == a) {
                        let (k, rid) = model.remove(pos);
                        cracker.delete(k, rid);
                    }
                }
                _ => {
                    let (lo, hi) = (a, a + b);
                    let (mut got, _) = cracker.query(lo, hi);
                    got.sort_unstable();
                    let mut want: Vec<usize> = model.iter()
                        .filter(|&&(k, _)| k >= lo && k <= hi)
                        .map(|&(_, r)| r)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                    prop_assert!(cracker.check_invariant());
                }
            }
        }
        // Final full query flushes all pending updates.
        let (mut got, _) = cracker.query(i64::MIN, i64::MAX);
        got.sort_unstable();
        let mut want: Vec<usize> = model.iter().map(|&(_, r)| r).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn multi_index_agrees_with_filter(
        rows in prop::collection::vec((0i64..8, 0i64..12), 1..150),
        a_eq in 0i64..8,
        b_lo in 0i64..12,
        b_width in 0i64..6,
    ) {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for &(a, b) in &rows {
            t.append(vec![Value::Int(a), Value::Int(b)]);
        }
        let ix = MultiIndex::build("ix", &t, &["a", "b"]).unwrap();
        let b_hi = b_lo + b_width;
        let mut got = ix
            .lookup(&[Value::Int(a_eq)], Some(&Value::Int(b_lo)), Some(&Value::Int(b_hi)))
            .unwrap();
        got.sort_unstable();
        let want: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| a == a_eq && b >= b_lo && b <= b_hi)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
        // Pure-prefix lookup is the union over all b.
        let mut all = ix.lookup(&[Value::Int(a_eq)], None, None).unwrap();
        all.sort_unstable();
        let want_all: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, &(a, _))| a == a_eq)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(all, want_all);
    }

    #[test]
    fn rewrites_preserve_predicate_semantics(
        a_vals in prop::collection::vec(-10i64..10, 1..30),
        lo in -10i64..5,
        width in 0i64..10,
        in_list in prop::collection::vec(-10i64..10, 1..4),
    ) {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let base = col("a").between(lo, lo + width)
            .or(col("a").in_list(in_list.iter().map(|&v| Value::Int(v)).collect()))
            .and(col("a").ne(lit(0i64)).not().not());
        for variant in rewrites::variants(&base) {
            for &v in &a_vals {
                let row = vec![Value::Int(v)];
                prop_assert_eq!(
                    base.eval_bool(&row, &schema).unwrap(),
                    variant.eval_bool(&row, &schema).unwrap(),
                    "variant {} disagrees at a={}", variant, v
                );
            }
        }
    }

    #[test]
    fn sort_is_ordered_permutation(keys in prop::collection::vec(-1000i64..1000, 0..300)) {
        let ctx = ExecContext::unbounded();
        let mut s = SortOp::asc(RowsOp::boxed("t", &keys), &["t.k"], ctx).unwrap();
        let out = collect(&mut s);
        prop_assert_eq!(out.len(), keys.len());
        prop_assert!(out.windows(2).all(|w| w[0][0] <= w[1][0]));
        let mut sorted_in = keys.clone();
        sorted_in.sort_unstable();
        let got: Vec<i64> = out.iter().map(|r| r[0].as_int().unwrap()).collect();
        prop_assert_eq!(got, sorted_in);
    }

    #[test]
    fn maxent_honors_constraints(s1 in 0.05f64..0.95, s2 in 0.05f64..0.95) {
        let mut solver = MaxEntSolver::new(2).unwrap();
        solver.add_constraint(0b01, s1).unwrap();
        solver.add_constraint(0b10, s2).unwrap();
        let d = solver.solve(300, 1e-10);
        prop_assert!((d.selectivity(0b01) - s1).abs() < 1e-4);
        prop_assert!((d.selectivity(0b10) - s2).abs() < 1e-4);
        // Without joint knowledge, ME = independence.
        prop_assert!((d.selectivity(0b11) - s1 * s2).abs() < 1e-3);
    }
}

#[test]
fn memory_fluctuation_mid_plan_is_observed() {
    // Not a proptest, but a deterministic edge probe: changing the governor
    // budget between pipeline stages affects the later stage's spill.
    let mut rng = seeded(8);
    let keys: Vec<i64> = (0..5000).map(|_| rng.gen_range(0..5000)).collect();
    let ctx = ExecContext::with_memory(f64::INFINITY);
    let mut sort = SortOp::asc(RowsOp::boxed("t", &keys), &["t.k"], ctx.clone()).unwrap();
    // Shrink the workspace *before* the sort materializes.
    ctx.memory.set_budget(100.0);
    let out = collect(&mut sort);
    assert_eq!(out.len(), 5000);
    assert!(ctx.clock.breakdown().spill > 0.0, "shrunk budget must be seen");
}
