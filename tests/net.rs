//! Acceptance tests for the TCP wire layer (`rqp-net`): remote results
//! bit-identical to solo execution, credit-based backpressure that bounds
//! what a stalled client can hold, abrupt-disconnect teardown that releases
//! the MPL slot and every memory grant, stable error codes across the wire,
//! and cooperative cancellation of a queued query from a remote client.

use rqp_common::expr::{col, lit};
use rqp_common::{Row, RqpError, Value};
use rqp_telemetry::scoreboard::{DiffThresholds, Scoreboard};
use rqp_net::proto::WireSubscribeOptions;
use rqp_net::{rows_checksum, RemoteDelta, WireClient, WireQueryOptions, WireServer, PAGE_ROWS};
use rqp_opt::QuerySpec;
use rqp_server::{QueryPhase, QueryService, ServiceConfig};
use rqp_workload::{tpch::TpchParams, TpchDb};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_db() -> TpchDb {
    TpchDb::build(TpchParams { lineitem_rows: 4_000, ..Default::default() }, 42)
}

fn service(db: &TpchDb, mpl: usize) -> Arc<QueryService> {
    Arc::new(QueryService::new(
        &db.catalog,
        ServiceConfig { mpl, memory_rows: 20_000.0, drift_threshold: 1e9, ..Default::default() },
    ))
}

fn start(svc: &Arc<QueryService>) -> (WireServer, String) {
    let server = WireServer::start(Arc::clone(svc), "127.0.0.1:0").expect("bind");
    let addr = format!("127.0.0.1:{}", server.port());
    (server, addr)
}

/// A predicate-only scan returning every lineitem row — many pages' worth,
/// for exercising the pager rather than a one-row aggregate.
fn wide_scan() -> QuerySpec {
    QuerySpec::new()
        .table("lineitem")
        .filter("lineitem", col("lineitem.quantity").ge(lit(0)))
        .project(&["lineitem.orderkey", "lineitem.quantity", "lineitem.extendedprice"])
}

/// Spin until `cond` holds or a generous deadline passes. The wire layer is
/// asynchronous by nature; tests only ever wait on monotone conditions.
fn await_until(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

#[test]
fn remote_results_are_bit_identical_to_solo_runs() {
    let db = small_db();
    let svc = service(&db, 2);
    let (server, addr) = start(&svc);

    let specs = [db.q1(30), db.q3(1, 400), db.q6(100, 0.05, 30), wide_scan()];
    let solo: Vec<_> = specs.iter().map(|q| svc.run_solo(q).expect("solo run")).collect();

    let mut client = WireClient::connect(&addr, 0).expect("connect");
    for (spec, solo) in specs.iter().zip(&solo) {
        let out = client
            .run(spec, WireQueryOptions::default())
            .expect("wire transport")
            .expect("remote query failed");
        assert_eq!(out.rows, solo.rows, "remote rows diverged from solo execution");
        assert_eq!(
            rows_checksum(&out.rows),
            rows_checksum(&solo.rows),
            "checksum identity must follow row identity"
        );
    }
    client.goodbye().expect("clean goodbye");
    assert_eq!(svc.reserved(), 0.0, "remote queries leaked grants");

    drop(server);
}

#[test]
fn stalled_consumer_holds_one_page_and_never_broker_memory() {
    let db = small_db();
    let svc = service(&db, 2);
    let (server, addr) = start(&svc);

    // The slow consumer: submit a many-page scan but grant a single credit.
    let mut slow = WireClient::connect(&addr, 0).expect("connect slow");
    let query = slow.submit(&wide_scan(), WireQueryOptions::default()).expect("submit");
    let first = slow.fetch_partial(query, 1).expect("first page");
    assert_eq!(first.len(), PAGE_ROWS, "first page should be full");

    // While the consumer stalls: the broker owes it nothing (results are
    // materialized and grants returned before paging), and a neighbour on a
    // separate connection runs to completion unimpeded.
    assert_eq!(svc.reserved(), 0.0, "stalled consumer held broker memory");
    let solo = svc.run_solo(&db.q1(30)).expect("solo");
    let mut other = WireClient::connect(&addr, 0).expect("connect other");
    let out = other
        .run(&db.q1(30), WireQueryOptions::default())
        .expect("wire transport")
        .expect("neighbour failed behind a stalled consumer");
    assert_eq!(out.rows, solo.rows);
    other.goodbye().expect("goodbye other");

    // Drain the rest; the stall must not have corrupted the page stream.
    let rest = slow.fetch_partial(query, u32::MAX).expect("drain");
    assert_eq!(first.len() + rest.len(), 4_000, "row loss across the stall");
    slow.goodbye().expect("goodbye slow");

    let stats = server.stats();
    assert!(
        stats.peak_buffered_pages <= 1,
        "pager buffered {} pages; credits must bound this at 1",
        stats.peak_buffered_pages
    );
    drop(server);
}

#[test]
fn abrupt_disconnect_mid_query_releases_slot_and_grants() {
    let db = small_db();
    let svc = service(&db, 1);
    let (server, addr) = start(&svc);

    // Park a query in the admission queue so it is definitely live when the
    // connection dies, then vanish without GOODBYE — the TCP stream drops
    // with the client value.
    svc.pause_admission();
    let mut doomed = WireClient::connect(&addr, 0).expect("connect");
    let _query = doomed
        .submit(&wide_scan(), WireQueryOptions { reservation: Some(5_000.0), ..Default::default() })
        .expect("submit");
    await_until(|| svc.queue_depth() == 1, "query to queue");
    drop(doomed);

    // The server must notice the dead peer, cancel the query, and reap it.
    await_until(|| server.stats().closed == 1, "connection teardown");
    let stats = server.stats();
    assert_eq!(stats.disconnected_queries, 1, "mid-query disconnect not counted");
    assert_eq!(stats.recovered_queries, 1, "disconnected query not reaped");
    svc.resume_admission();
    await_until(|| svc.queue_depth() == 0, "queue to drain");
    assert_eq!(svc.reserved(), 0.0, "disconnected query leaked memory grants");

    // The MPL slot must be free: with MPL 1 a fresh query would hang forever
    // on a leaked slot.
    let mut fresh = WireClient::connect(&addr, 0).expect("reconnect");
    fresh
        .run(&db.q6(100, 0.05, 30), WireQueryOptions::default())
        .expect("wire transport")
        .expect("query after churn failed: leaked MPL slot?");
    fresh.goodbye().expect("goodbye");
    drop(server);
}

#[test]
fn stray_grants_for_a_finished_query_do_not_corrupt_the_stream() {
    let db = small_db();
    let svc = service(&db, 2);
    let (server, addr) = start(&svc);

    let mut client = WireClient::connect(&addr, 0).expect("connect");
    let out = client
        .run(&db.q6(100, 0.05, 30), WireQueryOptions::default())
        .expect("wire transport")
        .expect("query failed");

    // The query is done and its server-side entry may be reaped at any
    // moment. Late grants and cancels race completion by design (a client
    // re-grants before reading the DONE already in flight) and must be
    // silently absorbed — an ERROR reply here would be read by whatever
    // exchange comes next and corrupt the conversation.
    client.fetch_partial(out.query, 0).expect("stray fetch must be a no-op");
    client.cancel(out.query).expect("stray cancel must be a no-op");

    // A fresh query and a clean goodbye prove no stray frame leaked in.
    client
        .run(&db.q1(30), WireQueryOptions::default())
        .expect("wire transport")
        .expect("follow-up query failed");
    client.goodbye().expect("clean goodbye after stray grants");
    drop(server);
}

#[test]
fn deadline_abort_crosses_the_wire_with_its_stable_code() {
    let db = small_db();
    let svc = service(&db, 2);
    let (server, addr) = start(&svc);

    let mut client = WireClient::connect(&addr, 0).expect("connect");
    let failure = client
        .run(
            &db.q5(0, 10, 100),
            WireQueryOptions {
                deadline: Some(1.0),
                reservation: Some(8_000.0),
                ..Default::default()
            },
        )
        .expect("wire transport")
        .expect_err("past-deadline query must fail");
    assert_eq!(
        failure.code,
        RqpError::DeadlineExceeded.wire_code(),
        "deadline abort arrived with the wrong wire code"
    );
    assert_eq!(failure.name(), Some("DeadlineExceeded"));
    assert!(failure.is_cancellation(), "classification must be code-based");
    client.goodbye().expect("goodbye");
    assert_eq!(svc.reserved(), 0.0, "aborted query leaked grants");
    drop(server);
}

#[test]
fn cancelling_a_queued_query_over_the_wire_frees_its_slot() {
    let db = small_db();
    let svc = service(&db, 1);
    let (server, addr) = start(&svc);

    svc.pause_admission();
    let mut client = WireClient::connect(&addr, 0).expect("connect");
    let query = client.submit(&db.q1(30), WireQueryOptions::default()).expect("submit");
    await_until(|| svc.queue_depth() == 1, "query to queue");
    client.cancel(query).expect("send cancel");
    let failure = client.fetch(query).expect("wire transport").expect_err("cancelled");
    assert_eq!(failure.code, RqpError::Cancelled.wire_code());
    assert!(failure.is_cancellation());
    svc.resume_admission();
    await_until(|| svc.queue_depth() == 0, "cancelled waiter to leave the queue");
    assert_eq!(svc.reserved(), 0.0);
    client.goodbye().expect("goodbye");
    drop(server);
}

#[test]
fn introspection_frames_observe_a_live_service() {
    let db = small_db();
    let svc = service(&db, 2);
    let (server, addr) = start(&svc);

    // Park a query at the admission gate so the live registry has a
    // deterministic occupant, then observe it from a *separate* connection
    // that never said HELLO-and-submitted anything.
    svc.pause_admission();
    let mut worker = WireClient::connect(&addr, 0).expect("connect worker");
    let query = worker.submit(&wide_scan(), WireQueryOptions::default()).expect("submit");
    await_until(|| svc.queue_depth() == 1, "query to queue");

    let mut obs = WireClient::connect(&addr, 0).expect("connect observer");
    let snap = obs.stats().expect("stats");
    let gauge = |name: &str| {
        snap.metrics
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing metric {name}"))
    };
    gauge("server.live.queued");
    gauge("server.recorder.published");
    gauge("wire.connections");
    assert_eq!(snap.live.len(), 1, "exactly one in-flight query");
    assert_eq!(snap.live[0].query, query);
    assert_eq!(snap.live[0].phase, QueryPhase::Queued);
    assert_eq!(snap.live[0].ticks, 0.0, "queued queries have not ticked");

    let queued = obs.inspect(query).expect("inspect queued");
    assert!(queued.found);
    assert_eq!(queued.phase, QueryPhase::Queued);
    assert!(queued.rendered.is_empty(), "nothing has executed yet");

    // Release the gate and poll INSPECT until a span tree appears — live
    // if we catch the query mid-run, final (from the merged service
    // forest) once it completes. Either way the condition is monotone.
    svc.resume_admission();
    let mut rendered = String::new();
    await_until(
        || {
            let ins = obs.inspect(query).expect("inspect running");
            rendered = ins.rendered;
            ins.found && !rendered.is_empty()
        },
        "a span tree to materialize",
    );
    assert!(rendered.contains("scan"), "span tree misses the scan:\n{rendered}");

    let out = worker.fetch(query).expect("wire transport").expect("query failed");
    assert_eq!(out.rows.len(), 4_000);

    // The flight recorder replays the whole lifecycle in sequence order.
    let tail = obs.events(0, 4096).expect("events");
    assert_eq!(tail.gap, 0, "nothing can have been overwritten yet");
    assert!(tail.events.windows(2).all(|w| w[0].seq < w[1].seq), "seqs not increasing");
    let kinds: Vec<&str> = tail.events.iter().map(|e| e.kind.as_str()).collect();
    for expected in ["query.submit", "admission.enqueue", "admission.admit", "query.finish", "pager.page"]
    {
        assert!(kinds.contains(&expected), "missing {expected} in {kinds:?}");
    }
    // Tailing from the returned cursor yields nothing new and no gap.
    let empty = obs.events(tail.next_cursor, 4096).expect("events resume");
    assert!(empty.events.is_empty());
    assert_eq!(empty.gap, 0);
    assert_eq!(empty.next_cursor, tail.next_cursor);

    // An unknown id is found=false, not an error.
    let missing = obs.inspect(999_999).expect("inspect unknown");
    assert!(!missing.found);

    worker.goodbye().expect("goodbye worker");
    obs.goodbye().expect("goodbye observer");
    drop(server);
}

/// A fresh `lineitem` row (dyadic floats, so retractable sums stay exact).
fn fresh_lineitem(k: i64) -> Row {
    vec![
        Value::Int(k % 50),
        Value::Int(k % 20),
        Value::Int(k % 10),
        Value::Int(1 + k % 50),
        Value::Float(1_000.0 + (k % 100) as f64 * 0.25),
        Value::Float(0.0625),
        Value::Int(k % 2_400),
        Value::Int(k % 3),
    ]
}

/// Apply one wire delta to a sorted client-side view copy.
fn replay(view: &mut Vec<Row>, delta: &RemoteDelta) {
    for r in &delta.retracted {
        let pos = view.iter().position(|v| v == r).expect("retracted row absent from view");
        view.remove(pos);
    }
    view.extend(delta.inserted.iter().cloned());
    view.sort();
}

#[test]
fn standing_subscriptions_stream_deltas_and_survive_partial_polls() {
    let db = small_db();
    let svc = service(&db, 2);
    let (server, addr) = start(&svc);

    // Two standing views on one connection: a filter-only scan (deltas are
    // 1:1 with appended rows, so chunking is exercised precisely) and a
    // grouped aggregate (appends retract and re-insert group rows).
    let scan = wide_scan();
    let mut agg = db.q1(30);
    agg.order_by.clear();
    agg.limit = None;

    let mut client = WireClient::connect(&addr, 0).expect("connect");
    let mut scan_view = svc.run_solo(&scan).expect("solo scan").rows;
    scan_view.sort();
    let mut agg_view = svc.run_solo(&agg).expect("solo agg").rows;
    agg_view.sort();
    let s_scan =
        client.subscribe(&scan, WireSubscribeOptions::default()).expect("subscribe scan");
    let s_agg =
        client.subscribe(&agg, WireSubscribeOptions::default()).expect("subscribe agg");
    assert_ne!(s_scan, s_agg, "subscriptions share the query id space");

    // Ordered specs are rejected with a remote failure, not a hangup.
    let err = client
        .subscribe(&db.q1(30), WireSubscribeOptions::default())
        .expect_err("ordered spec must be rejected");
    assert!(err.to_string().contains("ORDER BY"), "unexpected rejection: {err}");

    // One 600-row append: every row passes the scan's predicate, so the
    // poll must deliver 600 inserted rows across chunked DELTA frames
    // (PAGE_ROWS = 256 rows per frame).
    let rows: Vec<Row> = (0..600).map(fresh_lineitem).collect();
    let epoch = client.append("lineitem", rows).expect("wire").expect("append");
    assert_eq!(epoch, 600, "append epoch is the changelog length");

    // Partial poll first: apply 250 records, leave 350 lagging.
    let (d1, lag1) = client.poll_sub(s_scan, 250).expect("wire").expect("poll");
    assert_eq!(d1.inserted.len(), 250);
    assert!(d1.retracted.is_empty());
    assert_eq!(lag1, 350, "partial poll must report the remaining lag");
    let (d2, lag2) = client.poll_sub(s_scan, 0).expect("wire").expect("drain");
    assert_eq!(d2.inserted.len(), 350);
    assert_eq!(lag2, 0);
    replay(&mut scan_view, &d1);
    replay(&mut scan_view, &d2);
    let mut cold = svc.run_solo(&scan).expect("cold scan").rows;
    cold.sort();
    assert_eq!(scan_view, cold, "maintained scan view diverged from re-execution");

    // The aggregate subscription sees the same changelog: its delta
    // retracts the touched group rows and inserts their replacements.
    let (da, lag) = client.poll_sub(s_agg, 0).expect("wire").expect("poll agg");
    assert_eq!(lag, 0);
    assert!(!da.inserted.is_empty(), "appends must touch some group");
    replay(&mut agg_view, &da);
    let mut cold = svc.run_solo(&agg).expect("cold agg").rows;
    cold.sort();
    assert_eq!(agg_view, cold, "maintained aggregate view diverged from re-execution");

    // Unsubscribe is acknowledged; a dead id then fails with a typed code.
    client.unsubscribe(s_scan).expect("wire").expect("unsubscribe scan");
    client.unsubscribe(s_agg).expect("wire").expect("unsubscribe agg");
    assert_eq!(svc.subscriptions().count(), 0, "registry must be empty");
    assert_eq!(svc.reserved(), 0.0, "standing views leaked workspace grants");
    let failure = client.poll_sub(s_scan, 0).expect("wire").expect_err("dead sub");
    assert_eq!(failure.code, RqpError::Invalid(String::new()).wire_code());

    client.goodbye().expect("goodbye");
    drop(server);
}

#[test]
fn wire_disconnect_tears_down_standing_subscriptions() {
    let db = small_db();
    let svc = Arc::new(QueryService::new(
        &db.catalog,
        ServiceConfig {
            mpl: 2,
            memory_rows: 20_000.0,
            drift_threshold: 1e9,
            page_budget: Some(64),
            ..Default::default()
        },
    ));
    let (server, addr) = start(&svc);

    let mut agg = db.q1(30);
    agg.order_by.clear();
    agg.limit = None;
    let mut doomed = WireClient::connect(&addr, 0).expect("connect doomed");
    let s1 = doomed
        .subscribe(&wide_scan(), WireSubscribeOptions::default())
        .expect("subscribe scan");
    doomed.subscribe(&agg, WireSubscribeOptions::default()).expect("subscribe agg");
    assert_eq!(svc.subscriptions().count(), 2);
    assert!(svc.reserved() > 0.0, "standing views hold workspace grants");

    // Another session cannot poll or tear down someone else's subscription.
    let mut other = WireClient::connect(&addr, 0).expect("connect other");
    let failure = other.poll_sub(s1, 0).expect("wire").expect_err("foreign poll");
    assert_eq!(failure.code, RqpError::Invalid(String::new()).wire_code());
    let failure = other.unsubscribe(s1).expect("wire").expect_err("foreign unsubscribe");
    assert_eq!(failure.code, RqpError::Invalid(String::new()).wire_code());
    assert_eq!(svc.subscriptions().count(), 2, "foreign frames must not tear down");

    // Vanish without GOODBYE: the server must notice the dead peer and
    // tear down every standing subscription — zero grants, zero pins,
    // empty registry.
    drop(doomed);
    await_until(|| svc.subscriptions().count() == 0, "subscription teardown");
    assert_eq!(svc.reserved(), 0.0, "disconnected subscriber leaked grants");
    assert_eq!(svc.pager().expect("paged service").pins(), 0, "teardown leaked page pins");
    await_until(
        || svc.metrics().counter("wire.subs.torn_down").get() == 2,
        "teardown counter",
    );

    // The survivor's session is untouched and fully functional.
    let s2 = other
        .subscribe(&wide_scan(), WireSubscribeOptions::default())
        .expect("subscribe after churn");
    other.append("lineitem", vec![fresh_lineitem(1)]).expect("wire").expect("append");
    let (d, lag) = other.poll_sub(s2, 0).expect("wire").expect("poll");
    assert_eq!(d.inserted.len(), 1);
    assert_eq!(lag, 0);
    other.unsubscribe(s2).expect("wire").expect("unsubscribe");
    other.goodbye().expect("goodbye");
    drop(server);
}

#[test]
fn a07_runs_real_client_processes_and_scoreboard_v5_gates_the_wire_metrics() {
    // Redirect the harness output to a scratch dir; this test is the only
    // one in this binary that touches RQP_EXP_OUTPUT. Cargo built our own
    // bins for this integration test, so the loadgen path is authoritative.
    let dir = std::env::temp_dir().join(format!("rqp_a07_gate_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("RQP_EXP_OUTPUT", &dir);
    std::env::set_var("RQP_LOADGEN_BIN", env!("CARGO_BIN_EXE_rqp-loadgen"));
    let summary = rqp_bench::a07_wire_service(true);
    std::env::remove_var("RQP_EXP_OUTPUT");
    std::env::remove_var("RQP_LOADGEN_BIN");
    assert!(summary.contains("A07"), "experiment produced no summary");

    let board = Scoreboard::from_dir(&dir).expect("fold the a07 run report");
    let entry = board.entries.get("a07_wire_service").expect("a07 entry");
    assert!(entry.wire_tail_p99.is_finite() && entry.wire_tail_p99 >= 1.0);
    assert!(entry.wire_tail_p999.is_finite() && entry.wire_tail_p999 >= 1.0);
    assert_eq!(entry.wire_churn_recovery, 1.0, "every disconnect must be reaped");
    assert_eq!(entry.wire_backpressure_pages, 1.0, "credits must bound buffering");

    // The diff gate must trip when any wire metric degrades past its
    // threshold relative to this run as baseline.
    let mut worse = board.clone();
    {
        let e = worse.entries.get_mut("a07_wire_service").unwrap();
        e.wire_tail_p99 = e.wire_tail_p99 * 2.0 + 1.0;
        e.wire_tail_p999 = e.wire_tail_p999 * 2.0 + 1.0;
        e.wire_churn_recovery = 0.5;
        e.wire_backpressure_pages += 5.0;
    }
    let regressions = board.diff(&worse, &DiffThresholds::default());
    let metrics: Vec<&str> = regressions.iter().map(|r| r.metric.as_str()).collect();
    for gate in
        ["wire_tail_p99", "wire_tail_p999", "wire_churn_recovery", "wire_backpressure_pages"]
    {
        assert!(metrics.contains(&gate), "{gate} gate missing: {metrics:?}");
    }

    // And the clean self-diff must pass.
    assert!(board.diff(&board, &DiffThresholds::default()).is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}
