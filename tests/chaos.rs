//! Chaos-determinism properties: fault injection must be a pure function of
//! the chaos seed, never of thread scheduling or worker count — and a
//! chaos-off context must be indistinguishable from a plain one.
//!
//! * the same seed yields identical rows *and* an identical cost breakdown
//!   at 1, 2 and 8 workers (scan faults and memory shocks are keyed by
//!   absolute page index, worker faults by `(worker, attempt)`);
//! * repeated runs under full chaos are bit-identical;
//! * with chaos disabled, rows, cost and trace shape are byte-identical to a
//!   context that has never heard of chaos (the pre-chaos baseline).

use rqp::common::chaos::{ChaosConfig, ChaosPolicy};
use rqp::common::{CostClock, CostModelParams};
use rqp::exec::exchange::{pipeline, ExchangeOp, Partitioning};
use rqp::exec::sort::SortOrder;
use rqp::exec::{collect, ExecContext, SortOp, TableScanOp};
use rqp::{DataType, Row, Schema, Table, Value};
use std::sync::Arc;

/// Dyadic cost weights: exact in binary floating point, so shard costs sum
/// associatively and totals are bit-comparable across worker counts.
fn dyadic_params() -> CostModelParams {
    CostModelParams {
        rows_per_page: 128.0,
        seq_page: 1.0,
        rand_page: 4.0,
        cpu_tuple: 1.0 / 256.0,
        cpu_compare: 1.0 / 512.0,
        hash_build: 1.0 / 64.0,
        hash_probe: 1.0 / 128.0,
        spill_page: 2.5,
    }
}

fn table(n: i64) -> Arc<Table> {
    let schema = Schema::from_pairs(&[("id", DataType::Int), ("key", DataType::Int)]);
    let mut t = Table::new("t", schema);
    for i in 0..n {
        t.append(vec![Value::Int(i), Value::Int((i * 7919) % 1000)]);
    }
    Arc::new(t)
}

/// Run the canonical chaos pipeline — coordinator scan (faults + shocks),
/// hash repartition, per-worker sort — and return rows plus cost bits.
fn run(policy: ChaosPolicy, workers: usize, budget: f64) -> (Vec<Row>, u64) {
    let ctx = ExecContext::new(CostClock::new(dyadic_params()), budget).with_chaos(policy);
    let scan = Box::new(TableScanOp::new(table(4_000), ctx.clone()));
    let build = pipeline(|op, wctx| {
        Box::new(SortOp::new(op, &[("t.key", SortOrder::Asc)], wctx.clone()).expect("sort"))
    });
    let spec = Partitioning::Hash { keys: vec![1], skew: 0.0 };
    let mut ex = ExchangeOp::repartition(scan, spec, workers, build, ctx.clone()).expect("exchange");
    let rows = collect(&mut ex);
    (rows, ctx.clock.breakdown().total().to_bits())
}

#[test]
fn same_seed_same_rows_and_cost_across_worker_counts() {
    // Scan faults and shocks only, on a page-partitioned parallel scan:
    // faults are keyed by *absolute* page index, so the same pages fault no
    // matter which worker owns them, and both the rows and the cost
    // breakdown are worker-count invariant bit for bit. (Worker faults are
    // keyed per worker, so their retry backoff legitimately moves with the
    // worker count; the sorting pipeline's compare count moves with the
    // partition size — neither belongs in this invariant.)
    let scan_only = ChaosConfig {
        worker_panic_rate: 0.0,
        worker_stall_rate: 0.0,
        ..ChaosConfig::standard(0xC4A05)
    };
    let scan_run = |workers: usize| {
        let ctx = ExecContext::new(CostClock::new(dyadic_params()), 1_000.0)
            .with_chaos(ChaosPolicy::new(scan_only));
        let mut ex = ExchangeOp::parallel_scan(table(4_000), workers, ctx.clone());
        (collect(&mut ex), ctx.clock.breakdown().total().to_bits())
    };
    let (rows1, cost1) = scan_run(1);
    for workers in [2usize, 8] {
        let (rows, cost) = scan_run(workers);
        assert_eq!(rows1, rows, "rows diverged at {workers} workers");
        assert_eq!(cost1, cost, "cost bits diverged at {workers} workers");
    }
    // Full chaos (worker panics and stalls too) over the repartition + sort
    // pipeline: the result *multiset* stays identical at every worker count
    // (the sequence legitimately follows the partition count — each worker
    // sorts its own hash partition); cost is per-count but bit-stable
    // (next test).
    let canon = |mut rows: Vec<Row>| {
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        rows
    };
    let full = ChaosConfig::standard(0xC4A05);
    let (full_rows1, _) = run(ChaosPolicy::new(full), 1, 1_000.0);
    let full_rows1 = canon(full_rows1);
    for workers in [2usize, 8] {
        let (rows, _) = run(ChaosPolicy::new(full), workers, 1_000.0);
        assert_eq!(full_rows1, canon(rows), "full-chaos rows diverged at {workers} workers");
    }
}

#[test]
fn repeated_runs_under_full_chaos_are_bit_identical() {
    for workers in [1usize, 2, 8] {
        let cfg = ChaosConfig::standard(1337);
        let (rows_a, cost_a) = run(ChaosPolicy::new(cfg), workers, 500.0);
        let (rows_b, cost_b) = run(ChaosPolicy::new(cfg), workers, 500.0);
        assert_eq!(rows_a, rows_b, "rows flapped at {workers} workers");
        assert_eq!(cost_a, cost_b, "cost bits flapped at {workers} workers");
    }
}

#[test]
fn chaos_off_matches_a_context_that_never_heard_of_chaos() {
    for workers in [1usize, 4] {
        let (rows_off, cost_off) = run(ChaosPolicy::off(), workers, 1_000.0);
        // A plain context (chaos defaulted, never touched): the pre-chaos
        // baseline this feature must not perturb.
        let ctx = ExecContext::new(CostClock::new(dyadic_params()), 1_000.0);
        let scan = Box::new(TableScanOp::new(table(4_000), ctx.clone()));
        let build = pipeline(|op, wctx| {
            Box::new(SortOp::new(op, &[("t.key", SortOrder::Asc)], wctx.clone()).expect("sort"))
        });
        let spec = Partitioning::Hash { keys: vec![1], skew: 0.0 };
        let mut ex =
            ExchangeOp::repartition(scan, spec, workers, build, ctx.clone()).expect("exchange");
        let rows_plain = collect(&mut ex);
        let cost_plain = ctx.clock.breakdown().total().to_bits();
        assert_eq!(rows_off, rows_plain);
        assert_eq!(cost_off, cost_plain, "chaos-off cost must be bit-identical");
        assert_eq!(ctx.metrics.counter("chaos.scan_retries").get(), 0);
        assert_eq!(ctx.metrics.counter("chaos.worker_panics").get(), 0);
    }
}

#[test]
fn env_seeded_chaos_still_computes_the_right_answer() {
    // The CI chaos leg sets RQP_CHAOS_SEED, running this test under an
    // env-chosen fault pattern instead of the seeds hard-coded above; with
    // the variable unset it falls back to a fixed standard mix, so the test
    // never silently degrades to a no-op.
    let policy = {
        let env = ChaosPolicy::from_env();
        if env.is_enabled() {
            env
        } else {
            ChaosPolicy::new(ChaosConfig::standard(0xE27))
        }
    };
    let expected = {
        let (rows, _) = run(ChaosPolicy::off(), 4, 1_000.0);
        rows
    };
    for workers in [1usize, 4] {
        let mut rows = run(ChaosPolicy::new(*policy.config()), workers, 1_000.0).0;
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        let mut want = expected.clone();
        want.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        assert_eq!(want, rows, "env-seeded chaos changed the result at {workers} workers");
    }
}

#[test]
fn chaos_seeds_vary_outcomes_but_never_results() {
    // Different seeds inject different faults (costs differ somewhere), but
    // the answer never changes: chaos perturbs the road, not the destination.
    let expected = {
        let (rows, _) = run(ChaosPolicy::off(), 4, 1_000.0);
        rows
    };
    let mut costs = Vec::new();
    for seed in [1u64, 2, 3, 4, 5] {
        let (rows, cost) = run(ChaosPolicy::new(ChaosConfig::standard(seed)), 4, 1_000.0);
        assert_eq!(expected, rows, "seed {seed} changed the query result");
        costs.push(cost);
    }
    costs.dedup();
    assert!(costs.len() > 1, "five seeds should not all cost identically");
}
