//! Acceptance tests for the paged buffer pool: with a page budget at or
//! above the data size the engine must be **bit-identical** (rows and cost
//! breakdown) to the pre-pool engine at 1, 2 and 8 workers on both the
//! scalar and batch paths; below the data size it must stay row-identical
//! and charge only the pager's fault surcharges; budget exhaustion must
//! surface as the typed [`RqpError::PageBudgetExhausted`] — never a panic,
//! never burned worker retries — and every termination path (full drain,
//! partial drain, deadline abort, wire disconnect) must leave the pool with
//! zero pins and the broker with zero reservations.
//!
//! Compiled under `rqp-bench` so it can drive the exec operators, the query
//! service and the wire layer in one place.

use rqp::common::chaos::{ChaosConfig, ChaosPolicy};
use rqp::common::{CostClock, CostModelParams, Row, RqpError};
use rqp::exec::{
    batch_pipeline, collect, pipeline, ExchangeOp, ExecContext, Operator, TableScanOp,
};
use rqp::server::{QueryOptions, QueryService, ServiceConfig};
use rqp::storage::BufferPool;
use rqp::{DataType, Schema, Table, Value};
use rqp::workload::{tpch::TpchParams, TpchDb};
use rqp_net::{WireClient, WireQueryOptions, WireServer};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Dyadic cost weights (exact in binary floating point), so charges sum
/// associatively and totals are bit-comparable across worker counts and
/// batch shapes — the same trick the chaos and batch suites use.
fn dyadic_params() -> CostModelParams {
    CostModelParams {
        rows_per_page: 128.0,
        seq_page: 1.0,
        rand_page: 4.0,
        cpu_tuple: 1.0 / 256.0,
        cpu_compare: 1.0 / 512.0,
        hash_build: 1.0 / 64.0,
        hash_probe: 1.0 / 128.0,
        spill_page: 2.5,
    }
}

/// 4,000 rows = 32 pages at 128 rows/page (the last one partial).
const TABLE_PAGES: usize = 32;

fn table(n: i64) -> Arc<Table> {
    let schema = Schema::from_pairs(&[("id", DataType::Int), ("key", DataType::Int)]);
    let mut t = Table::new("t", schema);
    for i in 0..n {
        t.append(vec![Value::Int(i), Value::Int((i * 7919) % 1000)]);
    }
    Arc::new(t)
}

struct RunOutput {
    rows: Vec<Row>,
    seq_io: u64,
    rand_io: u64,
    cpu: u64,
    spill: u64,
}

/// Parallel scan (scalar or batch path) of a fresh 4,000-row table, with an
/// optional pool of `budget` pages attached. Returns rows, the four cost
/// components as bits, and the pool for post-run pin/stat assertions.
fn scan_run(
    budget: Option<usize>,
    workers: usize,
    batch: bool,
    chaos: ChaosPolicy,
) -> (RunOutput, Option<Arc<BufferPool>>) {
    let t = table(4_000);
    let pool = budget.map(|pages| {
        let p = BufferPool::new(pages);
        t.attach_pool(&p);
        p
    });
    let ctx = ExecContext::new(CostClock::new(dyadic_params()), 1_000.0).with_chaos(chaos);
    let mut ex = if batch {
        ExchangeOp::try_parallel_batch_scan(t, workers, batch_pipeline(|op, _| op), ctx.clone())
            .expect("batch exchange")
    } else {
        ExchangeOp::try_parallel_scan_with(t, workers, pipeline(|op, _| op), ctx.clone())
            .expect("scalar exchange")
    };
    let rows = collect(&mut ex);
    let b = ctx.clock.breakdown();
    (
        RunOutput {
            rows,
            seq_io: b.seq_io.to_bits(),
            rand_io: b.rand_io.to_bits(),
            cpu: b.cpu.to_bits(),
            spill: b.spill.to_bits(),
        },
        pool,
    )
}

#[test]
fn full_budget_pool_is_bit_identical_to_the_unpooled_engine() {
    // The acceptance property: budget >= data means no eviction, no
    // re-fault, no surcharge — the pool is pure accounting and both the
    // row stream and every cost component match the pre-pool engine bit
    // for bit, on the scalar and batch paths alike.
    for workers in [1usize, 2, 8] {
        for batch in [false, true] {
            let label = format!("workers={workers} batch={batch}");
            let (plain, _) = scan_run(None, workers, batch, ChaosPolicy::off());
            let (pooled, pool) =
                scan_run(Some(TABLE_PAGES), workers, batch, ChaosPolicy::off());
            assert_eq!(plain.rows, pooled.rows, "{label}: rows diverged");
            assert_eq!(plain.seq_io, pooled.seq_io, "{label}: seq_io bits");
            assert_eq!(plain.rand_io, pooled.rand_io, "{label}: rand_io bits");
            assert_eq!(plain.cpu, pooled.cpu, "{label}: cpu bits");
            assert_eq!(plain.spill, pooled.spill, "{label}: spill bits");
            let pool = pool.expect("pooled run");
            let s = pool.stats();
            assert_eq!(s.refaults, 0, "{label}: full budget must never re-fault");
            assert_eq!(s.cold_loads as usize, TABLE_PAGES, "{label}: one load per page");
            assert_eq!(pool.pins(), 0, "{label}: drained scan leaked pins");
        }
    }
}

#[test]
fn chaos_page_faults_are_worker_count_invariant() {
    // Page-I/O faults are keyed by the absolute page index, and with a full
    // budget each page loads exactly once — so the fault schedule, the rows
    // and the charge totals are identical no matter how the scan is sharded.
    let cfg = ChaosConfig {
        seed: 0x9A6E,
        page_fault_rate: 0.2,
        page_max_retries: 8,
        ..ChaosConfig::off()
    };
    let (base, base_pool) =
        scan_run(Some(TABLE_PAGES), 1, false, ChaosPolicy::new(cfg));
    let retries = base_pool.expect("pool").stats().io_retries;
    assert!(retries > 0, "this seed must inject at least one page fault");
    for workers in [2usize, 8] {
        for batch in [false, true] {
            let (run, pool) =
                scan_run(Some(TABLE_PAGES), workers, batch, ChaosPolicy::new(cfg));
            let label = format!("workers={workers} batch={batch}");
            assert_eq!(base.rows, run.rows, "{label}: rows diverged under page faults");
            assert_eq!(base.rand_io, run.rand_io, "{label}: retry charges diverged");
            assert_eq!(base.seq_io, run.seq_io, "{label}: seq_io diverged");
            assert_eq!(
                pool.expect("pool").stats().io_retries,
                retries,
                "{label}: fault schedule moved with the worker count"
            );
        }
    }
}

#[test]
fn constrained_budget_stays_row_identical_and_charges_only_refaults() {
    // Bare-scan baseline (no exchange, no pool), charge bits per component.
    let plain = {
        let ctx = ExecContext::new(CostClock::new(dyadic_params()), 1_000.0);
        let rows = collect(&mut TableScanOp::new(table(4_000), ctx.clone()));
        let b = ctx.clock.breakdown();
        RunOutput {
            rows,
            seq_io: b.seq_io.to_bits(),
            rand_io: b.rand_io.to_bits(),
            cpu: b.cpu.to_bits(),
            spill: b.spill.to_bits(),
        }
    };

    // One pool, two sequential passes: the first is all cold loads (free —
    // the scan's own sequential charge is that read); the second re-faults
    // every page because a quarter-size budget evicted them all behind the
    // first pass's cursor.
    let t = table(4_000);
    let pool = BufferPool::new(8);
    t.attach_pool(&pool);
    for pass in 0..2usize {
        let ctx = ExecContext::new(CostClock::new(dyadic_params()), 1_000.0);
        let rows = collect(&mut TableScanOp::new(Arc::clone(&t), ctx.clone()));
        assert_eq!(plain.rows, rows, "pass {pass}: constrained pool changed the rows");
        let b = ctx.clock.breakdown();
        assert_eq!(b.seq_io.to_bits(), plain.seq_io, "pass {pass}: seq_io moved");
        assert_eq!(b.cpu.to_bits(), plain.cpu, "pass {pass}: cpu moved");
        let s = pool.stats();
        if pass == 0 {
            assert_eq!(b.rand_io, 0.0, "cold loads must not be surcharged");
            assert_eq!(s.cold_loads as usize, TABLE_PAGES);
            assert_eq!(s.refaults, 0);
        } else {
            assert_eq!(s.refaults as usize, TABLE_PAGES, "second pass re-faults every page");
            let expected = TABLE_PAGES as f64 * dyadic_params().rand_page;
            assert_eq!(
                b.rand_io.to_bits(),
                expected.to_bits(),
                "re-faults charge exactly one random page each"
            );
        }
        assert_eq!(pool.pins(), 0, "pass {pass} leaked pins");
    }
}

#[test]
fn page_budget_exhaustion_is_typed_and_propagates_through_the_exchange() {
    let t = table(4_000);
    let pool = BufferPool::new(1);
    t.attach_pool(&pool);
    // An outside pin holds the only frame, so the scan's first fault cannot
    // evict: the pool must fail typed, and the exchange must propagate that
    // error as-is instead of burning lost-partition retries on it.
    let clock = CostClock::new(dyadic_params());
    let chaos = ChaosPolicy::off();
    let (_guard, _) = pool.pin("t", 0, &clock, &chaos).expect("guard pin");
    // The scan's first page is a hit on the guarded frame; page 1 needs a
    // second frame, finds the only one pinned, and must fail typed.
    let ctx = ExecContext::new(CostClock::new(dyadic_params()), 1_000.0);
    let err = match ExchangeOp::try_parallel_scan_with(
        Arc::clone(&t),
        1,
        pipeline(|op, _| op),
        ctx.clone(),
    ) {
        Err(e) => e,
        Ok(_) => panic!("one pinned frame of one cannot serve a scan"),
    };
    match err {
        RqpError::PageBudgetExhausted { pinned, budget } => {
            assert_eq!((pinned, budget), (1, 1));
        }
        other => panic!("expected typed PageBudgetExhausted, got {other:?}"),
    }
    assert_eq!(
        ctx.metrics.counter("exchange.worker_retries").get(),
        0,
        "exhaustion must not be retried as a lost partition"
    );
    assert_eq!(pool.pins(), 1, "only the outside guard pin survives the abort");
    drop(_guard);
    assert_eq!(pool.pins(), 0);
}

#[test]
fn partial_drain_releases_every_pin() {
    let t = table(4_000);
    let pool = BufferPool::new(8);
    t.attach_pool(&pool);
    let ctx = ExecContext::new(CostClock::new(dyadic_params()), 1_000.0);
    let mut scan = TableScanOp::new(Arc::clone(&t), ctx.clone());
    for _ in 0..5 {
        scan.next().expect("row");
    }
    assert_eq!(pool.pins(), 1, "a mid-page scan holds exactly its current page");
    drop(scan);
    assert_eq!(pool.pins(), 0, "dropping a part-way scan must release its pin");
}

fn paged_service(db: &TpchDb, mpl: usize, pages: usize) -> Arc<QueryService> {
    Arc::new(QueryService::new(
        &db.catalog,
        ServiceConfig {
            mpl,
            memory_rows: 20_000.0,
            drift_threshold: 1e9,
            page_budget: Some(pages),
            ..Default::default()
        },
    ))
}

fn small_db() -> TpchDb {
    TpchDb::build(TpchParams { lineitem_rows: 4_000, ..Default::default() }, 42)
}

#[test]
fn deadline_abort_on_a_paged_service_releases_pins_and_reservations() {
    let db = small_db();
    // 8 frames is far below lineitem's page count, so the doomed query is
    // actively faulting through the pool when its deadline trips.
    let svc = paged_service(&db, 2, 8);
    let session = svc.session(0);
    let handle = session.submit(db.q5(0, 10, 100), QueryOptions::with_deadline(1.0));
    match handle.join() {
        Err(RqpError::DeadlineExceeded) => {}
        other => panic!("expected a deadline abort, got {other:?}"),
    }
    let pool = svc.pager().expect("paged service");
    assert_eq!(pool.pins(), 0, "deadline abort leaked page pins");
    assert_eq!(svc.reserved(), 0.0, "deadline abort leaked workspace grants");

    // The survivor still computes the right answer through the same pool.
    let solo = svc.run_solo(&db.q6(100, 0.05, 30)).expect("survivor");
    assert!(!solo.rows.is_empty());
    assert_eq!(pool.pins(), 0);
}

#[test]
fn wire_disconnect_on_a_paged_service_releases_pins_and_reservations() {
    let db = small_db();
    let svc = paged_service(&db, 1, 8);
    let server = WireServer::start(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
    let addr = format!("127.0.0.1:{}", server.port());

    // Submit a many-page scan and vanish without GOODBYE: the reaper must
    // cancel the query, and unwinding its operators must drop every pin.
    let spec = rqp::QuerySpec::new()
        .table("lineitem")
        .filter(
            "lineitem",
            rqp::common::expr::col("lineitem.quantity").ge(rqp::common::expr::lit(0)),
        )
        .project(&["lineitem.orderkey", "lineitem.quantity"]);
    let mut doomed = WireClient::connect(&addr, 0).expect("connect");
    let _query = doomed
        .submit(&spec, WireQueryOptions::default())
        .expect("submit");
    drop(doomed);

    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().closed < 1 {
        assert!(Instant::now() < deadline, "timed out waiting for teardown");
        std::thread::yield_now();
    }
    // The reap is asynchronous with the query thread: wait for the broker
    // ledger to empty (monotone once the query ends), then check the pool.
    while svc.reserved() > 0.0 || svc.stats().live_count() > 0 {
        assert!(Instant::now() < deadline, "timed out waiting for query teardown");
        std::thread::yield_now();
    }
    let pool = svc.pager().expect("paged service");
    assert_eq!(pool.pins(), 0, "disconnect teardown leaked page pins");
    assert_eq!(svc.reserved(), 0.0);

    // Service still healthy below its data size.
    let mut fresh = WireClient::connect(&addr, 0).expect("reconnect");
    fresh
        .run(&db.q6(100, 0.05, 30), WireQueryOptions::default())
        .expect("wire transport")
        .expect("query after churn failed");
    fresh.goodbye().expect("goodbye");
    drop(server);
}
