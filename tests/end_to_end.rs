//! End-to-end integration: the full stack (workload generation → statistics
//! → optimization → execution) across execution modes, with answers checked
//! against ground truth.

use rqp::expr::{col, lit};
use rqp::stats::{OracleEstimator, CardEstimator};
use rqp::workload::{tpch::TpchParams, StarDb, TpchDb};
use rqp::workload::star::StarParams;
use rqp::{Database, ExecutionMode, PlannerConfig, QuerySpec};
use std::rc::Rc;

fn tpch_db() -> (TpchDb, Database) {
    let tpch = TpchDb::build(TpchParams { lineitem_rows: 4000, ..Default::default() }, 404);
    let mut db = Database::from_catalog(tpch.catalog.clone());
    db.analyze();
    (tpch, db)
}

#[test]
fn tpch_queries_all_modes_agree() {
    let (tpch, db) = tpch_db();
    let queries = [tpch.q1(90), tpch.q3(2, 1200), tpch.q5(0, 12, 200), tpch.q6(100, 0.05, 30)];
    for (qi, q) in queries.iter().enumerate() {
        let baseline = db.execute(q).unwrap();
        for mode in [ExecutionMode::robust(), ExecutionMode::pop(), ExecutionMode::Leo] {
            let r = db.execute_mode(q, mode).unwrap();
            assert_eq!(
                sorted(&r.rows),
                sorted(&baseline.rows),
                "query {qi} under {mode:?} changed the answer"
            );
        }
    }
}

#[test]
fn filter_counts_match_oracle() {
    let (_, db) = tpch_db();
    let oracle = OracleEstimator::new(Rc::new(db.catalog().clone()));
    let pred = col("lineitem.shipdate").between(500i64, 899i64);
    let spec = QuerySpec::new().table("lineitem").filter("lineitem", pred.clone());
    let rows = db.execute(&spec).unwrap().rows;
    let truth = (oracle.filtered_rows("lineitem", &pred)).round() as usize;
    assert_eq!(rows.len(), truth);
}

#[test]
fn bushy_and_left_deep_agree() {
    let (tpch, mut db) = tpch_db();
    let q = tpch.q5(0, 24, 0);
    let left_deep = db.execute(&q).unwrap();
    db.planner_config = PlannerConfig { bushy: true, ..Default::default() };
    let bushy = db.execute(&q).unwrap();
    assert_eq!(sorted(&left_deep.rows), sorted(&bushy.rows));
}

#[test]
fn memory_pressure_changes_cost_not_answers() {
    let (tpch, mut db) = tpch_db();
    let q = tpch.q3(1, 1500);
    let unbounded = db.execute(&q).unwrap();
    db.planner_config = PlannerConfig { memory_rows: 200.0, ..Default::default() };
    let tight = db.execute(&q).unwrap();
    assert_eq!(sorted(&unbounded.rows), sorted(&tight.rows));
    assert!(tight.cost >= unbounded.cost, "pressure can only cost more");
}

#[test]
fn star_schema_with_correlation_still_correct() {
    let star = StarDb::build(
        StarParams { fact_rows: 3000, correlated_fks: true, fk_skew: 0.8, ..Default::default() },
        5,
    );
    let mut db = Database::from_catalog(star.catalog.clone());
    db.analyze();
    let q = star.star_query(5, 8, 10);
    let r = db.execute(&q).unwrap();
    assert_eq!(r.rows.len(), 1, "global aggregate");
    let n = r.rows[0][0].as_int().unwrap();
    assert!(n > 0, "correlated+skewed data still joins");
    // POP agrees despite the correlation-induced misestimates.
    let p = db.execute_mode(&q, ExecutionMode::pop()).unwrap();
    assert_eq!(p.rows[0][0], r.rows[0][0]);
}

#[test]
fn equivalent_query_variants_return_identical_results() {
    let (_, db) = tpch_db();
    let base_pred = col("lineitem.shipdate")
        .between(200i64, 600i64)
        .and(col("lineitem.quantity").lt(lit(25i64)))
        .and(col("lineitem.returnflag").in_list(vec![0i64.into(), 2i64.into()]));
    let variants = rqp::expr::rewrites::variants(&base_pred);
    assert!(variants.len() >= 5);
    let mut counts = std::collections::BTreeSet::new();
    for v in &variants {
        let spec = QuerySpec::new().table("lineitem").filter("lineitem", v.clone());
        counts.insert(db.execute(&spec).unwrap().rows.len());
    }
    assert_eq!(counts.len(), 1, "all rewrites must agree: {counts:?}");
}

#[test]
fn updates_then_analyze_then_query() {
    let (tpch, mut db) = tpch_db();
    let before = db.execute(&tpch.q1(0)).unwrap();
    // OLTP-style growth.
    let mut oltp = rqp::workload::OltpSimulator::new(
        db.catalog().clone(),
        rqp::ExecContext::unbounded(),
        1,
    );
    oltp.run_stream(100);
    *db.catalog_mut() = oltp.catalog;
    db.analyze();
    let after = db.execute(&tpch.q1(0)).unwrap();
    let n = |rows: &Vec<rqp::Row>| -> i64 { rows.iter().map(|r| r[1].as_int().unwrap()).sum() };
    assert!(n(&after.rows) > n(&before.rows), "new lineitems visible");
}

fn sorted(rows: &[rqp::Row]) -> Vec<String> {
    let mut v: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}
